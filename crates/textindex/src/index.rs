//! The inverted index mapping terms to node posting lists.
//!
//! The index is an immutable value, but not a dead end: mutations to the
//! graph propagate through [`InvertedIndex::apply_delta`], which
//! re-tokenizes only the nodes whose text actually changed and rebuilds
//! only the posting lists of affected terms.  Untouched lists are shared
//! (`Arc`) between the old and new index, so a delta costs
//! O(touched terms + map clone), not O(total postings).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use banks_graph::{DataGraph, KindId, NodeId};

use crate::tokenizer::Tokenizer;

/// Statistics about a single indexed term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TermStats {
    /// Number of distinct nodes whose text contains the term.
    pub node_frequency: usize,
    /// Total number of occurrences posted (before per-node deduplication this
    /// equals the collection frequency; we post each node once, so this is
    /// the same as `node_frequency`).
    pub postings: usize,
}

/// Builder accumulating postings before freezing into an [`InvertedIndex`].
#[derive(Debug)]
pub struct IndexBuilder {
    tokenizer: Tokenizer,
    postings: HashMap<String, Vec<NodeId>>,
    /// Relation-name pseudo terms: term -> kind ids whose *entire* node set
    /// matches the term.
    kind_terms: HashMap<String, Vec<KindId>>,
}

impl IndexBuilder {
    /// Creates a builder with the given tokenizer.
    pub fn new(tokenizer: Tokenizer) -> Self {
        IndexBuilder {
            tokenizer,
            postings: HashMap::new(),
            kind_terms: HashMap::new(),
        }
    }

    /// Creates a builder with the default tokenizer.
    pub fn with_default_tokenizer() -> Self {
        Self::new(Tokenizer::new())
    }

    /// Indexes one attribute text for a node.  May be called repeatedly for
    /// the same node (e.g. one call per string attribute).
    pub fn add_text(&mut self, node: NodeId, text: &str) {
        for term in self.tokenizer.tokenize_unique(text) {
            self.postings.entry(term).or_default().push(node);
        }
    }

    /// Registers a relation (kind) name so that a query term equal to the
    /// name matches every node of that kind, as in the paper's query model.
    pub fn add_relation_name(&mut self, name: &str, kind: KindId) {
        for term in self.tokenizer.tokenize_unique(name) {
            self.kind_terms.entry(term).or_default().push(kind);
        }
    }

    /// Number of distinct terms accumulated so far (excluding relation-name
    /// pseudo terms).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Freezes the builder: posting lists are sorted, deduplicated and
    /// frozen behind `Arc`s (so index deltas can share untouched lists).
    pub fn build(self) -> InvertedIndex {
        let IndexBuilder {
            tokenizer,
            postings,
            kind_terms,
        } = self;
        let mut index: HashMap<Arc<str>, Arc<[NodeId]>> = HashMap::with_capacity(postings.len());
        for (term, mut nodes) in postings {
            nodes.sort_unstable();
            nodes.dedup();
            index.insert(Arc::from(term.as_str()), nodes.into());
        }
        let mut kinds: HashMap<String, Box<[KindId]>> = HashMap::with_capacity(kind_terms.len());
        for (term, mut ids) in kind_terms {
            ids.sort_unstable();
            ids.dedup();
            kinds.insert(term, ids.into_boxed_slice());
        }
        InvertedIndex {
            tokenizer,
            postings: index,
            kind_terms: kinds,
        }
    }
}

/// Immutable inverted index: term → sorted, deduplicated posting list.
///
/// Posting lists — and the term strings keying them — are `Arc`-shared,
/// so cloning the index (and producing a successor via
/// [`InvertedIndex::apply_delta`]) shares every untouched allocation
/// structurally; the per-delta cost is refcount bumps plus the touched
/// terms, not a copy of the vocabulary.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    tokenizer: Tokenizer,
    postings: HashMap<Arc<str>, Arc<[NodeId]>>,
    kind_terms: HashMap<String, Box<[KindId]>>,
}

/// One node's text change, in the form [`InvertedIndex::apply_delta`]
/// consumes: what the index currently holds for the node (`old`) and what
/// it should hold (`new`).  `old` must be exactly the texts originally
/// indexed for the node — for the label indexes the serving tier builds,
/// that is the node's pre-mutation label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextChange {
    /// The node whose text changed.
    pub node: NodeId,
    /// The texts previously indexed for this node (empty for new nodes).
    pub old: Vec<String>,
    /// The texts to index now (empty to remove the node's text).
    pub new: Vec<String>,
}

/// The input to [`InvertedIndex::apply_delta`]: per-node text changes plus
/// any relation names the mutation introduced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TextDelta {
    /// Per-node text changes.
    pub changes: Vec<TextChange>,
    /// Newly-registered relation (kind) names, matched as pseudo terms.
    pub new_relations: Vec<(String, KindId)>,
}

impl InvertedIndex {
    /// The tokenizer the index was built with (queries must use the same
    /// normalisation).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Number of distinct indexed terms (excluding relation-name pseudo
    /// terms).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Direct posting-list lookup for an already-normalised single term.
    /// Does not include relation-name expansion.
    pub fn postings(&self, term: &str) -> &[NodeId] {
        self.postings.get(term).map(|b| &**b).unwrap_or(&[])
    }

    /// Kinds whose relation name matches the term.
    pub fn kinds_for_term(&self, term: &str) -> &[KindId] {
        self.kind_terms.get(term).map(|b| &**b).unwrap_or(&[])
    }

    /// Statistics for a term (`None` if the term is not in the vocabulary).
    pub fn term_stats(&self, term: &str) -> Option<TermStats> {
        self.postings.get(term).map(|p| TermStats {
            node_frequency: p.len(),
            postings: p.len(),
        })
    }

    /// Iterates over the vocabulary in arbitrary order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(|s| &**s)
    }

    /// Iterates over the relation-name pseudo terms and the kinds they
    /// match, in arbitrary order.  (Serialization surface — the regular
    /// query path goes through [`InvertedIndex::kinds_for_term`].)
    pub fn kind_terms(&self) -> impl Iterator<Item = (&str, &[KindId])> {
        self.kind_terms.iter().map(|(term, ids)| (&**term, &**ids))
    }

    /// Reassembles an index from lists previously obtained via
    /// [`InvertedIndex::terms`] / [`InvertedIndex::postings`] /
    /// [`InvertedIndex::kind_terms`], skipping tokenization entirely.
    ///
    /// Lists are defensively sorted and deduplicated (a no-op for lists a
    /// real index produced), so malformed input degrades to a valid index
    /// rather than breaking the sorted-list invariants lookups rely on.
    pub fn from_raw_parts(
        tokenizer: Tokenizer,
        postings: Vec<(String, Vec<NodeId>)>,
        kind_terms: Vec<(String, Vec<KindId>)>,
    ) -> InvertedIndex {
        let mut index: HashMap<Arc<str>, Arc<[NodeId]>> = HashMap::with_capacity(postings.len());
        for (term, mut nodes) in postings {
            nodes.sort_unstable();
            nodes.dedup();
            if !nodes.is_empty() {
                index.insert(Arc::from(term.as_str()), nodes.into());
            }
        }
        let mut kinds: HashMap<String, Box<[KindId]>> = HashMap::with_capacity(kind_terms.len());
        for (term, mut ids) in kind_terms {
            ids.sort_unstable();
            ids.dedup();
            if !ids.is_empty() {
                kinds.insert(term, ids.into_boxed_slice());
            }
        }
        InvertedIndex {
            tokenizer,
            postings: index,
            kind_terms: kinds,
        }
    }

    /// Computes the set of nodes matching a (possibly multi-word / phrase)
    /// keyword.  A phrase keyword such as `"david fernandez"` matches nodes
    /// that contain *all* of its words (conjunctive semantics, which is how
    /// the paper's sample queries like DQ1 are phrased).  If the keyword also
    /// matches a relation name, every node of that relation is added
    /// (requires the `graph` to enumerate the kind's nodes).
    pub fn matching_nodes(&self, graph: &DataGraph, keyword: &str) -> Vec<NodeId> {
        let terms = self.tokenizer.tokenize(keyword);
        if terms.is_empty() {
            return Vec::new();
        }

        // Conjunction over the phrase's words: intersect posting lists,
        // starting with the smallest (the classic IR trick the paper cites).
        let mut lists: Vec<&[NodeId]> = terms.iter().map(|t| self.postings(t)).collect();
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<NodeId> = if lists.iter().any(|l| l.is_empty()) {
            Vec::new()
        } else {
            let mut acc: Vec<NodeId> = lists[0].to_vec();
            for list in &lists[1..] {
                acc = intersect_sorted(&acc, list);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        };

        // Relation-name matches: single-word keywords only (the paper's
        // example is a term equal to a table name).
        if terms.len() == 1 {
            for kind in self.kinds_for_term(&terms[0]) {
                result.extend(graph.nodes_of_kind(*kind));
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }

    /// Approximate memory footprint of the posting lists in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(term, nodes)| term.len() + nodes.len() * std::mem::size_of::<NodeId>())
            .sum()
    }

    /// Applies a text delta, producing a successor index equivalent to
    /// rebuilding from scratch over the post-change texts.
    ///
    /// Only the nodes named in the delta are re-tokenized, and only the
    /// posting lists of terms whose membership actually changed are
    /// rebuilt; every other list is `Arc`-shared with `self`.  The
    /// equivalence contract — `apply_delta` result == full rebuild — holds
    /// as long as each change's `old` texts match what was originally
    /// indexed for that node (see [`TextChange`]); it is asserted by the
    /// randomized mutation-equivalence suite.
    pub fn apply_delta(&self, delta: &TextDelta) -> InvertedIndex {
        // Per term: nodes leaving and nodes entering the posting list.
        let mut removals: BTreeMap<String, BTreeSet<NodeId>> = BTreeMap::new();
        let mut additions: BTreeMap<String, BTreeSet<NodeId>> = BTreeMap::new();
        for change in &delta.changes {
            let old_terms: BTreeSet<String> = change
                .old
                .iter()
                .flat_map(|text| self.tokenizer.tokenize_unique(text))
                .collect();
            let new_terms: BTreeSet<String> = change
                .new
                .iter()
                .flat_map(|text| self.tokenizer.tokenize_unique(text))
                .collect();
            for term in old_terms.difference(&new_terms) {
                removals
                    .entry(term.clone())
                    .or_default()
                    .insert(change.node);
            }
            for term in new_terms.difference(&old_terms) {
                additions
                    .entry(term.clone())
                    .or_default()
                    .insert(change.node);
            }
        }

        let mut postings = self.postings.clone();
        let affected: BTreeSet<&String> = removals.keys().chain(additions.keys()).collect();
        for term in affected {
            let removed = removals.get(term);
            let added = additions.get(term);
            let old_list = postings.get(term.as_str()).map(|l| &**l).unwrap_or(&[]);
            let mut list: Vec<NodeId> = old_list
                .iter()
                .filter(|n| removed.is_none_or(|r| !r.contains(n)))
                .copied()
                .collect();
            if let Some(added) = added {
                list.extend(added.iter().copied());
                list.sort_unstable();
                list.dedup();
            }
            if list.is_empty() {
                postings.remove(term.as_str());
            } else {
                postings.insert(Arc::from(term.as_str()), list.into());
            }
        }

        let mut kind_terms = self.kind_terms.clone();
        for (name, kind) in &delta.new_relations {
            for term in self.tokenizer.tokenize_unique(name) {
                let mut ids: Vec<KindId> = kind_terms
                    .get(&term)
                    .map(|k| k.to_vec())
                    .unwrap_or_default();
                ids.push(*kind);
                ids.sort_unstable();
                ids.dedup();
                kind_terms.insert(term, ids.into_boxed_slice());
            }
        }

        InvertedIndex {
            tokenizer: self.tokenizer.clone(),
            postings,
            kind_terms,
        }
    }
}

/// Intersects two sorted, deduplicated node lists.
fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::GraphBuilder;

    fn tiny_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("author", "David Fernandez");
        let a2 = b.add_node("author", "Giora Fernandez");
        let p1 = b.add_node("paper", "Parametric query optimization");
        let p2 = b.add_node("paper", "Database recovery");
        b.add_edge(p1, a1).unwrap();
        b.add_edge(p2, a2).unwrap();
        b.build_default()
    }

    fn build_index(graph: &DataGraph) -> InvertedIndex {
        let mut ib = IndexBuilder::with_default_tokenizer();
        for node in graph.nodes() {
            ib.add_text(node, graph.node_label(node));
        }
        for kind_name in ["author", "paper"] {
            let kind = graph.kind_by_name(kind_name).unwrap();
            ib.add_relation_name(kind_name, kind);
        }
        ib.build()
    }

    #[test]
    fn single_term_lookup() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert_eq!(idx.postings("fernandez"), &[NodeId(0), NodeId(1)]);
        assert_eq!(idx.postings("recovery"), &[NodeId(3)]);
        assert!(idx.postings("nonexistent").is_empty());
        assert_eq!(idx.term_stats("fernandez").unwrap().node_frequency, 2);
        assert!(idx.term_stats("nonexistent").is_none());
    }

    #[test]
    fn phrase_keywords_intersect() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert_eq!(
            idx.matching_nodes(&g, "\"David Fernandez\""),
            vec![NodeId(0)]
        );
        assert_eq!(idx.matching_nodes(&g, "Giora Fernandez"), vec![NodeId(1)]);
        assert!(idx.matching_nodes(&g, "David Giora").is_empty());
    }

    #[test]
    fn relation_name_matches_all_tuples() {
        let g = tiny_graph();
        let idx = build_index(&g);
        let papers = idx.matching_nodes(&g, "paper");
        assert_eq!(papers, vec![NodeId(2), NodeId(3)]);
        // 'author' matches both author tuples via the kind pseudo-term
        let authors = idx.matching_nodes(&g, "author");
        assert_eq!(authors, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn relation_and_text_matches_are_merged() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("paper", "a paper about papers");
        let _n1 = b.add_node("author", "someone");
        let g = b.build_default();
        let mut ib = IndexBuilder::with_default_tokenizer();
        ib.add_text(n0, g.node_label(n0));
        ib.add_relation_name("paper", g.kind_by_name("paper").unwrap());
        let idx = ib.build();
        // 'paper' matches node 0 both via text and via the relation name;
        // result must be deduplicated.
        assert_eq!(idx.matching_nodes(&g, "paper"), vec![NodeId(0)]);
    }

    #[test]
    fn duplicate_postings_are_deduplicated() {
        let mut ib = IndexBuilder::with_default_tokenizer();
        ib.add_text(NodeId(5), "database systems");
        ib.add_text(NodeId(5), "database recovery");
        ib.add_text(NodeId(2), "database theory");
        let idx = ib.build();
        assert_eq!(idx.postings("database"), &[NodeId(2), NodeId(5)]);
    }

    #[test]
    fn empty_keyword_matches_nothing() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert!(idx.matching_nodes(&g, "").is_empty());
        assert!(idx.matching_nodes(&g, "  ... ").is_empty());
    }

    #[test]
    fn vocabulary_and_memory() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert!(idx.num_terms() >= 6);
        assert!(idx.terms().any(|t| t == "parametric"));
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn apply_delta_matches_full_rebuild() {
        let g = tiny_graph();
        let idx = build_index(&g);
        // relabel node 0, add a new node 4 with fresh text, clear node 3
        let delta = TextDelta {
            changes: vec![
                TextChange {
                    node: NodeId(0),
                    old: vec!["David Fernandez".to_string()],
                    new: vec!["Maria Sanchez".to_string()],
                },
                TextChange {
                    node: NodeId(4),
                    old: vec![],
                    new: vec!["Streaming recovery".to_string()],
                },
                TextChange {
                    node: NodeId(3),
                    old: vec!["Database recovery".to_string()],
                    new: vec![],
                },
            ],
            new_relations: vec![],
        };
        let updated = idx.apply_delta(&delta);

        let mut ib = IndexBuilder::with_default_tokenizer();
        for (node, text) in [
            (NodeId(0), "Maria Sanchez"),
            (NodeId(1), "Giora Fernandez"),
            (NodeId(2), "Parametric query optimization"),
            (NodeId(4), "Streaming recovery"),
        ] {
            ib.add_text(node, text);
        }
        for kind_name in ["author", "paper"] {
            ib.add_relation_name(kind_name, g.kind_by_name(kind_name).unwrap());
        }
        let rebuilt = ib.build();

        assert_eq!(updated.num_terms(), rebuilt.num_terms());
        for term in rebuilt.terms() {
            assert_eq!(
                updated.postings(term),
                rebuilt.postings(term),
                "term {term}"
            );
        }
        assert_eq!(updated.postings("fernandez"), &[NodeId(1)]);
        assert_eq!(updated.postings("recovery"), &[NodeId(4)]);
        assert!(updated.postings("database").is_empty(), "emptied term gone");
        assert_eq!(updated.postings("sanchez"), &[NodeId(0)]);
        // the source index is untouched
        assert_eq!(idx.postings("fernandez"), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn apply_delta_shares_untouched_posting_lists() {
        let g = tiny_graph();
        let idx = build_index(&g);
        let delta = TextDelta {
            changes: vec![TextChange {
                node: NodeId(3),
                old: vec!["Database recovery".to_string()],
                new: vec!["Database theory".to_string()],
            }],
            new_relations: vec![],
        };
        let updated = idx.apply_delta(&delta);
        // "parametric" was untouched: the very same allocation is shared
        assert!(std::ptr::eq(
            idx.postings("parametric").as_ptr(),
            updated.postings("parametric").as_ptr()
        ));
        // "recovery" was touched: lists diverge
        assert!(updated.postings("recovery").is_empty());
        assert_eq!(idx.postings("recovery"), &[NodeId(3)]);
    }

    #[test]
    fn apply_delta_registers_new_relation_names() {
        let g = tiny_graph();
        let idx = build_index(&g);
        let delta = TextDelta {
            changes: vec![],
            new_relations: vec![("venue".to_string(), KindId(7))],
        };
        let updated = idx.apply_delta(&delta);
        assert_eq!(updated.kinds_for_term("venue"), &[KindId(7)]);
        assert!(idx.kinds_for_term("venue").is_empty());
    }

    #[test]
    fn apply_delta_handles_overlapping_terms() {
        // old and new text share a term: the node must stay posted exactly
        // once, not be removed or duplicated.
        let mut ib = IndexBuilder::with_default_tokenizer();
        ib.add_text(NodeId(0), "database recovery");
        ib.add_text(NodeId(1), "database theory");
        let idx = ib.build();
        let delta = TextDelta {
            changes: vec![TextChange {
                node: NodeId(0),
                old: vec!["database recovery".to_string()],
                new: vec!["database locking".to_string()],
            }],
            new_relations: vec![],
        };
        let updated = idx.apply_delta(&delta);
        assert_eq!(updated.postings("database"), &[NodeId(0), NodeId(1)]);
        assert_eq!(updated.postings("locking"), &[NodeId(0)]);
        assert!(updated.postings("recovery").is_empty());
    }

    #[test]
    fn intersect_sorted_basic() {
        let a = [NodeId(1), NodeId(3), NodeId(5)];
        let b = [NodeId(2), NodeId(3), NodeId(5), NodeId(9)];
        assert_eq!(intersect_sorted(&a, &b), vec![NodeId(3), NodeId(5)]);
        assert!(intersect_sorted(&a, &[]).is_empty());
    }
}
