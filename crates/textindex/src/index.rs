//! The inverted index mapping terms to node posting lists.

use std::collections::HashMap;

use banks_graph::{DataGraph, KindId, NodeId};

use crate::tokenizer::Tokenizer;

/// Statistics about a single indexed term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TermStats {
    /// Number of distinct nodes whose text contains the term.
    pub node_frequency: usize,
    /// Total number of occurrences posted (before per-node deduplication this
    /// equals the collection frequency; we post each node once, so this is
    /// the same as `node_frequency`).
    pub postings: usize,
}

/// Builder accumulating postings before freezing into an [`InvertedIndex`].
#[derive(Debug)]
pub struct IndexBuilder {
    tokenizer: Tokenizer,
    postings: HashMap<String, Vec<NodeId>>,
    /// Relation-name pseudo terms: term -> kind ids whose *entire* node set
    /// matches the term.
    kind_terms: HashMap<String, Vec<KindId>>,
}

impl IndexBuilder {
    /// Creates a builder with the given tokenizer.
    pub fn new(tokenizer: Tokenizer) -> Self {
        IndexBuilder {
            tokenizer,
            postings: HashMap::new(),
            kind_terms: HashMap::new(),
        }
    }

    /// Creates a builder with the default tokenizer.
    pub fn with_default_tokenizer() -> Self {
        Self::new(Tokenizer::new())
    }

    /// Indexes one attribute text for a node.  May be called repeatedly for
    /// the same node (e.g. one call per string attribute).
    pub fn add_text(&mut self, node: NodeId, text: &str) {
        for term in self.tokenizer.tokenize_unique(text) {
            self.postings.entry(term).or_default().push(node);
        }
    }

    /// Registers a relation (kind) name so that a query term equal to the
    /// name matches every node of that kind, as in the paper's query model.
    pub fn add_relation_name(&mut self, name: &str, kind: KindId) {
        for term in self.tokenizer.tokenize_unique(name) {
            self.kind_terms.entry(term).or_default().push(kind);
        }
    }

    /// Number of distinct terms accumulated so far (excluding relation-name
    /// pseudo terms).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Freezes the builder: posting lists are sorted, deduplicated and
    /// boxed.
    pub fn build(self) -> InvertedIndex {
        let IndexBuilder {
            tokenizer,
            postings,
            kind_terms,
        } = self;
        let mut index: HashMap<String, Box<[NodeId]>> = HashMap::with_capacity(postings.len());
        for (term, mut nodes) in postings {
            nodes.sort_unstable();
            nodes.dedup();
            index.insert(term, nodes.into_boxed_slice());
        }
        let mut kinds: HashMap<String, Box<[KindId]>> = HashMap::with_capacity(kind_terms.len());
        for (term, mut ids) in kind_terms {
            ids.sort_unstable();
            ids.dedup();
            kinds.insert(term, ids.into_boxed_slice());
        }
        InvertedIndex {
            tokenizer,
            postings: index,
            kind_terms: kinds,
        }
    }
}

/// Immutable inverted index: term → sorted, deduplicated posting list.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    tokenizer: Tokenizer,
    postings: HashMap<String, Box<[NodeId]>>,
    kind_terms: HashMap<String, Box<[KindId]>>,
}

impl InvertedIndex {
    /// The tokenizer the index was built with (queries must use the same
    /// normalisation).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Number of distinct indexed terms (excluding relation-name pseudo
    /// terms).
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Direct posting-list lookup for an already-normalised single term.
    /// Does not include relation-name expansion.
    pub fn postings(&self, term: &str) -> &[NodeId] {
        self.postings.get(term).map(|b| &**b).unwrap_or(&[])
    }

    /// Kinds whose relation name matches the term.
    pub fn kinds_for_term(&self, term: &str) -> &[KindId] {
        self.kind_terms.get(term).map(|b| &**b).unwrap_or(&[])
    }

    /// Statistics for a term (`None` if the term is not in the vocabulary).
    pub fn term_stats(&self, term: &str) -> Option<TermStats> {
        self.postings.get(term).map(|p| TermStats {
            node_frequency: p.len(),
            postings: p.len(),
        })
    }

    /// Iterates over the vocabulary in arbitrary order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(|s| s.as_str())
    }

    /// Computes the set of nodes matching a (possibly multi-word / phrase)
    /// keyword.  A phrase keyword such as `"david fernandez"` matches nodes
    /// that contain *all* of its words (conjunctive semantics, which is how
    /// the paper's sample queries like DQ1 are phrased).  If the keyword also
    /// matches a relation name, every node of that relation is added
    /// (requires the `graph` to enumerate the kind's nodes).
    pub fn matching_nodes(&self, graph: &DataGraph, keyword: &str) -> Vec<NodeId> {
        let terms = self.tokenizer.tokenize(keyword);
        if terms.is_empty() {
            return Vec::new();
        }

        // Conjunction over the phrase's words: intersect posting lists,
        // starting with the smallest (the classic IR trick the paper cites).
        let mut lists: Vec<&[NodeId]> = terms.iter().map(|t| self.postings(t)).collect();
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<NodeId> = if lists.iter().any(|l| l.is_empty()) {
            Vec::new()
        } else {
            let mut acc: Vec<NodeId> = lists[0].to_vec();
            for list in &lists[1..] {
                acc = intersect_sorted(&acc, list);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        };

        // Relation-name matches: single-word keywords only (the paper's
        // example is a term equal to a table name).
        if terms.len() == 1 {
            for kind in self.kinds_for_term(&terms[0]) {
                result.extend(graph.nodes_of_kind(*kind));
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }

    /// Approximate memory footprint of the posting lists in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(term, nodes)| term.len() + nodes.len() * std::mem::size_of::<NodeId>())
            .sum()
    }
}

/// Intersects two sorted, deduplicated node lists.
fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::GraphBuilder;

    fn tiny_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("author", "David Fernandez");
        let a2 = b.add_node("author", "Giora Fernandez");
        let p1 = b.add_node("paper", "Parametric query optimization");
        let p2 = b.add_node("paper", "Database recovery");
        b.add_edge(p1, a1).unwrap();
        b.add_edge(p2, a2).unwrap();
        b.build_default()
    }

    fn build_index(graph: &DataGraph) -> InvertedIndex {
        let mut ib = IndexBuilder::with_default_tokenizer();
        for node in graph.nodes() {
            ib.add_text(node, graph.node_label(node));
        }
        for kind_name in ["author", "paper"] {
            let kind = graph.kind_by_name(kind_name).unwrap();
            ib.add_relation_name(kind_name, kind);
        }
        ib.build()
    }

    #[test]
    fn single_term_lookup() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert_eq!(idx.postings("fernandez"), &[NodeId(0), NodeId(1)]);
        assert_eq!(idx.postings("recovery"), &[NodeId(3)]);
        assert!(idx.postings("nonexistent").is_empty());
        assert_eq!(idx.term_stats("fernandez").unwrap().node_frequency, 2);
        assert!(idx.term_stats("nonexistent").is_none());
    }

    #[test]
    fn phrase_keywords_intersect() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert_eq!(
            idx.matching_nodes(&g, "\"David Fernandez\""),
            vec![NodeId(0)]
        );
        assert_eq!(idx.matching_nodes(&g, "Giora Fernandez"), vec![NodeId(1)]);
        assert!(idx.matching_nodes(&g, "David Giora").is_empty());
    }

    #[test]
    fn relation_name_matches_all_tuples() {
        let g = tiny_graph();
        let idx = build_index(&g);
        let papers = idx.matching_nodes(&g, "paper");
        assert_eq!(papers, vec![NodeId(2), NodeId(3)]);
        // 'author' matches both author tuples via the kind pseudo-term
        let authors = idx.matching_nodes(&g, "author");
        assert_eq!(authors, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn relation_and_text_matches_are_merged() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("paper", "a paper about papers");
        let _n1 = b.add_node("author", "someone");
        let g = b.build_default();
        let mut ib = IndexBuilder::with_default_tokenizer();
        ib.add_text(n0, g.node_label(n0));
        ib.add_relation_name("paper", g.kind_by_name("paper").unwrap());
        let idx = ib.build();
        // 'paper' matches node 0 both via text and via the relation name;
        // result must be deduplicated.
        assert_eq!(idx.matching_nodes(&g, "paper"), vec![NodeId(0)]);
    }

    #[test]
    fn duplicate_postings_are_deduplicated() {
        let mut ib = IndexBuilder::with_default_tokenizer();
        ib.add_text(NodeId(5), "database systems");
        ib.add_text(NodeId(5), "database recovery");
        ib.add_text(NodeId(2), "database theory");
        let idx = ib.build();
        assert_eq!(idx.postings("database"), &[NodeId(2), NodeId(5)]);
    }

    #[test]
    fn empty_keyword_matches_nothing() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert!(idx.matching_nodes(&g, "").is_empty());
        assert!(idx.matching_nodes(&g, "  ... ").is_empty());
    }

    #[test]
    fn vocabulary_and_memory() {
        let g = tiny_graph();
        let idx = build_index(&g);
        assert!(idx.num_terms() >= 6);
        assert!(idx.terms().any(|t| t == "parametric"));
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn intersect_sorted_basic() {
        let a = [NodeId(1), NodeId(3), NodeId(5)];
        let b = [NodeId(2), NodeId(3), NodeId(5), NodeId(9)];
        assert_eq!(intersect_sorted(&a, &b), vec![NodeId(3), NodeId(5)]);
        assert!(intersect_sorted(&a, &[]).is_empty());
    }
}
