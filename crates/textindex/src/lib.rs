//! # banks-textindex
//!
//! Keyword index substrate for the BANKS-II reproduction.
//!
//! The paper (Section 3) builds "a single index ... on values from selected
//! string-valued attributes from multiple tables. The index maps from
//! keywords to (table-name, tuple-id) pairs", and additionally treats a
//! query term that matches a *relation name* as matching every tuple of that
//! relation (Section 2.2).
//!
//! This crate provides:
//!
//! * [`Tokenizer`] — lower-casing, punctuation-splitting tokenizer with an
//!   optional stop-word list,
//! * [`InvertedIndex`] / [`IndexBuilder`] — term → sorted posting list of
//!   node ids, plus per-kind pseudo terms for relation names; posting
//!   lists are `Arc`-shared so [`InvertedIndex::apply_delta`] can produce
//!   an incrementally-updated successor (only touched nodes re-tokenized,
//!   only affected terms rebuilt) when the graph mutates,
//! * [`Query`] — a parsed keyword query (supporting quoted phrases such as
//!   `"David Fernandez"` from the paper's DQ1), and
//! * [`KeywordMatches`] — the per-term origin sets `S_i` handed to the
//!   search algorithms, along with origin-size statistics used by the
//!   workload classifiers (tiny/small/medium/large keyword categories of
//!   Section 5.6).

pub mod index;
pub mod matches;
pub mod query;
pub mod tokenizer;

pub use index::{IndexBuilder, InvertedIndex, TermStats, TextChange, TextDelta};
pub use matches::KeywordMatches;
pub use query::Query;
pub use tokenizer::Tokenizer;
