//! Per-keyword origin sets (`S_i`) — the interface between the index and the
//! search algorithms.

use std::collections::HashMap;

use banks_graph::{DataGraph, NodeId};

use crate::index::InvertedIndex;
use crate::query::Query;

/// The resolved matches of a query against an index: for every keyword `t_i`
/// the origin set `S_i` of nodes matching it.
///
/// The search algorithms only ever consume this structure, so alternative
/// match sources (e.g. the relational layer's selections, or hand-built sets
/// in unit tests) can construct it directly with
/// [`KeywordMatches::from_sets`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeywordMatches {
    /// The (normalised) keywords, in query order.
    keywords: Vec<String>,
    /// `sets[i]` is the sorted, deduplicated origin set of keyword `i`.
    sets: Vec<Vec<NodeId>>,
}

impl KeywordMatches {
    /// Resolves a query against an inverted index and graph.  The query is
    /// normalized with the index's tokenizer first — callers that already
    /// normalized (to compute a cache key, say) should use
    /// [`KeywordMatches::resolve_normalized`] so normalization happens in
    /// exactly one place.
    pub fn resolve(graph: &DataGraph, index: &InvertedIndex, query: &Query) -> Self {
        Self::resolve_normalized(graph, index, &query.normalized(index.tokenizer()))
    }

    /// Resolves an **already-normalized** query against an inverted index
    /// and graph, without normalizing again.
    pub fn resolve_normalized(graph: &DataGraph, index: &InvertedIndex, query: &Query) -> Self {
        let mut keywords = Vec::with_capacity(query.len());
        let mut sets = Vec::with_capacity(query.len());
        for keyword in query.keywords() {
            keywords.push(keyword.clone());
            sets.push(index.matching_nodes(graph, keyword));
        }
        KeywordMatches { keywords, sets }
    }

    /// Builds matches directly from keyword → node-set pairs (sets are
    /// sorted and deduplicated here).
    pub fn from_sets<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Vec<NodeId>)>,
        S: Into<String>,
    {
        let mut keywords = Vec::new();
        let mut sets = Vec::new();
        for (k, mut nodes) in pairs {
            nodes.sort_unstable();
            nodes.dedup();
            keywords.push(k.into());
            sets.push(nodes);
        }
        KeywordMatches { keywords, sets }
    }

    /// Number of keywords.
    pub fn num_keywords(&self) -> usize {
        self.keywords.len()
    }

    /// True when the query had no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The normalised keyword strings.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Origin set `S_i`.
    pub fn origin_set(&self, i: usize) -> &[NodeId] {
        &self.sets[i]
    }

    /// Sizes of every origin set, in keyword order.
    pub fn origin_sizes(&self) -> Vec<usize> {
        self.sets.iter().map(Vec::len).collect()
    }

    /// True when every keyword matched at least one node (a necessary
    /// condition for any answer to exist).
    pub fn all_keywords_matched(&self) -> bool {
        !self.is_empty() && self.sets.iter().all(|s| !s.is_empty())
    }

    /// Union of all origin sets, deduplicated (the paper's `S`).
    pub fn all_origin_nodes(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.sets.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// For every node that matches at least one keyword, the bitmask of
    /// keyword indices it matches (keyword `i` sets bit `i`).  Keyword counts
    /// beyond 64 are not supported (the paper's queries have 2–7 keywords).
    pub fn node_keyword_bitmask(&self) -> HashMap<NodeId, u64> {
        assert!(
            self.keywords.len() <= 64,
            "more than 64 keywords are not supported"
        );
        let mut map: HashMap<NodeId, u64> = HashMap::new();
        for (i, set) in self.sets.iter().enumerate() {
            for node in set {
                *map.entry(*node).or_insert(0) |= 1 << i;
            }
        }
        map
    }

    /// Largest origin-set size (used by the workload classifier: the paper's
    /// "large origin" queries are those where some keyword matches more than
    /// 8000 records).
    pub fn max_origin_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Smallest origin-set size.
    pub fn min_origin_size(&self) -> usize {
        self.sets.iter().map(Vec::len).min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use banks_graph::GraphBuilder;

    fn setup() -> (DataGraph, InvertedIndex) {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("author", "James Smith");
        let a2 = b.add_node("author", "John Doe");
        let p1 = b.add_node("paper", "Database systems");
        let p2 = b.add_node("paper", "Database recovery");
        b.add_edge(p1, a1).unwrap();
        b.add_edge(p2, a2).unwrap();
        let g = b.build_default();
        let mut ib = IndexBuilder::with_default_tokenizer();
        for n in g.nodes() {
            ib.add_text(n, g.node_label(n));
        }
        (g, ib.build())
    }

    #[test]
    fn resolve_produces_per_keyword_sets() {
        let (g, idx) = setup();
        let q = Query::parse("Database James John");
        let m = KeywordMatches::resolve(&g, &idx, &q);
        assert_eq!(m.num_keywords(), 3);
        assert_eq!(m.origin_set(0), &[NodeId(2), NodeId(3)]);
        assert_eq!(m.origin_set(1), &[NodeId(0)]);
        assert_eq!(m.origin_set(2), &[NodeId(1)]);
        assert_eq!(m.origin_sizes(), vec![2, 1, 1]);
        assert!(m.all_keywords_matched());
        assert_eq!(m.max_origin_size(), 2);
        assert_eq!(m.min_origin_size(), 1);
        assert_eq!(
            m.all_origin_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn unmatched_keyword_detected() {
        let (g, idx) = setup();
        let q = Query::parse("Database nonexistentterm");
        let m = KeywordMatches::resolve(&g, &idx, &q);
        assert!(!m.all_keywords_matched());
        assert_eq!(m.min_origin_size(), 0);
    }

    #[test]
    fn bitmask_combines_keywords() {
        let m = KeywordMatches::from_sets(vec![
            ("a", vec![NodeId(1), NodeId(2)]),
            ("b", vec![NodeId(2), NodeId(3)]),
        ]);
        let mask = m.node_keyword_bitmask();
        assert_eq!(mask[&NodeId(1)], 0b01);
        assert_eq!(mask[&NodeId(2)], 0b11);
        assert_eq!(mask[&NodeId(3)], 0b10);
    }

    #[test]
    fn from_sets_sorts_and_dedups() {
        let m = KeywordMatches::from_sets(vec![("a", vec![NodeId(5), NodeId(1), NodeId(5)])]);
        assert_eq!(m.origin_set(0), &[NodeId(1), NodeId(5)]);
    }

    #[test]
    fn empty_matches() {
        let m = KeywordMatches::from_sets(Vec::<(String, Vec<NodeId>)>::new());
        assert!(m.is_empty());
        assert!(!m.all_keywords_matched());
        assert_eq!(m.max_origin_size(), 0);
    }
}
