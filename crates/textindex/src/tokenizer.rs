//! Tokenisation of attribute text and query strings.

use std::collections::HashSet;

/// Default English stop words.  Deliberately tiny: the paper's point about
/// "frequently occurring terms" (e.g. `database` in DBLP) is that they are
/// *not* stop words and still have to be handled efficiently, so we only
/// drop true function words.
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "that", "the", "to", "with",
];

/// A configurable text tokenizer.
///
/// Splits on any non-alphanumeric character, lower-cases and optionally
/// removes stop words and/or tokens shorter than a minimum length.
#[derive(Clone, Debug)]
pub struct Tokenizer {
    stopwords: HashSet<String>,
    remove_stopwords: bool,
    min_token_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
            remove_stopwords: false,
            min_token_len: 1,
        }
    }
}

impl Tokenizer {
    /// Creates the default tokenizer (no stop-word removal, minimum token
    /// length 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables stop-word removal.
    pub fn with_stopword_removal(mut self, enabled: bool) -> Self {
        self.remove_stopwords = enabled;
        self
    }

    /// Replaces the stop-word list.
    pub fn with_stopwords<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.stopwords = words.into_iter().map(|w| w.into().to_lowercase()).collect();
        self
    }

    /// Sets the minimum token length; shorter tokens are discarded.
    pub fn with_min_token_len(mut self, len: usize) -> Self {
        self.min_token_len = len.max(1);
        self
    }

    /// Returns true if `token` (already lower-case) is a stop word.
    pub fn is_stopword(&self, token: &str) -> bool {
        self.stopwords.contains(token)
    }

    /// Iterates over the configured stop words in arbitrary order
    /// (serialization surface — pair with [`Tokenizer::with_stopwords`]).
    pub fn stopwords(&self) -> impl Iterator<Item = &str> {
        self.stopwords.iter().map(|s| &**s)
    }

    /// Whether stop-word removal is enabled.
    pub fn removes_stopwords(&self) -> bool {
        self.remove_stopwords
    }

    /// The minimum token length; shorter tokens are discarded.
    pub fn min_token_len(&self) -> usize {
        self.min_token_len
    }

    /// Tokenises a text into lower-case terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .filter(|t| t.len() >= self.min_token_len)
            .filter(|t| !self.remove_stopwords || !self.stopwords.contains(t))
            .collect()
    }

    /// Tokenises and deduplicates, preserving first-seen order.  Useful when
    /// indexing a document where each term should be posted once.
    pub fn tokenize_unique(&self, text: &str) -> Vec<String> {
        let mut seen = HashSet::new();
        self.tokenize(text)
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect()
    }

    /// Normalises a single query keyword (phrase keywords are normalised
    /// term-by-term and re-joined with a single space).
    pub fn normalize_keyword(&self, keyword: &str) -> String {
        self.tokenize(keyword).join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Bidirectional Expansion, for Keyword-Search!"),
            vec!["bidirectional", "expansion", "for", "keyword", "search"]
        );
    }

    #[test]
    fn keeps_digits() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("VLDB 2005 paper #31"),
            vec!["vldb", "2005", "paper", "31"]
        );
    }

    #[test]
    fn stopword_removal_is_opt_in() {
        let t = Tokenizer::new();
        assert!(t.tokenize("the query").contains(&"the".to_string()));
        let t = Tokenizer::new().with_stopword_removal(true);
        assert_eq!(t.tokenize("the query"), vec!["query"]);
        assert!(t.is_stopword("the"));
        assert!(!t.is_stopword("query"));
    }

    #[test]
    fn custom_stopwords() {
        let t = Tokenizer::new()
            .with_stopwords(["Foo"])
            .with_stopword_removal(true);
        assert_eq!(t.tokenize("foo bar the"), vec!["bar", "the"]);
    }

    #[test]
    fn min_token_length() {
        let t = Tokenizer::new().with_min_token_len(3);
        assert_eq!(
            t.tokenize("a an and transaction"),
            vec!["and", "transaction"]
        );
    }

    #[test]
    fn unique_preserves_order() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize_unique("data data base data"),
            vec!["data", "base"]
        );
    }

    #[test]
    fn normalizes_phrases() {
        let t = Tokenizer::new();
        assert_eq!(
            t.normalize_keyword("  David   FERNANDEZ "),
            "david fernandez"
        );
        assert_eq!(t.normalize_keyword("C. Mohan"), "c mohan");
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("  ,,, !!").is_empty());
    }
}
