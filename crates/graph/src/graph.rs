//! The immutable, queryable data graph.
//!
//! Since the mutation-first redesign, a [`DataGraph`] is a *persistent*
//! (structurally shared) value: the bulk CSR storage lives behind an `Arc`
//! in a private `BaseStorage`, and a small copy-on-write `Overlay` carries
//! everything a [`crate::MutationBatch`] changed — patched adjacency rows,
//! appended nodes and kinds, relabelled metadata, adjusted degrees.
//! Applying a batch therefore costs O(touched rows), not O(V + E), and the
//! successor graph shares the untouched base with its ancestor byte for
//! byte.  Freshly built graphs have an empty overlay and behave exactly as
//! the flat representation did.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::csr::{CsrAdjacency, CsrRow};
use crate::error::GraphError;
use crate::ids::{KindId, NodeId};
use crate::node::{EdgeKind, NodeMeta};
use crate::weights::ExpansionPolicy;
use crate::Result;

/// Process-wide epoch source: every constructed graph (and every
/// [`DataGraph::bump_epoch`] call) draws a fresh, never-reused value.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A single directed edge of the *expanded* search graph, as returned by the
/// adjacency iterators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRef {
    /// Tail of the edge.
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// Traversal weight of the edge (lower is better / closer).
    pub weight: f64,
    /// Whether this is an original forward edge or a derived backward edge.
    pub kind: EdgeKind,
}

/// One stored adjacency entry of an overlay row: `(neighbour, weight, kind)`
/// in the same shape the CSR rows use.
pub(crate) type OverlayEdge = (u32, f64, EdgeKind);

/// The bulk, immutable storage a family of structurally-shared graphs is
/// built over.  Shared behind an `Arc`; never modified after construction.
#[derive(Debug)]
pub(crate) struct BaseStorage {
    pub(crate) kinds: Vec<String>,
    pub(crate) meta: Vec<NodeMeta>,
    pub(crate) out: CsrAdjacency,
    pub(crate) inc: CsrAdjacency,
    pub(crate) forward_indegree: Vec<u32>,
    pub(crate) forward_outdegree: Vec<u32>,
    /// Ids removed by `RemoveNode`, sorted ascending.  Tombstoned nodes
    /// keep their dense id (never remapped, never reused) but have empty
    /// adjacency rows and an empty label, and are skipped by kind scans.
    pub(crate) tombstones: Vec<u32>,
}

impl BaseStorage {
    /// Heap footprint of the adjacency structures (the quantity
    /// [`DataGraph::memory_bytes`] historically reported).
    fn memory_bytes(&self) -> usize {
        self.out.memory_bytes()
            + self.inc.memory_bytes()
            + self.forward_indegree.len() * 4
            + self.forward_outdegree.len() * 4
            + self.tombstones.len() * 4
    }
}

/// Copy-on-write delta on top of a [`BaseStorage`]: everything mutations
/// changed relative to the shared base.  Cloning an overlay is cheap — the
/// patched rows themselves are `Arc`-shared.
#[derive(Clone, Debug, Default)]
pub(crate) struct Overlay {
    /// Kind names appended beyond `base.kinds`.
    pub(crate) extra_kinds: Vec<String>,
    /// Nodes appended beyond `base.meta` (ids continue the dense range).
    pub(crate) extra_meta: Vec<NodeMeta>,
    /// Metadata overrides for base nodes (relabels).
    pub(crate) meta_patch: HashMap<u32, NodeMeta>,
    /// Out-adjacency rows that replace the base row of a node (also the
    /// only rows appended nodes have).
    pub(crate) out_rows: HashMap<u32, Arc<Vec<OverlayEdge>>>,
    /// In-adjacency rows, mirroring `out_rows`.
    pub(crate) inc_rows: HashMap<u32, Arc<Vec<OverlayEdge>>>,
    /// Forward in-degree overrides.
    pub(crate) indegree_patch: HashMap<u32, u32>,
    /// Forward out-degree overrides.
    pub(crate) outdegree_patch: HashMap<u32, u32>,
    /// Nodes tombstoned since the base was built (ordered for
    /// deterministic iteration).
    pub(crate) tombstones: BTreeSet<u32>,
}

impl Overlay {
    pub(crate) fn is_empty(&self) -> bool {
        self.extra_kinds.is_empty()
            && self.extra_meta.is_empty()
            && self.meta_patch.is_empty()
            && self.out_rows.is_empty()
            && self.inc_rows.is_empty()
            && self.indegree_patch.is_empty()
            && self.outdegree_patch.is_empty()
            && self.tombstones.is_empty()
    }

    /// Approximate heap footprint of the overlay itself (owned, not
    /// shared with the base).
    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let row_bytes = |rows: &HashMap<u32, Arc<Vec<OverlayEdge>>>| {
            rows.values()
                .map(|row| {
                    size_of::<(u32, Arc<Vec<OverlayEdge>>)>() + row.len() * size_of::<OverlayEdge>()
                })
                .sum::<usize>()
        };
        self.extra_kinds.iter().map(|k| k.len()).sum::<usize>()
            + self
                .extra_meta
                .iter()
                .map(|m| size_of::<NodeMeta>() + m.label.len())
                .sum::<usize>()
            + self
                .meta_patch
                .values()
                .map(|m| size_of::<(u32, NodeMeta)>() + m.label.len())
                .sum::<usize>()
            + row_bytes(&self.out_rows)
            + row_bytes(&self.inc_rows)
            + (self.indegree_patch.len() + self.outdegree_patch.len()) * size_of::<(u32, u32)>()
            + self.tombstones.len() * size_of::<u32>()
    }
}

/// Breakdown of a graph's resident memory: the `Arc`-shared base versus the
/// bytes this graph value owns alone.  See [`DataGraph::memory_bytes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphMemory {
    /// Bytes of the shared base storage (adjacency CSRs + degree arrays).
    /// Every graph in a structural-sharing family reports the same number.
    pub shared_bytes: usize,
    /// Bytes owned by this graph alone (its copy-on-write overlay).
    pub owned_bytes: usize,
    /// How many live graph values currently share the base storage.
    pub sharers: usize,
}

impl GraphMemory {
    /// The resident bytes attributable to this graph: its owned overlay
    /// plus an equal share of the base.  Summing this over every sharer
    /// approximates the true resident total without double-counting.
    pub fn attributed_bytes(&self) -> usize {
        self.owned_bytes + self.shared_bytes / self.sharers.max(1)
    }
}

/// One adjacency row: either the shared CSR row or a copy-on-write patch.
enum RowIter<'a> {
    Base(CsrRow<'a>),
    Patch(std::slice::Iter<'a, OverlayEdge>),
    Empty,
}

impl Iterator for RowIter<'_> {
    type Item = (NodeId, f64, EdgeKind);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RowIter::Base(it) => it.next(),
            RowIter::Patch(it) => it.next().map(|(to, w, k)| (NodeId(*to), *w, *k)),
            RowIter::Empty => None,
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIter::Base(it) => it.size_hint(),
            RowIter::Patch(it) => it.size_hint(),
            RowIter::Empty => (0, Some(0)),
        }
    }
}

impl ExactSizeIterator for RowIter<'_> {}

/// Immutable weighted directed graph over which the BANKS search algorithms
/// run.
///
/// The graph stores the *expanded* edge set: every original forward edge
/// `u -> v` and, if the [`ExpansionPolicy`] asks for it, the derived backward
/// edge `v -> u` whose weight penalises hub nodes.  Both the out-adjacency
/// and the in-adjacency are materialised in CSR form, because the backward
/// expanding iterators traverse edges "against the arrow" while the outgoing
/// iterator follows them.
///
/// Graphs are *persistent values*: [`DataGraph::apply_batch`] produces a
/// structurally-shared successor (new epoch, shared base storage, small
/// copy-on-write overlay) instead of a rebuild, and `clone()` is cheap.
#[derive(Clone, Debug)]
pub struct DataGraph {
    pub(crate) base: Arc<BaseStorage>,
    pub(crate) overlay: Overlay,
    pub(crate) num_original_edges: usize,
    pub(crate) num_directed_edges: usize,
    pub(crate) policy: ExpansionPolicy,
    /// Identity/version marker used by result caches: two graphs with the
    /// same epoch hold identical data.  Fresh per construction; clones share
    /// the epoch of the original (same contents).
    pub(crate) epoch: u64,
}

impl DataGraph {
    /// Assembles a graph from already-validated parts.  Used by
    /// [`crate::GraphBuilder::build`]; prefer the builder in user code.
    pub fn from_parts(
        kinds: Vec<String>,
        meta: Vec<NodeMeta>,
        forward_edges: Vec<(NodeId, NodeId, f64)>,
        policy: ExpansionPolicy,
    ) -> Self {
        let n = meta.len();
        let mut forward_indegree = vec![0u32; n];
        let mut forward_outdegree = vec![0u32; n];
        for (u, v, _) in &forward_edges {
            forward_outdegree[u.index()] += 1;
            forward_indegree[v.index()] += 1;
        }

        let expanded_len = if policy.add_backward_edges {
            forward_edges.len() * 2
        } else {
            forward_edges.len()
        };
        let mut expanded: Vec<(NodeId, NodeId, f64, EdgeKind)> = Vec::with_capacity(expanded_len);
        for (u, v, w) in &forward_edges {
            expanded.push((*u, *v, *w, EdgeKind::Forward));
        }
        if policy.add_backward_edges {
            for (u, v, w) in &forward_edges {
                let bw = policy
                    .backward_weight
                    .backward_weight(*w, forward_indegree[v.index()] as usize);
                expanded.push((*v, *u, bw, EdgeKind::Backward));
            }
        }

        let out = CsrAdjacency::from_edges(n, &expanded);
        let reversed: Vec<(NodeId, NodeId, f64, EdgeKind)> = expanded
            .iter()
            .map(|(u, v, w, k)| (*v, *u, *w, *k))
            .collect();
        let inc = CsrAdjacency::from_edges(n, &reversed);
        let num_directed_edges = out.num_edges();

        DataGraph {
            base: Arc::new(BaseStorage {
                kinds,
                meta,
                out,
                inc,
                forward_indegree,
                forward_outdegree,
                tombstones: Vec::new(),
            }),
            overlay: Overlay::default(),
            num_original_edges: forward_edges.len(),
            num_directed_edges,
            policy,
            epoch: fresh_epoch(),
        }
    }

    // ----------------------------------------------------------------- epoch

    /// The graph's epoch: an identity/version marker for result caches and
    /// for online version handoff.
    ///
    /// Each constructed graph gets a unique epoch; clones keep the epoch of
    /// the original (their contents are identical), and
    /// [`DataGraph::bump_epoch`] assigns a fresh one.  Epochs are drawn
    /// from a process-wide counter and **never reused**, which is the
    /// property the layers above build on:
    ///
    /// * result caches fold the epoch into every key, so entries for one
    ///   graph version can never answer for another — invalidation after a
    ///   version change is structural, not a flush;
    /// * the serving tier (`banks-service`) swaps graph versions online by
    ///   replacing an `Arc`-held snapshot: queries pinned to the old
    ///   version keep reporting (and caching under) the old epoch while
    ///   new admissions carry the new one, and the two interleave safely
    ///   in one shared cache precisely because epochs never collide;
    /// * every accepted [`crate::MutationBatch`] produces a successor graph
    ///   under a fresh epoch, so incremental updates invalidate caches with
    ///   exactly the machinery wholesale swaps use.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Assigns the graph a fresh epoch, invalidating every cache entry keyed
    /// on the old one.  Call after out-of-band changes the graph abstraction
    /// cannot see (e.g. rebuilding from mutated source tables while reusing
    /// the same node ids).
    pub fn bump_epoch(&mut self) {
        self.epoch = fresh_epoch();
    }

    /// Restores a previously persisted epoch onto this graph and advances
    /// the process-wide epoch counter past it, so the restored value is
    /// served verbatim across a restart while freshly constructed graphs
    /// can never collide with it.
    ///
    /// Used by crash recovery (`banks-persist`): the epoch counter resets
    /// with the process, but cache keys and the serving tier rely on epochs
    /// never being reused.
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        NEXT_EPOCH.fetch_max(epoch.saturating_add(1), Ordering::Relaxed);
    }

    // ----------------------------------------------------------------- sizes

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.base.meta.len() + self.overlay.extra_meta.len()
    }

    /// Number of nodes in the shared base storage (ids below this bound may
    /// have patched rows; ids at or above it live entirely in the overlay).
    #[inline]
    pub(crate) fn base_nodes(&self) -> usize {
        self.base.meta.len()
    }

    /// Number of *original* forward edges the graph was built from.
    #[inline]
    pub fn num_original_edges(&self) -> usize {
        self.num_original_edges
    }

    /// Number of directed edges in the expanded search graph (forward +
    /// backward).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.num_directed_edges
    }

    /// The policy used to expand the graph.
    #[inline]
    pub fn policy(&self) -> ExpansionPolicy {
        self.policy
    }

    /// Returns true when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    // ------------------------------------------------------------- node data

    /// Validates a node id.
    #[inline]
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.num_nodes() {
            Err(GraphError::NodeOutOfBounds {
                node,
                len: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Metadata of a node.
    #[inline]
    pub fn node_meta(&self, node: NodeId) -> &NodeMeta {
        let i = node.index();
        let base_len = self.base.meta.len();
        if i >= base_len {
            return &self.overlay.extra_meta[i - base_len];
        }
        if !self.overlay.meta_patch.is_empty() {
            if let Some(patched) = self.overlay.meta_patch.get(&node.0) {
                return patched;
            }
        }
        &self.base.meta[i]
    }

    /// Kind id of a node.
    #[inline]
    pub fn node_kind(&self, node: NodeId) -> KindId {
        self.node_meta(node).kind
    }

    /// Kind name of a node (e.g. `"paper"`).
    #[inline]
    pub fn node_kind_name(&self, node: NodeId) -> &str {
        self.kind_name(self.node_kind(node))
    }

    /// Display label of a node.
    #[inline]
    pub fn node_label(&self, node: NodeId) -> &str {
        &self.node_meta(node).label
    }

    /// Number of distinct node kinds.
    #[inline]
    pub fn num_kinds(&self) -> usize {
        self.base.kinds.len() + self.overlay.extra_kinds.len()
    }

    /// Name of a kind.
    #[inline]
    pub fn kind_name(&self, kind: KindId) -> &str {
        let i = kind.index();
        let base_len = self.base.kinds.len();
        if i >= base_len {
            &self.overlay.extra_kinds[i - base_len]
        } else {
            &self.base.kinds[i]
        }
    }

    /// Looks up a kind id by name.
    pub fn kind_by_name(&self, name: &str) -> Option<KindId> {
        self.base
            .kinds
            .iter()
            .chain(self.overlay.extra_kinds.iter())
            .position(|k| k == name)
            .map(KindId::from_index)
    }

    /// All node ids belonging to a given kind, tombstoned nodes excluded.
    /// Linear scan — intended for index construction and tests, not hot
    /// paths.
    pub fn nodes_of_kind(&self, kind: KindId) -> Vec<NodeId> {
        self.nodes()
            .filter(|n| self.node_kind(*n) == kind && !self.is_tombstoned(*n))
            .collect()
    }

    // ------------------------------------------------------------ tombstones

    /// Whether `node` was removed by a [`crate::GraphMutation::RemoveNode`].
    /// Tombstoned nodes keep their id (ids are never remapped or reused —
    /// caches, WAL records and replicas all key on them) but have no edges,
    /// an empty label, and are skipped by [`DataGraph::nodes_of_kind`].
    #[inline]
    pub fn is_tombstoned(&self, node: NodeId) -> bool {
        if !self.overlay.tombstones.is_empty() && self.overlay.tombstones.contains(&node.0) {
            return true;
        }
        self.base.tombstones.binary_search(&node.0).is_ok()
    }

    /// Number of tombstoned (removed) nodes.
    pub fn num_tombstoned(&self) -> usize {
        self.base.tombstones.len() + self.overlay.tombstones.len()
    }

    /// All tombstoned node ids, sorted ascending.
    pub fn tombstoned_nodes(&self) -> Vec<u32> {
        let mut all: Vec<u32> = self.base.tombstones.clone();
        all.extend(self.overlay.tombstones.iter().copied());
        all.sort_unstable();
        all
    }

    // ------------------------------------------------------------- adjacency

    #[inline]
    fn out_row(&self, u: NodeId) -> RowIter<'_> {
        if !self.overlay.out_rows.is_empty() {
            if let Some(row) = self.overlay.out_rows.get(&u.0) {
                return RowIter::Patch(row.iter());
            }
        }
        if u.index() < self.base.meta.len() {
            RowIter::Base(self.base.out.neighbours(u))
        } else {
            RowIter::Empty
        }
    }

    #[inline]
    fn inc_row(&self, v: NodeId) -> RowIter<'_> {
        if !self.overlay.inc_rows.is_empty() {
            if let Some(row) = self.overlay.inc_rows.get(&v.0) {
                return RowIter::Patch(row.iter());
            }
        }
        if v.index() < self.base.meta.len() {
            RowIter::Base(self.base.inc.neighbours(v))
        } else {
            RowIter::Empty
        }
    }

    /// Outgoing edges of `u` in the expanded graph.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out_row(u).map(move |(to, weight, kind)| EdgeRef {
            from: u,
            to,
            weight,
            kind,
        })
    }

    /// Incoming edges of `v` in the expanded graph: every returned
    /// [`EdgeRef`] has `e.to == v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.inc_row(v).map(move |(from, weight, kind)| EdgeRef {
            from,
            to: v,
            weight,
            kind,
        })
    }

    /// Out-degree in the expanded graph.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_row(u).len()
    }

    /// In-degree in the expanded graph.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc_row(v).len()
    }

    /// In-degree counting only original forward edges (this is the quantity
    /// used for backward-edge weighting and for indegree prestige).
    #[inline]
    pub fn forward_indegree(&self, v: NodeId) -> usize {
        if !self.overlay.indegree_patch.is_empty() {
            if let Some(d) = self.overlay.indegree_patch.get(&v.0) {
                return *d as usize;
            }
        }
        if v.index() < self.base.forward_indegree.len() {
            self.base.forward_indegree[v.index()] as usize
        } else {
            0
        }
    }

    /// Out-degree counting only original forward edges.
    #[inline]
    pub fn forward_outdegree(&self, u: NodeId) -> usize {
        if !self.overlay.outdegree_patch.is_empty() {
            if let Some(d) = self.overlay.outdegree_patch.get(&u.0) {
                return *d as usize;
            }
        }
        if u.index() < self.base.forward_outdegree.len() {
            self.base.forward_outdegree[u.index()] as usize
        } else {
            0
        }
    }

    /// Whether a directed edge `u -> v` exists in the expanded graph.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_row(u).any(|(to, _, _)| to == v)
    }

    /// Weight of the cheapest directed edge `u -> v` in the expanded graph.
    #[inline]
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.out_row(u)
            .filter(|(to, _, _)| *to == v)
            .map(|(_, w, _)| w)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }

    /// Weight of the cheapest *forward* edge `u -> v`.
    pub fn forward_edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.out_edges(u)
            .filter(|e| e.to == v && e.kind == EdgeKind::Forward)
            .map(|e| e.weight)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }

    // --------------------------------------------------------------- memory

    /// Approximate resident heap footprint attributable to this graph, in
    /// bytes.
    ///
    /// The adjacency base is structurally shared between a graph and its
    /// mutation successors (and clones), so naively reporting the full base
    /// from every version would double-count what is resident once.  This
    /// method therefore reports the graph's *attributed* bytes: its owned
    /// copy-on-write overlay plus an equal share of the `Arc`-shared base —
    /// summing `memory_bytes()` across all live sharers approximates the
    /// true resident total.  A graph that shares with nobody reports
    /// exactly its full footprint, matching the historical behaviour.
    ///
    /// Use [`DataGraph::memory_breakdown`] for the shared/owned split.
    pub fn memory_bytes(&self) -> usize {
        self.memory_breakdown().attributed_bytes()
    }

    /// The shared/owned memory split behind [`DataGraph::memory_bytes`].
    pub fn memory_breakdown(&self) -> GraphMemory {
        GraphMemory {
            shared_bytes: self.base.memory_bytes(),
            owned_bytes: self.overlay.memory_bytes(),
            sharers: Arc::strong_count(&self.base),
        }
    }

    /// Whether this graph carries a copy-on-write overlay (true after
    /// mutations; false for freshly built or compacted graphs).
    pub fn has_overlay(&self) -> bool {
        !self.overlay.is_empty()
    }

    /// Fraction of nodes whose adjacency rows live in the overlay rather
    /// than the shared base — the signal [`crate::GraphStore`] uses to
    /// decide when compaction pays.
    pub fn overlay_ratio(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            return 0.0;
        }
        self.overlay.out_rows.len() as f64 / n as f64
    }

    /// Rebuilds this graph into flat CSR storage with an empty overlay,
    /// **keeping the epoch** — contents are identical, and equal epochs
    /// promise equal data, so caches keyed on the epoch stay valid.  An
    /// overlay-free graph is returned as a cheap clone.
    pub fn compacted(&self) -> DataGraph {
        if !self.has_overlay() {
            return self.clone();
        }
        let kinds: Vec<String> = (0..self.num_kinds())
            .map(|k| self.kind_name(KindId::from_index(k)).to_string())
            .collect();
        let meta: Vec<NodeMeta> = self.nodes().map(|n| self.node_meta(n).clone()).collect();
        let mut forward: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(self.num_original_edges());
        for u in self.nodes() {
            for e in self.out_edges(u) {
                if e.kind == EdgeKind::Forward {
                    forward.push((u, e.to, e.weight));
                }
            }
        }
        let mut flat = DataGraph::from_parts(kinds, meta, forward, self.policy());
        // Tombstones survive compaction verbatim: the flat base keeps the
        // removed ids (with empty rows and labels) so the dense id space —
        // which WAL records and replicas key on — never shifts.
        let tombstones = self.tombstoned_nodes();
        if !tombstones.is_empty() {
            Arc::get_mut(&mut flat.base)
                .expect("freshly built base has one owner")
                .tombstones = tombstones;
        }
        flat.epoch = self.epoch;
        flat
    }

    // ----------------------------------------------------------- raw storage

    /// Borrows the flat storage arrays of an overlay-free graph, or `None`
    /// when a copy-on-write overlay is present (call
    /// [`DataGraph::compacted`] first).
    ///
    /// This is the serialization surface used by `banks-persist`: the
    /// returned arrays, written verbatim and fed back through
    /// [`DataGraph::from_storage_parts`], reproduce the graph bit for bit —
    /// no re-sorting, no weight recomputation.
    pub fn flat_storage(&self) -> Option<StorageRef<'_>> {
        if self.has_overlay() {
            return None;
        }
        Some(StorageRef {
            kinds: &self.base.kinds,
            meta: &self.base.meta,
            out: &self.base.out,
            inc: &self.base.inc,
            forward_indegree: &self.base.forward_indegree,
            forward_outdegree: &self.base.forward_outdegree,
            tombstones: &self.base.tombstones,
            num_original_edges: self.num_original_edges,
            num_directed_edges: self.num_directed_edges,
            policy: self.policy,
            epoch: self.epoch,
        })
    }

    /// Reassembles a graph from owned storage parts previously obtained via
    /// [`DataGraph::flat_storage`], without rebuilding or re-sorting
    /// anything.  The result carries a fresh epoch; callers restoring a
    /// persisted graph follow up with [`DataGraph::restore_epoch`].
    ///
    /// Structural invariants are validated and violations reported as
    /// [`GraphError::InvalidStorage`] — corrupt input never panics.
    pub fn from_storage_parts(parts: StorageParts) -> Result<Self> {
        let invalid = |message: String| GraphError::InvalidStorage { message };
        let n = parts.meta.len();
        if parts.out.num_nodes() != n || parts.inc.num_nodes() != n {
            return Err(invalid(format!(
                "adjacency covers {} / {} nodes but {} metadata rows are stored",
                parts.out.num_nodes(),
                parts.inc.num_nodes(),
                n
            )));
        }
        if parts.out.num_edges() != parts.inc.num_edges() {
            return Err(invalid(format!(
                "out adjacency has {} edges but in adjacency has {}",
                parts.out.num_edges(),
                parts.inc.num_edges()
            )));
        }
        if parts.forward_indegree.len() != n || parts.forward_outdegree.len() != n {
            return Err(invalid(format!(
                "degree arrays cover {} / {} nodes, expected {}",
                parts.forward_indegree.len(),
                parts.forward_outdegree.len(),
                n
            )));
        }
        if parts.kinds.len() > u16::MAX as usize {
            return Err(invalid(format!(
                "{} kinds exceed u16 ids",
                parts.kinds.len()
            )));
        }
        let num_kinds = parts.kinds.len();
        if let Some(bad) = parts.meta.iter().find(|m| m.kind.index() >= num_kinds) {
            return Err(invalid(format!(
                "node kind {} out of bounds for {} kinds",
                bad.kind.index(),
                num_kinds
            )));
        }
        if !parts.tombstones.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid(
                "tombstone list is not strictly ascending".to_string(),
            ));
        }
        if let Some(&bad) = parts.tombstones.iter().find(|&&t| t as usize >= n) {
            return Err(invalid(format!(
                "tombstoned node {bad} out of bounds for {n} nodes"
            )));
        }
        let num_directed_edges = parts.out.num_edges();
        Ok(DataGraph {
            base: Arc::new(BaseStorage {
                kinds: parts.kinds,
                meta: parts.meta,
                out: parts.out,
                inc: parts.inc,
                forward_indegree: parts.forward_indegree,
                forward_outdegree: parts.forward_outdegree,
                tombstones: parts.tombstones,
            }),
            overlay: Overlay::default(),
            num_original_edges: parts.num_original_edges,
            num_directed_edges,
            policy: parts.policy,
            epoch: fresh_epoch(),
        })
    }
}

/// Borrowed view of an overlay-free graph's flat storage, as returned by
/// [`DataGraph::flat_storage`].  The arrays are exactly what a
/// [`StorageParts`] reassembly expects back.
#[derive(Clone, Copy, Debug)]
pub struct StorageRef<'a> {
    /// Kind names, indexed by [`KindId`].
    pub kinds: &'a [String],
    /// Node metadata, indexed by [`NodeId`].
    pub meta: &'a [NodeMeta],
    /// Out-adjacency of the expanded graph.
    pub out: &'a CsrAdjacency,
    /// In-adjacency of the expanded graph (exact mirror of `out`).
    pub inc: &'a CsrAdjacency,
    /// Forward in-degree per node.
    pub forward_indegree: &'a [u32],
    /// Forward out-degree per node.
    pub forward_outdegree: &'a [u32],
    /// Tombstoned (removed) node ids, sorted ascending; usually empty.
    pub tombstones: &'a [u32],
    /// Number of original forward edges.
    pub num_original_edges: usize,
    /// Number of directed edges in the expanded graph.
    pub num_directed_edges: usize,
    /// The expansion policy the graph was built with.
    pub policy: ExpansionPolicy,
    /// The graph's epoch at serialization time.
    pub epoch: u64,
}

/// Owned storage parts accepted by [`DataGraph::from_storage_parts`].
#[derive(Clone, Debug)]
pub struct StorageParts {
    /// Kind names, indexed by [`KindId`].
    pub kinds: Vec<String>,
    /// Node metadata, indexed by [`NodeId`].
    pub meta: Vec<NodeMeta>,
    /// Out-adjacency of the expanded graph.
    pub out: CsrAdjacency,
    /// In-adjacency of the expanded graph (exact mirror of `out`).
    pub inc: CsrAdjacency,
    /// Forward in-degree per node.
    pub forward_indegree: Vec<u32>,
    /// Forward out-degree per node.
    pub forward_outdegree: Vec<u32>,
    /// Tombstoned (removed) node ids, sorted ascending; usually empty.
    pub tombstones: Vec<u32>,
    /// Number of original forward edges.
    pub num_original_edges: usize,
    /// The expansion policy the graph was built with.
    pub policy: ExpansionPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};

    /// The in- and out-adjacency must be exact mirrors of each other.
    #[test]
    fn in_and_out_adjacency_are_consistent() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 2), (2, 4)]);
        for u in g.nodes() {
            for e in g.out_edges(u) {
                assert!(
                    g.in_edges(e.to)
                        .any(|b| b.from == u && b.weight == e.weight && b.kind == e.kind),
                    "out edge {e:?} missing from in-adjacency"
                );
            }
            for e in g.in_edges(u) {
                assert!(
                    g.out_edges(e.from)
                        .any(|b| b.to == u && b.weight == e.weight && b.kind == e.kind),
                    "in edge {e:?} missing from out-adjacency"
                );
            }
        }
    }

    #[test]
    fn degrees_match_paper_expansion() {
        // star: 3 papers -> 1 conference
        let g = graph_from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        // expanded: forward in-degree of node 0 is 3, and it also has 3
        // outgoing backward edges.
        assert_eq!(g.forward_indegree(NodeId(0)), 3);
        assert_eq!(g.in_degree(NodeId(0)), 3);
        assert_eq!(g.out_degree(NodeId(0)), 3);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.in_degree(NodeId(1)), 1);
    }

    #[test]
    fn kind_lookup_and_metadata() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Gray");
        let p = b.add_node("paper", "Transactions");
        b.add_edge(p, a).unwrap();
        let g = b.build_default();
        assert_eq!(g.num_kinds(), 2);
        assert_eq!(g.node_kind_name(a), "author");
        assert_eq!(g.node_label(p), "Transactions");
        let k = g.kind_by_name("paper").unwrap();
        assert_eq!(g.kind_name(k), "paper");
        assert_eq!(g.nodes_of_kind(k), vec![p]);
        assert!(g.kind_by_name("movie").is_none());
    }

    #[test]
    fn check_node_bounds() {
        let g = graph_from_edges(2, &[(0, 1)]);
        assert!(g.check_node(NodeId(1)).is_ok());
        assert!(g.check_node(NodeId(2)).is_err());
    }

    #[test]
    fn forward_edge_weight_ignores_backward_edges() {
        let g = graph_from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(g.forward_edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        // 1 -> 0 exists only as a backward edge
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.forward_edge_weight(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn empty_graph_is_empty() {
        let g = GraphBuilder::new().build_default();
        assert!(g.is_empty());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn memory_bytes_positive_for_nonempty() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn memory_is_attributed_across_sharers() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let solo = g.memory_bytes();
        let breakdown = g.memory_breakdown();
        assert_eq!(breakdown.sharers, 1);
        assert_eq!(breakdown.owned_bytes, 0, "fresh graph owns no overlay");
        assert_eq!(solo, breakdown.shared_bytes);

        // A clone shares the base: each copy reports roughly half, and the
        // sum stays near the true resident footprint instead of doubling.
        let clone = g.clone();
        let summed = g.memory_bytes() + clone.memory_bytes();
        assert!(summed <= solo + 1, "sum {summed} must not exceed {solo}+1");
        assert_eq!(g.memory_breakdown().sharers, 2);
        drop(clone);
        assert_eq!(g.memory_bytes(), solo, "sole owner reports everything");
    }

    #[test]
    fn epochs_are_unique_per_construction() {
        let a = graph_from_edges(2, &[(0, 1)]);
        let b = graph_from_edges(2, &[(0, 1)]);
        assert_ne!(a.epoch(), b.epoch(), "distinct graphs get distinct epochs");
        let clone = a.clone();
        assert_eq!(a.epoch(), clone.epoch(), "clones share the epoch");
    }

    #[test]
    fn bump_epoch_assigns_a_fresh_value() {
        let mut g = graph_from_edges(2, &[(0, 1)]);
        let before = g.epoch();
        g.bump_epoch();
        assert_ne!(g.epoch(), before);
    }
}
