//! The immutable, queryable data graph.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::CsrAdjacency;
use crate::error::GraphError;
use crate::ids::{KindId, NodeId};
use crate::node::{EdgeKind, NodeMeta};
use crate::weights::ExpansionPolicy;
use crate::Result;

/// Process-wide epoch source: every constructed graph (and every
/// [`DataGraph::bump_epoch`] call) draws a fresh, never-reused value.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A single directed edge of the *expanded* search graph, as returned by the
/// adjacency iterators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRef {
    /// Tail of the edge.
    pub from: NodeId,
    /// Head of the edge.
    pub to: NodeId,
    /// Traversal weight of the edge (lower is better / closer).
    pub weight: f64,
    /// Whether this is an original forward edge or a derived backward edge.
    pub kind: EdgeKind,
}

/// Immutable weighted directed graph over which the BANKS search algorithms
/// run.
///
/// The graph stores the *expanded* edge set: every original forward edge
/// `u -> v` and, if the [`ExpansionPolicy`] asks for it, the derived backward
/// edge `v -> u` whose weight penalises hub nodes.  Both the out-adjacency
/// and the in-adjacency are materialised in CSR form, because the backward
/// expanding iterators traverse edges "against the arrow" while the outgoing
/// iterator follows them.
#[derive(Clone, Debug)]
pub struct DataGraph {
    kinds: Vec<String>,
    meta: Vec<NodeMeta>,
    out: CsrAdjacency,
    inc: CsrAdjacency,
    forward_indegree: Vec<u32>,
    forward_outdegree: Vec<u32>,
    num_original_edges: usize,
    policy: ExpansionPolicy,
    /// Identity/version marker used by result caches: two graphs with the
    /// same epoch hold identical data.  Fresh per construction; clones share
    /// the epoch of the original (same contents).
    epoch: u64,
}

impl DataGraph {
    /// Assembles a graph from already-validated parts.  Used by
    /// [`crate::GraphBuilder::build`]; prefer the builder in user code.
    pub fn from_parts(
        kinds: Vec<String>,
        meta: Vec<NodeMeta>,
        forward_edges: Vec<(NodeId, NodeId, f64)>,
        policy: ExpansionPolicy,
    ) -> Self {
        let n = meta.len();
        let mut forward_indegree = vec![0u32; n];
        let mut forward_outdegree = vec![0u32; n];
        for (u, v, _) in &forward_edges {
            forward_outdegree[u.index()] += 1;
            forward_indegree[v.index()] += 1;
        }

        let expanded_len = if policy.add_backward_edges {
            forward_edges.len() * 2
        } else {
            forward_edges.len()
        };
        let mut expanded: Vec<(NodeId, NodeId, f64, EdgeKind)> = Vec::with_capacity(expanded_len);
        for (u, v, w) in &forward_edges {
            expanded.push((*u, *v, *w, EdgeKind::Forward));
        }
        if policy.add_backward_edges {
            for (u, v, w) in &forward_edges {
                let bw = policy
                    .backward_weight
                    .backward_weight(*w, forward_indegree[v.index()] as usize);
                expanded.push((*v, *u, bw, EdgeKind::Backward));
            }
        }

        let out = CsrAdjacency::from_edges(n, &expanded);
        let reversed: Vec<(NodeId, NodeId, f64, EdgeKind)> = expanded
            .iter()
            .map(|(u, v, w, k)| (*v, *u, *w, *k))
            .collect();
        let inc = CsrAdjacency::from_edges(n, &reversed);

        DataGraph {
            kinds,
            meta,
            out,
            inc,
            forward_indegree,
            forward_outdegree,
            num_original_edges: forward_edges.len(),
            policy,
            epoch: fresh_epoch(),
        }
    }

    // ----------------------------------------------------------------- epoch

    /// The graph's epoch: an identity/version marker for result caches and
    /// for online version handoff.
    ///
    /// Each constructed graph gets a unique epoch; clones keep the epoch of
    /// the original (their contents are identical), and
    /// [`DataGraph::bump_epoch`] assigns a fresh one.  Epochs are drawn
    /// from a process-wide counter and **never reused**, which is the
    /// property the layers above build on:
    ///
    /// * result caches fold the epoch into every key, so entries for one
    ///   graph version can never answer for another — invalidation after a
    ///   version change is structural, not a flush;
    /// * the serving tier (`banks-service`) swaps graph versions online by
    ///   replacing an `Arc`-held snapshot: queries pinned to the old
    ///   version keep reporting (and caching under) the old epoch while
    ///   new admissions carry the new one, and the two interleave safely
    ///   in one shared cache precisely because epochs never collide.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Assigns the graph a fresh epoch, invalidating every cache entry keyed
    /// on the old one.  Call after out-of-band changes the graph abstraction
    /// cannot see (e.g. rebuilding from mutated source tables while reusing
    /// the same node ids).
    pub fn bump_epoch(&mut self) {
        self.epoch = fresh_epoch();
    }

    // ----------------------------------------------------------------- sizes

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.meta.len()
    }

    /// Number of *original* forward edges the graph was built from.
    #[inline]
    pub fn num_original_edges(&self) -> usize {
        self.num_original_edges
    }

    /// Number of directed edges in the expanded search graph (forward +
    /// backward).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// The policy used to expand the graph.
    #[inline]
    pub fn policy(&self) -> ExpansionPolicy {
        self.policy
    }

    /// Returns true when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    // ------------------------------------------------------------- node data

    /// Validates a node id.
    #[inline]
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.num_nodes() {
            Err(GraphError::NodeOutOfBounds {
                node,
                len: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Metadata of a node.
    #[inline]
    pub fn node_meta(&self, node: NodeId) -> &NodeMeta {
        &self.meta[node.index()]
    }

    /// Kind id of a node.
    #[inline]
    pub fn node_kind(&self, node: NodeId) -> KindId {
        self.meta[node.index()].kind
    }

    /// Kind name of a node (e.g. `"paper"`).
    #[inline]
    pub fn node_kind_name(&self, node: NodeId) -> &str {
        &self.kinds[self.meta[node.index()].kind.index()]
    }

    /// Display label of a node.
    #[inline]
    pub fn node_label(&self, node: NodeId) -> &str {
        &self.meta[node.index()].label
    }

    /// Number of distinct node kinds.
    #[inline]
    pub fn num_kinds(&self) -> usize {
        self.kinds.len()
    }

    /// Name of a kind.
    #[inline]
    pub fn kind_name(&self, kind: KindId) -> &str {
        &self.kinds[kind.index()]
    }

    /// Looks up a kind id by name.
    pub fn kind_by_name(&self, name: &str) -> Option<KindId> {
        self.kinds
            .iter()
            .position(|k| k == name)
            .map(KindId::from_index)
    }

    /// All node ids belonging to a given kind.  Linear scan — intended for
    /// index construction and tests, not hot paths.
    pub fn nodes_of_kind(&self, kind: KindId) -> Vec<NodeId> {
        self.nodes()
            .filter(|n| self.node_kind(*n) == kind)
            .collect()
    }

    // ------------------------------------------------------------- adjacency

    /// Outgoing edges of `u` in the expanded graph.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out
            .neighbours(u)
            .map(move |(to, weight, kind)| EdgeRef {
                from: u,
                to,
                weight,
                kind,
            })
    }

    /// Incoming edges of `v` in the expanded graph: every returned
    /// [`EdgeRef`] has `e.to == v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.inc
            .neighbours(v)
            .map(move |(from, weight, kind)| EdgeRef {
                from,
                to: v,
                weight,
                kind,
            })
    }

    /// Out-degree in the expanded graph.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// In-degree in the expanded graph.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc.degree(v)
    }

    /// In-degree counting only original forward edges (this is the quantity
    /// used for backward-edge weighting and for indegree prestige).
    #[inline]
    pub fn forward_indegree(&self, v: NodeId) -> usize {
        self.forward_indegree[v.index()] as usize
    }

    /// Out-degree counting only original forward edges.
    #[inline]
    pub fn forward_outdegree(&self, u: NodeId) -> usize {
        self.forward_outdegree[u.index()] as usize
    }

    /// Whether a directed edge `u -> v` exists in the expanded graph.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out.has_edge(u, v)
    }

    /// Weight of the cheapest directed edge `u -> v` in the expanded graph.
    #[inline]
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.out.edge_weight(u, v)
    }

    /// Weight of the cheapest *forward* edge `u -> v`.
    pub fn forward_edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.out_edges(u)
            .filter(|e| e.to == v && e.kind == EdgeKind::Forward)
            .map(|e| e.weight)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }

    /// Approximate heap footprint of the adjacency structures in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.out.memory_bytes()
            + self.inc.memory_bytes()
            + self.forward_indegree.len() * 4
            + self.forward_outdegree.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};

    /// The in- and out-adjacency must be exact mirrors of each other.
    #[test]
    fn in_and_out_adjacency_are_consistent() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 2), (2, 4)]);
        for u in g.nodes() {
            for e in g.out_edges(u) {
                assert!(
                    g.in_edges(e.to)
                        .any(|b| b.from == u && b.weight == e.weight && b.kind == e.kind),
                    "out edge {e:?} missing from in-adjacency"
                );
            }
            for e in g.in_edges(u) {
                assert!(
                    g.out_edges(e.from)
                        .any(|b| b.to == u && b.weight == e.weight && b.kind == e.kind),
                    "in edge {e:?} missing from out-adjacency"
                );
            }
        }
    }

    #[test]
    fn degrees_match_paper_expansion() {
        // star: 3 papers -> 1 conference
        let g = graph_from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        // expanded: forward in-degree of node 0 is 3, and it also has 3
        // outgoing backward edges.
        assert_eq!(g.forward_indegree(NodeId(0)), 3);
        assert_eq!(g.in_degree(NodeId(0)), 3);
        assert_eq!(g.out_degree(NodeId(0)), 3);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.in_degree(NodeId(1)), 1);
    }

    #[test]
    fn kind_lookup_and_metadata() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Gray");
        let p = b.add_node("paper", "Transactions");
        b.add_edge(p, a).unwrap();
        let g = b.build_default();
        assert_eq!(g.num_kinds(), 2);
        assert_eq!(g.node_kind_name(a), "author");
        assert_eq!(g.node_label(p), "Transactions");
        let k = g.kind_by_name("paper").unwrap();
        assert_eq!(g.kind_name(k), "paper");
        assert_eq!(g.nodes_of_kind(k), vec![p]);
        assert!(g.kind_by_name("movie").is_none());
    }

    #[test]
    fn check_node_bounds() {
        let g = graph_from_edges(2, &[(0, 1)]);
        assert!(g.check_node(NodeId(1)).is_ok());
        assert!(g.check_node(NodeId(2)).is_err());
    }

    #[test]
    fn forward_edge_weight_ignores_backward_edges() {
        let g = graph_from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(g.forward_edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        // 1 -> 0 exists only as a backward edge
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.forward_edge_weight(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn empty_graph_is_empty() {
        let g = GraphBuilder::new().build_default();
        assert!(g.is_empty());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn memory_bytes_positive_for_nonempty() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn epochs_are_unique_per_construction() {
        let a = graph_from_edges(2, &[(0, 1)]);
        let b = graph_from_edges(2, &[(0, 1)]);
        assert_ne!(a.epoch(), b.epoch(), "distinct graphs get distinct epochs");
        let clone = a.clone();
        assert_eq!(a.epoch(), clone.epoch(), "clones share the epoch");
    }

    #[test]
    fn bump_epoch_assigns_a_fresh_value() {
        let mut g = graph_from_edges(2, &[(0, 1)]);
        let before = g.epoch();
        g.bump_epoch();
        assert_ne!(g.epoch(), before);
    }
}
