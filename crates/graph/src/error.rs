//! Error type shared by the graph substrate.

use std::fmt;

use crate::ids::NodeId;

/// Errors produced while building, loading or querying a data graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced by an edge or a query does not exist.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge was added with a non-positive or non-finite weight.
    InvalidEdgeWeight {
        /// Source of the edge.
        from: NodeId,
        /// Target of the edge.
        to: NodeId,
        /// The offending weight.
        weight: f64,
    },
    /// A self-loop was added where the builder forbids them.
    SelfLoop {
        /// The node that would loop onto itself.
        node: NodeId,
    },
    /// A mutation addressed a forward edge that does not exist.
    EdgeNotFound {
        /// Tail of the missing edge.
        from: NodeId,
        /// Head of the missing edge.
        to: NodeId,
    },
    /// A mutation addressed a node that was removed (tombstoned) by an
    /// earlier [`crate::GraphMutation::RemoveNode`].  Tombstoned ids are
    /// never reused, so the id itself stays reserved forever.
    NodeTombstoned {
        /// The removed node.
        node: NodeId,
    },
    /// The serialised form could not be parsed.
    ParseError {
        /// Line number (1-based) at which parsing failed.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Too many distinct node kinds were registered (kind ids are u16).
    TooManyKinds,
    /// Raw storage parts handed to a reassembly constructor are internally
    /// inconsistent (e.g. decoded from a corrupt snapshot).
    InvalidStorage {
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(
                    f,
                    "node {node} is out of bounds for a graph with {len} nodes"
                )
            }
            GraphError::InvalidEdgeWeight { from, to, weight } => {
                write!(f, "edge {from} -> {to} has invalid weight {weight}")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed by the builder")
            }
            GraphError::EdgeNotFound { from, to } => {
                write!(f, "no forward edge {from} -> {to} exists")
            }
            GraphError::NodeTombstoned { node } => {
                write!(f, "node {node} was removed and its id is tombstoned")
            }
            GraphError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::TooManyKinds => {
                write!(f, "more than {} distinct node kinds registered", u16::MAX)
            }
            GraphError::InvalidStorage { message } => {
                write!(f, "inconsistent graph storage: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId(7),
            len: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = GraphError::InvalidEdgeWeight {
            from: NodeId(0),
            to: NodeId(1),
            weight: -1.0,
        };
        assert!(e.to_string().contains("-1"));

        let e = GraphError::SelfLoop { node: NodeId(2) };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::ParseError {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("bad token"));

        let e = GraphError::TooManyKinds;
        assert!(e.to_string().contains("kinds"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::TooManyKinds);
    }
}
