//! [`GraphStore`]: ownership of the *current* graph version plus its
//! mutation log.
//!
//! A [`crate::DataGraph`] is a persistent value — [`DataGraph::apply_batch`]
//! never modifies its receiver — so something has to own "the" graph and
//! advance it as batches land.  `GraphStore` is that owner: it holds the
//! current version, applies batches (keeping a bounded log of what was
//! applied, epoch to epoch), and compacts the copy-on-write overlay back
//! into flat CSR storage when enough of the graph has been overwritten
//! that the overlay indirection stops paying for itself.

use crate::graph::DataGraph;
use crate::mutation::{BatchOutcome, MutationBatch};

/// Default cap on retained [`AppliedBatch`] log entries; older entries are
/// dropped from the front (and counted — see
/// [`MutationLog::dropped`]).  The log is an audit/debugging surface, not a
/// redo log — the current graph is always authoritative.
pub const DEFAULT_LOG_CAPACITY: usize = 1024;

/// A bounded, oldest-first log of [`AppliedBatch`] records.
///
/// Shared by [`GraphStore`] and the serving tier: both need "what batches
/// landed recently" with an explicit record of how many entries the bound
/// silently evicted, so truncation is observable instead of invisible.
#[derive(Clone, Debug)]
pub struct MutationLog {
    entries: Vec<AppliedBatch>,
    capacity: usize,
    dropped: u64,
}

impl MutationLog {
    /// An empty log retaining at most `capacity` entries (a capacity of 0
    /// records nothing and counts every push as dropped).
    pub fn new(capacity: usize) -> Self {
        MutationLog {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting from the front once past capacity.
    pub fn push(&mut self, record: AppliedBatch) {
        self.entries.push(record);
        if self.entries.len() > self.capacity {
            let excess = self.entries.len() - self.capacity;
            self.entries.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// The retained records, oldest first.
    pub fn entries(&self) -> &[AppliedBatch] {
        &self.entries
    }

    /// How many records the capacity bound has evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for MutationLog {
    fn default() -> Self {
        MutationLog::new(DEFAULT_LOG_CAPACITY)
    }
}

/// One applied batch, as recorded in the [`GraphStore`] mutation log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedBatch {
    /// Epoch of the graph the batch was applied to.
    pub parent_epoch: u64,
    /// Epoch of the successor graph the batch produced.
    pub epoch: u64,
    /// Total ops in the batch.
    pub ops: usize,
    /// Ops accepted.
    pub accepted: usize,
    /// Ops rejected (validation failures; they changed nothing).
    pub rejected: usize,
}

/// Owns the current [`DataGraph`] version and a log of the mutation batches
/// that produced it.
///
/// ```
/// use banks_graph::builder::graph_from_edges;
/// use banks_graph::{GraphStore, MutationBatch, NodeId};
///
/// let mut store = GraphStore::new(graph_from_edges(3, &[(0, 1)]));
/// let before = store.epoch();
/// let outcome = store.apply(&MutationBatch::new().add_edge(NodeId(1), NodeId(2)));
/// assert_eq!(outcome.accepted(), 1);
/// assert_ne!(store.epoch(), before);
/// assert!(store.current().has_edge(NodeId(1), NodeId(2)));
/// assert_eq!(store.log().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphStore {
    current: DataGraph,
    log: MutationLog,
}

impl GraphStore {
    /// Wraps a graph as the initial version, retaining
    /// [`DEFAULT_LOG_CAPACITY`] log entries.
    pub fn new(graph: DataGraph) -> Self {
        GraphStore::with_log_capacity(graph, DEFAULT_LOG_CAPACITY)
    }

    /// Wraps a graph as the initial version with an explicit bound on the
    /// in-memory mutation log.  Entries evicted by the bound are counted —
    /// see [`GraphStore::log_dropped`].
    pub fn with_log_capacity(graph: DataGraph, capacity: usize) -> Self {
        GraphStore {
            current: graph,
            log: MutationLog::new(capacity),
        }
    }

    /// The current graph version.  Clone it (cheap — structural sharing)
    /// to pin this version against future [`GraphStore::apply`] calls.
    pub fn current(&self) -> &DataGraph {
        &self.current
    }

    /// Epoch of the current version.
    pub fn epoch(&self) -> u64 {
        self.current.epoch()
    }

    /// Applies a batch: the store advances to the structurally-shared
    /// successor and logs the transition.  A batch in which *no* op was
    /// accepted leaves the store (and its epoch) untouched — readers see
    /// no spurious version churn.
    pub fn apply(&mut self, batch: &MutationBatch) -> BatchOutcome {
        let parent_epoch = self.current.epoch();
        let (next, outcome) = self.current.apply_batch(batch);
        if outcome.accepted() > 0 {
            self.log.push(AppliedBatch {
                parent_epoch,
                epoch: next.epoch(),
                ops: batch.len(),
                accepted: outcome.accepted(),
                rejected: outcome.rejected(),
            });
            self.current = next;
        }
        outcome
    }

    /// The applied-batch log, oldest first (bounded; see [`AppliedBatch`]).
    pub fn log(&self) -> &[AppliedBatch] {
        self.log.entries()
    }

    /// How many log entries the capacity bound has silently evicted.
    pub fn log_dropped(&self) -> u64 {
        self.log.dropped()
    }

    /// The configured mutation-log retention bound.
    pub fn log_capacity(&self) -> usize {
        self.log.capacity()
    }

    /// Replaces the current version wholesale (the `swap_graph` analogue).
    /// The log records nothing — this is not a mutation but a new world.
    pub fn replace(&mut self, graph: DataGraph) {
        self.current = graph;
    }

    /// Rebuilds the current version into flat CSR storage with an empty
    /// overlay, **keeping the epoch** — contents are identical, and equal
    /// epochs promise equal data, so caches stay valid.  Call when
    /// [`DataGraph::overlay_ratio`] says the per-lookup overlay check has
    /// stopped paying (see [`GraphStore::maybe_compact`]).
    pub fn compact(&mut self) {
        self.current = self.current.compacted();
    }

    /// Compacts when more than `ratio` of the nodes carry overlay rows.
    /// Returns whether compaction ran.
    pub fn maybe_compact(&mut self, ratio: f64) -> bool {
        if self.current.overlay_ratio() > ratio {
            self.compact();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::NodeId;

    #[test]
    fn apply_advances_and_logs() {
        let mut store = GraphStore::new(graph_from_edges(4, &[(0, 1), (1, 2)]));
        let e0 = store.epoch();
        let outcome = store.apply(
            &MutationBatch::new()
                .add_edge(NodeId(2), NodeId(3))
                .remove_edge(NodeId(0), NodeId(3)), // rejected
        );
        assert_eq!(outcome.accepted(), 1);
        assert_eq!(outcome.rejected(), 1);
        let log = store.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].parent_epoch, e0);
        assert_eq!(log[0].epoch, store.epoch());
        assert_eq!(log[0].ops, 2);
        assert_eq!(log[0].accepted, 1);
    }

    #[test]
    fn fully_rejected_batches_do_not_advance_the_epoch() {
        let mut store = GraphStore::new(graph_from_edges(2, &[(0, 1)]));
        let e0 = store.epoch();
        let outcome = store.apply(&MutationBatch::new().remove_edge(NodeId(1), NodeId(0)));
        assert_eq!(outcome.accepted(), 0);
        assert_eq!(store.epoch(), e0, "no accepted op, no new version");
        assert!(store.log().is_empty());
    }

    #[test]
    fn compaction_preserves_contents_and_epoch() {
        let mut store = GraphStore::new(graph_from_edges(4, &[(0, 1), (1, 2)]));
        store.apply(
            &MutationBatch::new()
                .add_node("node", "v4")
                .add_edge(NodeId(3), NodeId(4))
                .set_weight(NodeId(0), NodeId(1), 2.5),
        );
        let epoch = store.epoch();
        let before: Vec<Vec<(u32, u64, bool)>> = store
            .current()
            .nodes()
            .map(|u| {
                store
                    .current()
                    .out_edges(u)
                    .map(|e| (e.to.0, e.weight.to_bits(), e.kind.is_backward()))
                    .collect()
            })
            .collect();
        assert!(store.current().has_overlay());
        store.compact();
        assert!(!store.current().has_overlay());
        assert_eq!(store.epoch(), epoch, "identical contents keep the epoch");
        let after: Vec<Vec<(u32, u64, bool)>> = store
            .current()
            .nodes()
            .map(|u| {
                store
                    .current()
                    .out_edges(u)
                    .map(|e| (e.to.0, e.weight.to_bits(), e.kind.is_backward()))
                    .collect()
            })
            .collect();
        assert_eq!(before, after);
        assert_eq!(store.current().node_label(NodeId(4)), "v4");
    }

    #[test]
    fn maybe_compact_uses_the_overlay_ratio() {
        let mut store = GraphStore::new(graph_from_edges(3, &[(0, 1)]));
        store.apply(&MutationBatch::new().add_edge(NodeId(1), NodeId(2)));
        assert!(!store.maybe_compact(0.9), "ratio below threshold");
        assert!(store.current().has_overlay());
        assert!(store.maybe_compact(0.1), "ratio above threshold compacts");
        assert!(!store.current().has_overlay());
    }

    #[test]
    fn log_capacity_bound_is_configurable_and_drops_are_counted() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let mut store = GraphStore::with_log_capacity(g, 2);
        assert_eq!(store.log_capacity(), 2);
        for _ in 0..5 {
            store.apply(&MutationBatch::new().add_node("node", "x"));
        }
        assert_eq!(store.log().len(), 2, "log is bounded");
        assert_eq!(store.log_dropped(), 3, "evictions are counted");
        // The retained entries are the most recent ones.
        assert_eq!(store.log().last().unwrap().epoch, store.epoch());
    }

    #[test]
    fn zero_capacity_log_records_nothing_but_counts_everything() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let mut store = GraphStore::with_log_capacity(g, 0);
        store.apply(&MutationBatch::new().add_node("node", "x"));
        assert!(store.log().is_empty());
        assert_eq!(store.log_dropped(), 1);
    }

    #[test]
    fn replace_swaps_wholesale_without_logging() {
        let mut store = GraphStore::new(graph_from_edges(2, &[(0, 1)]));
        let replacement = graph_from_edges(3, &[(0, 2)]);
        let replacement_epoch = replacement.epoch();
        store.replace(replacement);
        assert_eq!(store.epoch(), replacement_epoch);
        assert!(store.log().is_empty());
    }
}
