//! Graph statistics used by the dataset generators and the benchmark
//! harness to report the shape of the synthetic graphs next to the paper's
//! dataset sizes (DBLP ~2M nodes / 9M edges, US-Patents ~4M / 15M).

use crate::graph::DataGraph;
use crate::ids::KindId;

/// Summary statistics of a [`DataGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of original forward edges.
    pub num_forward_edges: usize,
    /// Number of directed edges in the expanded graph.
    pub num_directed_edges: usize,
    /// Number of node kinds.
    pub num_kinds: usize,
    /// Per-kind node counts, indexed by kind id.
    pub nodes_per_kind: Vec<usize>,
    /// Maximum forward in-degree over all nodes (hubs).
    pub max_forward_indegree: usize,
    /// Mean forward in-degree.
    pub mean_forward_indegree: f64,
    /// Maximum out-degree in the expanded graph.
    pub max_out_degree: usize,
    /// Approximate memory footprint of the adjacency structures in bytes.
    pub memory_bytes: usize,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &DataGraph) -> Self {
        let n = graph.num_nodes();
        let mut nodes_per_kind = vec![0usize; graph.num_kinds()];
        let mut max_forward_indegree = 0usize;
        let mut sum_forward_indegree = 0usize;
        let mut max_out_degree = 0usize;
        for u in graph.nodes() {
            nodes_per_kind[graph.node_kind(u).index()] += 1;
            let fi = graph.forward_indegree(u);
            max_forward_indegree = max_forward_indegree.max(fi);
            sum_forward_indegree += fi;
            max_out_degree = max_out_degree.max(graph.out_degree(u));
        }
        GraphStats {
            num_nodes: n,
            num_forward_edges: graph.num_original_edges(),
            num_directed_edges: graph.num_directed_edges(),
            num_kinds: graph.num_kinds(),
            nodes_per_kind,
            max_forward_indegree,
            mean_forward_indegree: if n == 0 {
                0.0
            } else {
                sum_forward_indegree as f64 / n as f64
            },
            max_out_degree,
            memory_bytes: graph.memory_bytes(),
        }
    }

    /// Count of nodes of a specific kind.
    pub fn nodes_of_kind(&self, kind: KindId) -> usize {
        self.nodes_per_kind.get(kind.index()).copied().unwrap_or(0)
    }

    /// Renders a short human-readable report (used by the `reproduce`
    /// binary and the examples).
    pub fn report(&self, graph: &DataGraph) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "nodes={} forward-edges={} directed-edges={} kinds={} mem={:.1}MiB\n",
            self.num_nodes,
            self.num_forward_edges,
            self.num_directed_edges,
            self.num_kinds,
            self.memory_bytes as f64 / (1024.0 * 1024.0)
        ));
        out.push_str(&format!(
            "max-forward-indegree={} mean-forward-indegree={:.2} max-out-degree={}\n",
            self.max_forward_indegree, self.mean_forward_indegree, self.max_out_degree
        ));
        for (kind_idx, count) in self.nodes_per_kind.iter().enumerate() {
            out.push_str(&format!(
                "  kind {:<16} {:>10} nodes\n",
                graph.kind_name(KindId::from_index(kind_idx)),
                count
            ));
        }
        out
    }
}

/// Degree histogram with logarithmic buckets, used to eyeball the skew the
/// synthetic generators are supposed to produce.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts nodes whose degree `d` satisfies
    /// `2^i <= d + 1 < 2^(i+1)`.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds a histogram of the forward in-degrees.
    pub fn forward_indegree(graph: &DataGraph) -> Self {
        let mut buckets: Vec<usize> = Vec::new();
        for u in graph.nodes() {
            let d = graph.forward_indegree(u);
            let bucket = (usize::BITS - (d + 1).leading_zeros() - 1) as usize;
            if bucket >= buckets.len() {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
        DegreeHistogram { buckets }
    }

    /// Total number of nodes counted.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};

    #[test]
    fn stats_on_star_graph() {
        // 4 papers point to 1 conference
        let g = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 5);
        assert_eq!(s.num_forward_edges, 4);
        assert_eq!(s.num_directed_edges, 8);
        assert_eq!(s.max_forward_indegree, 4);
        assert!((s.mean_forward_indegree - 0.8).abs() < 1e-12);
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn per_kind_counts() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "x");
        let p1 = b.add_node("paper", "p1");
        let p2 = b.add_node("paper", "p2");
        b.add_edge(p1, a).unwrap();
        b.add_edge(p2, a).unwrap();
        let g = b.build_default();
        let s = GraphStats::compute(&g);
        let author = g.kind_by_name("author").unwrap();
        let paper = g.kind_by_name("paper").unwrap();
        assert_eq!(s.nodes_of_kind(author), 1);
        assert_eq!(s.nodes_of_kind(paper), 2);
        let report = s.report(&g);
        assert!(report.contains("author"));
        assert!(report.contains("paper"));
    }

    #[test]
    fn histogram_counts_every_node() {
        let g = graph_from_edges(6, &[(1, 0), (2, 0), (3, 0), (4, 5)]);
        let h = DegreeHistogram::forward_indegree(&g);
        assert_eq!(h.total(), 6);
        // node 0 has indegree 3 -> bucket 2 (since 3+1=4 => bucket log2(4)=2)
        assert!(h.buckets.len() >= 3);
        assert_eq!(h.buckets[2], 1);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphBuilder::new().build_default();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.mean_forward_indegree, 0.0);
    }
}
