//! # banks-graph
//!
//! Weighted directed data-graph substrate for the BANKS-II reproduction
//! ("Bidirectional Expansion For Keyword Search on Graph Databases",
//! VLDB 2005).
//!
//! The paper models a database as a directed graph in which nodes are
//! entities (tuples, XML elements, web pages) and edges are relationships
//! (foreign keys, containment, hyperlinks).  Every *original* ("forward")
//! edge `u -> v` with weight `w(u,v)` additionally induces a *backward*
//! edge `v -> u` whose weight is `w(u,v) * log2(1 + indegree(v))`
//! (Section 2.3 of the paper), so that meaningless shortcuts through hub
//! nodes (e.g. the DBLP "conference" metadata node) are penalised.
//!
//! This crate provides:
//!
//! * [`GraphBuilder`] — an incremental builder that accepts typed nodes and
//!   original forward edges,
//! * [`DataGraph`] — an immutable, compact CSR-style representation holding
//!   both the forward and the induced backward edges, with O(1) access to
//!   the out- and in-adjacency of every node,
//! * [`GraphMutation`] / [`MutationBatch`] / [`DataGraph::apply_batch`] —
//!   first-class incremental updates: a batch produces a structurally
//!   shared successor graph (copy-on-write adjacency, fresh epoch) in
//!   O(touched rows) instead of a rebuild,
//! * [`GraphStore`] — owns the current version, applies batches, keeps the
//!   mutation log, and compacts the overlay when it grows,
//! * [`ExpansionPolicy`] / [`BackwardWeightPolicy`] — the knobs controlling
//!   how backward edges are derived,
//! * traversal helpers ([`traversal`]), statistics ([`stats`]),
//!   Graphviz export ([`dot`]) and a dependency-free text serialisation
//!   format ([`serialize`]).
//!
//! The in-memory representation follows the paper's "the graph is really
//! only an index" philosophy: nodes carry only a kind id and a short label;
//! attribute text lives in the companion `banks-textindex` crate.

pub mod builder;
pub mod codec;
pub mod csr;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ids;
pub mod mutation;
pub mod node;
pub mod partition;
pub mod serialize;
pub mod stats;
pub mod store;
pub mod traversal;
pub mod weights;

pub use builder::GraphBuilder;
pub use codec::{decode_batch, encode_batch};
pub use csr::CsrAdjacency;
pub use error::GraphError;
pub use graph::{DataGraph, EdgeRef, GraphMemory, StorageParts, StorageRef};
pub use ids::{EdgeId, KindId, NodeId};
pub use mutation::{BatchOutcome, GraphMutation, LabelChange, MutationBatch, OpEffect};
pub use node::{EdgeKind, NodeMeta};
pub use partition::{GraphPartition, ShardSpec, ShardStats, ShardSubgraph};
pub use stats::GraphStats;
pub use store::{AppliedBatch, GraphStore, MutationLog, DEFAULT_LOG_CAPACITY};
pub use weights::{BackwardWeightPolicy, ExpansionPolicy};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
