//! Dependency-free text serialisation of data graphs.
//!
//! The format is a simple line-oriented listing so that generated benchmark
//! graphs can be cached on disk and diffed by humans:
//!
//! ```text
//! banks-graph v1
//! kinds 3
//! k author
//! k paper
//! k writes
//! nodes 2
//! n 0 Gray
//! n 1 Transactions
//! edges 1
//! e 1 0 1
//! ```
//!
//! Only the original forward edges are serialised; backward edges are
//! re-derived on load using the expansion policy supplied by the caller.

use std::fmt::Write as _;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::DataGraph;
use crate::ids::{KindId, NodeId};
use crate::node::EdgeKind;
use crate::weights::ExpansionPolicy;
use crate::Result;

/// Magic first line of the format.
const HEADER: &str = "banks-graph v1";

/// Serialises a graph to the text format.
pub fn to_text(graph: &DataGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "kinds {}", graph.num_kinds());
    for i in 0..graph.num_kinds() {
        let _ = writeln!(out, "k {}", graph.kind_name(KindId::from_index(i)));
    }
    let _ = writeln!(out, "nodes {}", graph.num_nodes());
    for u in graph.nodes() {
        let _ = writeln!(
            out,
            "n {} {}",
            graph.node_kind(u).index(),
            graph.node_label(u).replace('\n', " ")
        );
    }
    let _ = writeln!(out, "edges {}", graph.num_original_edges());
    for u in graph.nodes() {
        for e in graph.out_edges(u) {
            if e.kind == EdgeKind::Forward {
                let _ = writeln!(out, "e {} {} {}", e.from.0, e.to.0, e.weight);
            }
        }
    }
    out
}

/// Parses the text format back into a graph, re-deriving backward edges with
/// the given policy.
pub fn from_text(text: &str, policy: ExpansionPolicy) -> Result<DataGraph> {
    let mut lines = text.lines().enumerate();
    let mut expect = |what: &str| -> Result<(usize, String)> {
        match lines.next() {
            Some((idx, line)) => Ok((idx + 1, line.to_string())),
            None => Err(GraphError::ParseError {
                line: 0,
                message: format!("unexpected end of input, expected {what}"),
            }),
        }
    };

    let (line_no, header) = expect("header")?;
    if header.trim() != HEADER {
        return Err(GraphError::ParseError {
            line: line_no,
            message: format!("bad header {header:?}"),
        });
    }

    let (line_no, kinds_line) = expect("kinds count")?;
    let num_kinds = parse_count(&kinds_line, "kinds", line_no)?;
    let mut builder = GraphBuilder::new();
    let mut kind_ids = Vec::with_capacity(num_kinds);
    for _ in 0..num_kinds {
        let (line_no, line) = expect("kind")?;
        let name = line
            .strip_prefix("k ")
            .ok_or_else(|| GraphError::ParseError {
                line: line_no,
                message: "expected `k <name>`".into(),
            })?;
        kind_ids.push(builder.kind(name));
    }

    let (line_no, nodes_line) = expect("nodes count")?;
    let num_nodes = parse_count(&nodes_line, "nodes", line_no)?;
    for _ in 0..num_nodes {
        let (line_no, line) = expect("node")?;
        let rest = line
            .strip_prefix("n ")
            .ok_or_else(|| GraphError::ParseError {
                line: line_no,
                message: "expected `n <kind> <label>`".into(),
            })?;
        let (kind_str, label) = rest.split_once(' ').unwrap_or((rest, ""));
        let kind_idx: usize = kind_str.parse().map_err(|_| GraphError::ParseError {
            line: line_no,
            message: format!("bad kind index {kind_str:?}"),
        })?;
        let kind = *kind_ids.get(kind_idx).ok_or(GraphError::ParseError {
            line: line_no,
            message: format!("kind index {kind_idx} out of range"),
        })?;
        builder.add_node_with_kind(kind, label);
    }

    let (line_no, edges_line) = expect("edges count")?;
    let num_edges = parse_count(&edges_line, "edges", line_no)?;
    for _ in 0..num_edges {
        let (line_no, line) = expect("edge")?;
        let rest = line
            .strip_prefix("e ")
            .ok_or_else(|| GraphError::ParseError {
                line: line_no,
                message: "expected `e <from> <to> <w>`".into(),
            })?;
        let mut parts = rest.split_whitespace();
        let from: u32 = parse_field(parts.next(), line_no, "from")?;
        let to: u32 = parse_field(parts.next(), line_no, "to")?;
        let weight: f64 = parse_field(parts.next(), line_no, "weight")?;
        builder
            .add_edge_weighted(NodeId(from), NodeId(to), weight)
            .map_err(|e| GraphError::ParseError {
                line: line_no,
                message: e.to_string(),
            })?;
    }

    Ok(builder.build(policy))
}

fn parse_count(line: &str, keyword: &str, line_no: usize) -> Result<usize> {
    let rest = line
        .strip_prefix(keyword)
        .map(str::trim)
        .ok_or_else(|| GraphError::ParseError {
            line: line_no,
            message: format!("expected `{keyword} <count>`, got {line:?}"),
        })?;
    rest.parse().map_err(|_| GraphError::ParseError {
        line: line_no,
        message: format!("bad count in {line:?}"),
    })
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, line_no: usize, what: &str) -> Result<T> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| GraphError::ParseError {
            line: line_no,
            message: format!("missing or bad {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Gray");
        let p = b.add_node("paper", "Transactions and Recovery");
        let w = b.add_node("writes", "w0");
        b.add_edge_weighted(w, a, 1.0).unwrap();
        b.add_edge_weighted(w, p, 2.0).unwrap();
        b.build_default()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let text = to_text(&g);
        let g2 = from_text(&text, ExpansionPolicy::paper_default()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_original_edges(), g.num_original_edges());
        assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        for u in g.nodes() {
            assert_eq!(g.node_label(u), g2.node_label(u));
            assert_eq!(g.node_kind_name(u), g2.node_kind_name(u));
            let mut e1: Vec<_> = g.out_edges(u).map(|e| (e.to, e.kind)).collect();
            let mut e2: Vec<_> = g2.out_edges(u).map(|e| (e.to, e.kind)).collect();
            e1.sort_by_key(|(t, k)| (t.0, k.is_backward()));
            e2.sort_by_key(|(t, k)| (t.0, k.is_backward()));
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_text("nonsense\n", ExpansionPolicy::paper_default()).unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
    }

    #[test]
    fn rejects_truncated_input() {
        let g = sample();
        let text = to_text(&g);
        let truncated: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        assert!(from_text(&truncated, ExpansionPolicy::paper_default()).is_err());
    }

    #[test]
    fn rejects_bad_edge_target() {
        let text = "banks-graph v1\nkinds 1\nk node\nnodes 1\nn 0 a\nedges 1\ne 0 7 1\n";
        let err = from_text(text, ExpansionPolicy::paper_default()).unwrap_err();
        assert!(matches!(err, GraphError::ParseError { .. }));
    }

    #[test]
    fn labels_with_spaces_survive() {
        let g = sample();
        let g2 = from_text(&to_text(&g), ExpansionPolicy::paper_default()).unwrap();
        assert_eq!(g2.node_label(NodeId(1)), "Transactions and Recovery");
    }
}
