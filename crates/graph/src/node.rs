//! Node metadata and edge classification.

use crate::ids::KindId;

/// Classification of a directed edge in the expanded search graph.
///
/// The paper distinguishes *forward* edges — the original relationship edges
/// whose weights come from the schema (default 1) — from *backward* edges,
/// which are materialised in the reverse direction of every forward edge with
/// a weight inflated by `log2(1 + indegree)` of the hub node
/// (Section 2.3).  Search algorithms traverse both, but ranking, display and
/// edge-type constraints need to know which is which.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// An original edge present in the source database (foreign key,
    /// containment, hyperlink, ...).
    Forward,
    /// A derived reverse edge added so that answer trees may connect nodes
    /// that only share ancestors (e.g. two papers co-cited by a third).
    Backward,
}

impl EdgeKind {
    /// Returns `true` for [`EdgeKind::Forward`].
    #[inline]
    pub fn is_forward(self) -> bool {
        matches!(self, EdgeKind::Forward)
    }

    /// Returns `true` for [`EdgeKind::Backward`].
    #[inline]
    pub fn is_backward(self) -> bool {
        matches!(self, EdgeKind::Backward)
    }
}

/// Per-node metadata stored inside the graph.
///
/// Deliberately tiny: the data graph is "really only an index"
/// (paper Section 5.1).  Attribute text is indexed by `banks-textindex`
/// and the authoritative tuples live in `banks-relational` (or whatever the
/// source of the graph was); the graph keeps just enough to identify and
/// display a node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMeta {
    /// Which kind (relation / element type) the node belongs to.
    pub kind: KindId,
    /// Short human-readable label, e.g. an author name or paper title.
    pub label: String,
}

impl NodeMeta {
    /// Creates node metadata.
    pub fn new(kind: KindId, label: impl Into<String>) -> Self {
        NodeMeta {
            kind,
            label: label.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_kind_predicates() {
        assert!(EdgeKind::Forward.is_forward());
        assert!(!EdgeKind::Forward.is_backward());
        assert!(EdgeKind::Backward.is_backward());
        assert!(!EdgeKind::Backward.is_forward());
    }

    #[test]
    fn node_meta_construction() {
        let m = NodeMeta::new(KindId(2), "Gray");
        assert_eq!(m.kind, KindId(2));
        assert_eq!(m.label, "Gray");
    }
}
