//! Generic traversal utilities over a [`DataGraph`].
//!
//! These helpers are *not* the paper's search algorithms (those live in
//! `banks-core`); they are reference building blocks used by tests, by the
//! relevance checker and by the dataset generators: breadth-first search,
//! Dijkstra shortest paths (in either edge direction), connected components
//! of the expanded graph and reachability checks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::DataGraph;
use crate::ids::NodeId;

/// Which adjacency a traversal follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from tail to head (`out_edges`).
    Outgoing,
    /// Follow edges from head to tail (`in_edges`).
    Incoming,
}

/// Result of a single-source Dijkstra run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Distance from the source to every node (`f64::INFINITY` if
    /// unreachable).
    pub dist: Vec<f64>,
    /// Predecessor of every node on the shortest path tree
    /// (`None` for the source and unreachable nodes).
    pub pred: Vec<Option<NodeId>>,
    /// The source node.
    pub source: NodeId,
    /// Direction the traversal followed.
    pub direction: Direction,
}

impl ShortestPaths {
    /// Distance to `node`.
    pub fn distance(&self, node: NodeId) -> f64 {
        self.dist[node.index()]
    }

    /// Whether `node` is reachable from the source.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.dist[node.index()].is_finite()
    }

    /// Reconstructs the path from the source to `node` (inclusive on both
    /// ends), or `None` if unreachable.  The returned path is ordered from
    /// the source towards `node`.
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(node) {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while let Some(prev) = self.pred[cur.index()] {
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get a min-heap on distance and
        // break ties on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Runs Dijkstra's algorithm from `source`, following edges in the given
/// direction over the expanded graph.
pub fn dijkstra(graph: &DataGraph, source: NodeId, direction: Direction) -> ShortestPaths {
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        let neighbours: Vec<(NodeId, f64)> = match direction {
            Direction::Outgoing => graph.out_edges(u).map(|e| (e.to, e.weight)).collect(),
            Direction::Incoming => graph.in_edges(u).map(|e| (e.from, e.weight)).collect(),
        };
        for (v, w) in neighbours {
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    ShortestPaths {
        dist,
        pred,
        source,
        direction,
    }
}

/// Breadth-first search returning the hop distance of every node from
/// `source` (usize::MAX for unreachable nodes).
pub fn bfs_levels(graph: &DataGraph, source: NodeId, direction: Direction) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut level = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = level[u.index()] + 1;
        let neighbours: Vec<NodeId> = match direction {
            Direction::Outgoing => graph.out_edges(u).map(|e| e.to).collect(),
            Direction::Incoming => graph.in_edges(u).map(|e| e.from).collect(),
        };
        for v in neighbours {
            if level[v.index()] == usize::MAX {
                level[v.index()] = next;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Returns the weakly connected component id of every node in the expanded
/// graph (treating every directed edge as undirected), along with the number
/// of components.
pub fn weakly_connected_components(graph: &DataGraph) -> (Vec<usize>, usize) {
    let n = graph.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next_comp = 0usize;
    let mut stack = Vec::new();
    for start in graph.nodes() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        comp[start.index()] = next_comp;
        stack.push(start);
        while let Some(u) = stack.pop() {
            let push = |v: NodeId, comp: &mut Vec<usize>, stack: &mut Vec<NodeId>| {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next_comp;
                    stack.push(v);
                }
            };
            for e in graph.out_edges(u) {
                push(e.to, &mut comp, &mut stack);
            }
            for e in graph.in_edges(u) {
                push(e.from, &mut comp, &mut stack);
            }
        }
        next_comp += 1;
    }
    (comp, next_comp)
}

/// True when `target` is reachable from `source` following the given
/// direction.
pub fn is_reachable(
    graph: &DataGraph,
    source: NodeId,
    target: NodeId,
    direction: Direction,
) -> bool {
    bfs_levels(graph, source, direction)[target.index()] != usize::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, graph_from_weighted_edges};
    use crate::weights::ExpansionPolicy;
    use crate::GraphBuilder;

    fn chain_directed(n: usize) -> DataGraph {
        // strictly directed chain 0 -> 1 -> 2 -> ... without backward edges
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node("node", format!("v{i}"));
        }
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1)).unwrap();
        }
        b.build(ExpansionPolicy::directed_only())
    }

    #[test]
    fn dijkstra_on_chain() {
        let g = chain_directed(5);
        let sp = dijkstra(&g, NodeId(0), Direction::Outgoing);
        for i in 0..5u32 {
            assert_eq!(sp.distance(NodeId(i)), i as f64);
        }
        assert_eq!(
            sp.path_to(NodeId(4)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        // reverse direction: nothing reachable from 0 except itself
        let sp_in = dijkstra(&g, NodeId(0), Direction::Incoming);
        assert!(sp_in.is_reachable(NodeId(0)));
        assert!(!sp_in.is_reachable(NodeId(1)));
        assert_eq!(sp_in.path_to(NodeId(1)), None);
    }

    #[test]
    fn dijkstra_respects_weights() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (1): shortest 0~>1 goes through 2.
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge_weighted(NodeId(0), NodeId(1), 10.0).unwrap();
            b.add_edge_weighted(NodeId(0), NodeId(2), 1.0).unwrap();
            b.add_edge_weighted(NodeId(2), NodeId(1), 1.0).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        let sp = dijkstra(&g, NodeId(0), Direction::Outgoing);
        assert_eq!(sp.distance(NodeId(1)), 2.0);
        assert_eq!(
            sp.path_to(NodeId(1)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn incoming_dijkstra_mirrors_outgoing_on_reversed_graph() {
        let g = graph_from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        // With backward edges the graph is strongly connected, but incoming
        // distances from node 3 should equal outgoing distances to node 3.
        let to3 = dijkstra(&g, NodeId(3), Direction::Incoming);
        for u in g.nodes() {
            let from_u = dijkstra(&g, u, Direction::Outgoing);
            let d1 = to3.distance(u);
            let d2 = from_u.distance(NodeId(3));
            assert!((d1 - d2).abs() < 1e-9, "asymmetry at {u}: {d1} vs {d2}");
        }
    }

    #[test]
    fn bfs_levels_and_reachability() {
        let g = chain_directed(4);
        let levels = bfs_levels(&g, NodeId(0), Direction::Outgoing);
        assert_eq!(levels, vec![0, 1, 2, 3]);
        assert!(is_reachable(&g, NodeId(0), NodeId(3), Direction::Outgoing));
        assert!(!is_reachable(&g, NodeId(3), NodeId(0), Direction::Outgoing));
        assert!(is_reachable(&g, NodeId(3), NodeId(0), Direction::Incoming));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[5]);
        assert_ne!(comp[3], comp[5]);
    }

    #[test]
    fn dijkstra_unreachable_nodes_are_infinite() {
        let g = {
            let mut b = GraphBuilder::new();
            b.add_node("node", "a");
            b.add_node("node", "b");
            b.build(ExpansionPolicy::directed_only())
        };
        let sp = dijkstra(&g, NodeId(0), Direction::Outgoing);
        assert!(sp.distance(NodeId(1)).is_infinite());
        assert!(!sp.is_reachable(NodeId(1)));
    }
}
