//! Strongly-typed identifiers for nodes, edges and node kinds.
//!
//! All identifiers are thin wrappers around `u32` so that adjacency arrays
//! stay compact (the paper stresses a `16·|V| + 8·|E|` byte footprint for
//! graphs with tens of millions of elements).  Conversions to and from
//! `usize` are explicit to avoid silent truncation.

use std::fmt;

/// Identifier of a node in a [`crate::DataGraph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in the *expanded* graph (forward and
/// backward edges both receive ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Identifier of a node kind (e.g. the relation name the tuple came from:
/// `"author"`, `"paper"`, `"writes"`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KindId(pub u16);

impl NodeId {
    /// Largest representable node id, used as a sentinel in a few dense maps.
    pub const MAX: NodeId = NodeId(u32::MAX);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "node index {index} overflows u32"
        );
        NodeId(index as u32)
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an edge id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "edge index {index} overflows u32"
        );
        EdgeId(index as u32)
    }
}

impl KindId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a kind id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u16`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index <= u16::MAX as usize,
            "kind index {index} overflows u16"
        );
        KindId(index as u16)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for KindId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for KindId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, EdgeId(7));
    }

    #[test]
    fn kind_id_roundtrip() {
        let id = KindId::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id, KindId(3));
    }

    #[test]
    #[should_panic(expected = "overflows u16")]
    fn kind_id_overflow_panics() {
        let _ = KindId::from_index(70_000);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(5) > EdgeId(4));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", NodeId(9)), "n9");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
        assert_eq!(format!("{:?}", KindId(9)), "k9");
        assert_eq!(format!("{}", NodeId(9)), "9");
    }
}
