//! Policies controlling how the expanded search graph is derived from the
//! original forward edges.

/// How the weight of a derived backward edge `v -> u` is computed from the
/// weight `w` of the original forward edge `u -> v`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum BackwardWeightPolicy {
    /// The paper's default (Section 2.3):
    /// `w(v -> u) = w(u -> v) * log2(1 + indegree(v))`.
    ///
    /// `indegree(v)` is the in-degree of `v` counting only original forward
    /// edges.  Hubs with many incident edges therefore hand out expensive
    /// backward edges, which discourages spurious shortcut answers through
    /// metadata nodes such as DBLP's "conference" node.
    #[default]
    IndegreeLog,
    /// Backward edges copy the forward weight unchanged.  Corresponds to
    /// treating the graph as undirected (the DBXplorer / Discover model).
    Mirror,
    /// Backward edges get a fixed constant weight regardless of the forward
    /// weight or the indegree.
    Constant(f64),
    /// `w(v -> u) = w(u -> v) * factor * log2(1 + indegree(v))` — the paper's
    /// rule with an additional multiplicative knob, useful for ablations.
    ScaledIndegreeLog(f64),
}

impl BackwardWeightPolicy {
    /// Computes the backward-edge weight for a forward edge of weight
    /// `forward_weight` whose head node has `indegree` incoming forward
    /// edges.
    #[inline]
    pub fn backward_weight(&self, forward_weight: f64, indegree: usize) -> f64 {
        match self {
            BackwardWeightPolicy::IndegreeLog => {
                forward_weight * (1.0 + indegree as f64).log2().max(1.0)
            }
            BackwardWeightPolicy::Mirror => forward_weight,
            BackwardWeightPolicy::Constant(w) => *w,
            BackwardWeightPolicy::ScaledIndegreeLog(factor) => {
                forward_weight * factor * (1.0 + indegree as f64).log2().max(1.0)
            }
        }
    }
}

/// Full set of options used when freezing a [`crate::GraphBuilder`] into a
/// [`crate::DataGraph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpansionPolicy {
    /// Whether backward edges are materialised at all.  The paper's model
    /// requires them; disabling is useful for experiments on strictly
    /// directed reachability.
    pub add_backward_edges: bool,
    /// How the backward weights are derived.
    pub backward_weight: BackwardWeightPolicy,
    /// Default weight assigned to forward edges added without an explicit
    /// weight (the paper: "defined by the schema, and default to 1").
    pub default_forward_weight: f64,
}

impl Default for ExpansionPolicy {
    fn default() -> Self {
        ExpansionPolicy {
            add_backward_edges: true,
            backward_weight: BackwardWeightPolicy::IndegreeLog,
            default_forward_weight: 1.0,
        }
    }
}

impl ExpansionPolicy {
    /// The paper's configuration (backward edges weighted by
    /// `log2(1 + indegree)`).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// An undirected-style configuration in which backward edges mirror the
    /// forward weight.
    pub fn undirected_like() -> Self {
        ExpansionPolicy {
            add_backward_edges: true,
            backward_weight: BackwardWeightPolicy::Mirror,
            default_forward_weight: 1.0,
        }
    }

    /// A strictly directed configuration with no backward edges.
    pub fn directed_only() -> Self {
        ExpansionPolicy {
            add_backward_edges: false,
            backward_weight: BackwardWeightPolicy::IndegreeLog,
            default_forward_weight: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indegree_log_grows_with_indegree() {
        let p = BackwardWeightPolicy::IndegreeLog;
        let w1 = p.backward_weight(1.0, 1);
        let w3 = p.backward_weight(1.0, 3);
        let w100 = p.backward_weight(1.0, 100);
        assert!(w1 <= w3 && w3 < w100);
        // log2(1 + 3) = 2
        assert!((w3 - 2.0).abs() < 1e-12);
        // log2(101) ~ 6.658
        assert!((w100 - (101f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn indegree_log_never_cheaper_than_forward() {
        // With indegree 0 the log would be 0; the policy clamps at 1 so a
        // backward edge is never cheaper than its forward counterpart.
        let p = BackwardWeightPolicy::IndegreeLog;
        assert!((p.backward_weight(2.5, 0) - 2.5).abs() < 1e-12);
        assert!((p.backward_weight(2.5, 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mirror_and_constant_policies() {
        assert_eq!(BackwardWeightPolicy::Mirror.backward_weight(3.0, 1000), 3.0);
        assert_eq!(
            BackwardWeightPolicy::Constant(7.5).backward_weight(3.0, 1000),
            7.5
        );
    }

    #[test]
    fn scaled_policy_multiplies() {
        let p = BackwardWeightPolicy::ScaledIndegreeLog(2.0);
        let base = BackwardWeightPolicy::IndegreeLog.backward_weight(1.5, 7);
        assert!((p.backward_weight(1.5, 7) - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn default_policy_matches_paper() {
        let policy = ExpansionPolicy::default();
        assert!(policy.add_backward_edges);
        assert_eq!(policy.backward_weight, BackwardWeightPolicy::IndegreeLog);
        assert_eq!(policy.default_forward_weight, 1.0);
        assert_eq!(ExpansionPolicy::paper_default(), policy);
    }

    #[test]
    fn preset_policies() {
        assert_eq!(
            ExpansionPolicy::undirected_like().backward_weight,
            BackwardWeightPolicy::Mirror
        );
        assert!(!ExpansionPolicy::directed_only().add_backward_edges);
    }
}
