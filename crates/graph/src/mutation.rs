//! First-class graph mutations: incremental updates without a rebuild.
//!
//! BANKS assumes the data graph is kept current as the underlying database
//! changes.  Historically this repo's only update path was wholesale
//! replacement — rebuild the CSR adjacency, the prestige vector and the
//! inverted index from scratch and swap the snapshot.  This module makes
//! *mutations* the first-class API instead:
//!
//! * [`GraphMutation`] — one atomic change (add a node or edge, remove an
//!   edge, relabel a node, reweight an edge),
//! * [`MutationBatch`] — an ordered list of mutations applied together,
//! * [`DataGraph::apply_batch`] — produces a **structurally-shared
//!   successor graph** under a fresh epoch: the bulk CSR base is shared
//!   untouched behind an `Arc`, and only the adjacency rows the batch
//!   actually dirtied are rewritten into the copy-on-write overlay,
//! * [`BatchOutcome`] — per-op accept/reject results plus the delta the
//!   layers above need (dirty nodes for prestige refresh, label changes for
//!   index deltas, newly interned kinds).
//!
//! ## Semantics
//!
//! Ops apply **in order** and see the effects of earlier ops in the same
//! batch (an edge may target a node added three ops earlier).  A rejected
//! op changes nothing and does not abort the batch — the outcome records
//! one `Result` per op.  The successor graph is *equivalent to a from-
//! scratch rebuild* of the same final state: adjacency rows, derived
//! backward-edge weights (which depend on the head node's forward
//! in-degree, so edge insertions fan out to the head's other backward
//! edges) and iteration order are all byte-identical to what
//! [`crate::GraphBuilder`] would produce — the property the randomized
//! equivalence suite asserts through all three search engines.
//!
//! * `AddEdge`/`RemoveEdge`/`SetWeight` address *forward* edges; derived
//!   backward edges follow automatically, including the weight fan-out to
//!   every backward edge leaving a node whose in-degree changed.
//! * `RemoveEdge` and `SetWeight` affect **all** parallel forward edges
//!   between the pair.
//! * Self-loops are rejected (the tuple graphs the paper models never
//!   contain them).
//!
//! Cost: O(Σ degree of dirtied rows), not O(V + E).  A node whose
//! in-degree changed dirties its own rows plus the in-rows of its forward
//! predecessors (their backward edges from it change weight) — still local,
//! bounded by the neighbourhood of the touched nodes.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use crate::error::GraphError;
use crate::graph::{fresh_epoch, DataGraph, OverlayEdge};
use crate::ids::{KindId, NodeId};
use crate::node::{EdgeKind, NodeMeta};

/// One atomic change to a [`DataGraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum GraphMutation {
    /// Appends a node of the given kind (interned by name, created if new)
    /// with a display label.  The node id is assigned densely.
    AddNode {
        /// Kind (relation) name, e.g. `"paper"`.
        kind: String,
        /// Display label; also what label-based keyword indexes tokenize.
        label: String,
    },
    /// Adds an original forward edge `from -> to`.
    AddEdge {
        /// Tail of the edge.
        from: NodeId,
        /// Head of the edge.
        to: NodeId,
        /// Forward weight; `None` uses the policy default.
        weight: Option<f64>,
    },
    /// Removes **every** forward edge `from -> to` (and the derived
    /// backward edges).  Rejected if none exists.
    RemoveEdge {
        /// Tail of the edge(s).
        from: NodeId,
        /// Head of the edge(s).
        to: NodeId,
    },
    /// Replaces a node's display label.
    SetLabel {
        /// The node to relabel.
        node: NodeId,
        /// The new label.
        label: String,
    },
    /// Sets the forward weight of **every** forward edge `from -> to`
    /// (derived backward weights follow).  Rejected if none exists.
    SetWeight {
        /// Tail of the edge(s).
        from: NodeId,
        /// Head of the edge(s).
        to: NodeId,
        /// The new forward weight (finite, positive).
        weight: f64,
    },
    /// Removes a node: every incident forward edge (in both directions,
    /// with the usual backward-weight fan-out to affected neighbours) is
    /// removed, the label is cleared so keyword indexes drop its postings,
    /// and the id is **tombstoned** — never remapped, never reused, skipped
    /// by kind scans, and rejected by every later op that addresses it.
    /// Compaction carries tombstones into the flat base so the dense id
    /// space (which caches, WAL records and replicas key on) never shifts.
    RemoveNode {
        /// The node to remove.
        node: NodeId,
    },
}

/// An ordered list of [`GraphMutation`]s applied as one unit.
///
/// ```
/// use banks_graph::builder::graph_from_edges;
/// use banks_graph::{MutationBatch, NodeId};
///
/// let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
/// let batch = MutationBatch::new()
///     .add_node("node", "v3")
///     .add_edge(NodeId(2), NodeId(3))
///     .remove_edge(NodeId(0), NodeId(1));
/// let (g2, outcome) = g.apply_batch(&batch);
/// assert_eq!(outcome.accepted(), 3);
/// assert_eq!(g2.num_nodes(), 4);
/// assert!(g2.has_edge(NodeId(2), NodeId(3)));
/// assert!(!g2.has_edge(NodeId(0), NodeId(1)));
/// assert_ne!(g2.epoch(), g.epoch(), "successors get a fresh epoch");
/// assert!(g.has_edge(NodeId(0), NodeId(1)), "the ancestor is untouched");
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationBatch {
    ops: Vec<GraphMutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an arbitrary op.
    pub fn push(&mut self, op: GraphMutation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Chainable [`GraphMutation::AddNode`].
    pub fn add_node(mut self, kind: impl Into<String>, label: impl Into<String>) -> Self {
        self.ops.push(GraphMutation::AddNode {
            kind: kind.into(),
            label: label.into(),
        });
        self
    }

    /// Chainable [`GraphMutation::AddEdge`] with the policy-default weight.
    pub fn add_edge(mut self, from: NodeId, to: NodeId) -> Self {
        self.ops.push(GraphMutation::AddEdge {
            from,
            to,
            weight: None,
        });
        self
    }

    /// Chainable [`GraphMutation::AddEdge`] with an explicit weight.
    pub fn add_edge_weighted(mut self, from: NodeId, to: NodeId, weight: f64) -> Self {
        self.ops.push(GraphMutation::AddEdge {
            from,
            to,
            weight: Some(weight),
        });
        self
    }

    /// Chainable [`GraphMutation::RemoveEdge`].
    pub fn remove_edge(mut self, from: NodeId, to: NodeId) -> Self {
        self.ops.push(GraphMutation::RemoveEdge { from, to });
        self
    }

    /// Chainable [`GraphMutation::SetLabel`].
    pub fn set_label(mut self, node: NodeId, label: impl Into<String>) -> Self {
        self.ops.push(GraphMutation::SetLabel {
            node,
            label: label.into(),
        });
        self
    }

    /// Chainable [`GraphMutation::SetWeight`].
    pub fn set_weight(mut self, from: NodeId, to: NodeId, weight: f64) -> Self {
        self.ops.push(GraphMutation::SetWeight { from, to, weight });
        self
    }

    /// Chainable [`GraphMutation::RemoveNode`].
    pub fn remove_node(mut self, node: NodeId) -> Self {
        self.ops.push(GraphMutation::RemoveNode { node });
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[GraphMutation] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What an accepted op did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpEffect {
    /// A node was appended under this id.
    NodeAdded(NodeId),
    /// One forward edge was added.
    EdgeAdded {
        /// Tail of the new edge.
        from: NodeId,
        /// Head of the new edge.
        to: NodeId,
    },
    /// `count` parallel forward edges were removed.
    EdgesRemoved {
        /// Tail of the removed edge(s).
        from: NodeId,
        /// Head of the removed edge(s).
        to: NodeId,
        /// How many parallel forward edges went away.
        count: usize,
    },
    /// A node's label was replaced.
    LabelSet(NodeId),
    /// `count` parallel forward edges were reweighted.
    WeightSet {
        /// Tail of the reweighted edge(s).
        from: NodeId,
        /// Head of the reweighted edge(s).
        to: NodeId,
        /// How many parallel forward edges changed weight.
        count: usize,
    },
    /// A node was tombstoned and its incident edges removed.
    NodeRemoved {
        /// The removed node.
        node: NodeId,
        /// How many forward edges (in both directions) went away with it.
        edges_removed: usize,
    },
}

/// A label change an accepted batch produced, in the form keyword-index
/// deltas consume: the node and the label it had *before* the batch
/// (`None` for nodes the batch itself added).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelChange {
    /// The node whose indexed text changed.
    pub node: NodeId,
    /// The pre-batch label (what the index currently holds), or `None` if
    /// the node did not exist before the batch.
    pub old_label: Option<String>,
}

/// Everything [`DataGraph::apply_batch`] reports back: per-op results plus
/// the delta the derived structures (prestige, keyword index) need.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// One result per op, in batch order: the effect, or why the op was
    /// rejected.  Rejected ops change nothing.
    pub results: Vec<std::result::Result<OpEffect, GraphError>>,
    /// Nodes whose forward in-degree changed, plus every node the batch
    /// added — the dirty set an incremental prestige recompute refreshes.
    pub dirty_nodes: Vec<NodeId>,
    /// Nodes whose indexed text changed (added or relabelled), with their
    /// pre-batch labels — the input to an inverted-index delta.
    pub label_changes: Vec<LabelChange>,
    /// Kind names the batch interned for the first time, with their ids —
    /// keyword indexes register these as relation-name pseudo terms.
    pub new_kinds: Vec<(String, KindId)>,
}

impl BatchOutcome {
    /// Number of accepted ops.
    pub fn accepted(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of rejected ops.
    pub fn rejected(&self) -> usize {
        self.results.len() - self.accepted()
    }
}

impl DataGraph {
    /// Applies a [`MutationBatch`], producing a structurally-shared
    /// successor graph (fresh epoch) and the per-op [`BatchOutcome`].
    ///
    /// `self` is untouched — it remains a fully valid graph for in-flight
    /// readers, sharing its base storage with the successor.  See the
    /// [module docs](crate::mutation) for semantics and cost.
    pub fn apply_batch(&self, batch: &MutationBatch) -> (DataGraph, BatchOutcome) {
        let mut delta = DeltaBuilder::new(self);
        let results: Vec<_> = batch.ops().iter().map(|op| delta.apply(op)).collect();
        delta.finish(results)
    }
}

/// Working state while a batch is applied: lazily-materialised forward
/// adjacency for touched nodes, pending metadata, and the dirty sets the
/// final row rebuild works from.
struct DeltaBuilder<'g> {
    g: &'g DataGraph,
    /// `g.num_nodes()` — ids at or above this are batch-added.
    base_nodes: usize,
    new_kinds: Vec<String>,
    new_meta: Vec<NodeMeta>,
    /// Base-node label overrides (batch-added nodes are edited in
    /// `new_meta` directly).
    label_patch: HashMap<u32, String>,
    /// First-seen pre-batch label per text-changed node (`None`: added by
    /// this batch).  BTreeMap for deterministic outcome ordering.
    label_old: BTreeMap<u32, Option<String>>,
    /// Current forward out-lists `(to, weight)` of materialised nodes.
    fwd_out: HashMap<u32, Vec<(u32, f64)>>,
    /// Current forward in-lists `(from, weight)` of materialised nodes.
    fwd_in: HashMap<u32, Vec<(u32, f64)>>,
    indeg_delta: HashMap<u32, i64>,
    outdeg_delta: HashMap<u32, i64>,
    /// Nodes whose own adjacency definitely changed.
    touched: BTreeSet<u32>,
    /// Nodes tombstoned by this batch (on top of the graph's own set).
    tombstoned: BTreeSet<u32>,
    original_edges_delta: i64,
}

impl<'g> DeltaBuilder<'g> {
    fn new(g: &'g DataGraph) -> Self {
        DeltaBuilder {
            g,
            base_nodes: g.num_nodes(),
            new_kinds: Vec::new(),
            new_meta: Vec::new(),
            label_patch: HashMap::new(),
            label_old: BTreeMap::new(),
            fwd_out: HashMap::new(),
            fwd_in: HashMap::new(),
            indeg_delta: HashMap::new(),
            outdeg_delta: HashMap::new(),
            touched: BTreeSet::new(),
            tombstoned: BTreeSet::new(),
            original_edges_delta: 0,
        }
    }

    fn num_nodes(&self) -> usize {
        self.base_nodes + self.new_meta.len()
    }

    fn check_node(&self, node: NodeId) -> std::result::Result<(), GraphError> {
        if node.index() >= self.num_nodes() {
            Err(GraphError::NodeOutOfBounds {
                node,
                len: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    /// Bounds check plus tombstone check: ops may not address a node the
    /// graph (or an earlier op in this batch) removed.
    fn check_live(&self, node: NodeId) -> std::result::Result<(), GraphError> {
        self.check_node(node)?;
        if self.tombstoned.contains(&node.0) || self.g.is_tombstoned(node) {
            return Err(GraphError::NodeTombstoned { node });
        }
        Ok(())
    }

    fn ensure_fwd_out(&mut self, u: u32) {
        if !self.fwd_out.contains_key(&u) {
            let list: Vec<(u32, f64)> = if (u as usize) < self.base_nodes {
                self.g
                    .out_edges(NodeId(u))
                    .filter(|e| e.kind.is_forward())
                    .map(|e| (e.to.0, e.weight))
                    .collect()
            } else {
                Vec::new()
            };
            self.fwd_out.insert(u, list);
        }
    }

    fn ensure_fwd_in(&mut self, v: u32) {
        if !self.fwd_in.contains_key(&v) {
            let list: Vec<(u32, f64)> = if (v as usize) < self.base_nodes {
                self.g
                    .in_edges(NodeId(v))
                    .filter(|e| e.kind.is_forward())
                    .map(|e| (e.from.0, e.weight))
                    .collect()
            } else {
                Vec::new()
            };
            self.fwd_in.insert(v, list);
        }
    }

    fn apply(&mut self, op: &GraphMutation) -> std::result::Result<OpEffect, GraphError> {
        match op {
            GraphMutation::AddNode { kind, label } => self.add_node(kind, label),
            GraphMutation::AddEdge { from, to, weight } => self.add_edge(*from, *to, *weight),
            GraphMutation::RemoveEdge { from, to } => self.remove_edge(*from, *to),
            GraphMutation::SetLabel { node, label } => self.set_label(*node, label),
            GraphMutation::SetWeight { from, to, weight } => self.set_weight(*from, *to, *weight),
            GraphMutation::RemoveNode { node } => self.remove_node(*node),
        }
    }

    fn intern_kind(&mut self, name: &str) -> std::result::Result<KindId, GraphError> {
        if let Some(id) = self.g.kind_by_name(name) {
            return Ok(id);
        }
        let existing = self.g.num_kinds();
        if let Some(pos) = self.new_kinds.iter().position(|k| k == name) {
            return Ok(KindId::from_index(existing + pos));
        }
        if existing + self.new_kinds.len() >= u16::MAX as usize {
            return Err(GraphError::TooManyKinds);
        }
        self.new_kinds.push(name.to_string());
        Ok(KindId::from_index(existing + self.new_kinds.len() - 1))
    }

    fn add_node(&mut self, kind: &str, label: &str) -> std::result::Result<OpEffect, GraphError> {
        let id = self.num_nodes();
        if id >= u32::MAX as usize {
            return Err(GraphError::NodeOutOfBounds {
                node: NodeId::MAX,
                len: id,
            });
        }
        let kind = self.intern_kind(kind)?;
        self.new_meta.push(NodeMeta::new(kind, label));
        let node = NodeId::from_index(id);
        self.label_old.insert(node.0, None);
        Ok(OpEffect::NodeAdded(node))
    }

    fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: Option<f64>,
    ) -> std::result::Result<OpEffect, GraphError> {
        self.check_live(from)?;
        self.check_live(to)?;
        if from == to {
            return Err(GraphError::SelfLoop { node: from });
        }
        let w = match weight {
            Some(w) if !w.is_finite() || w <= 0.0 => {
                return Err(GraphError::InvalidEdgeWeight {
                    from,
                    to,
                    weight: w,
                });
            }
            Some(w) => w,
            None => self.g.policy().default_forward_weight,
        };
        self.ensure_fwd_out(from.0);
        self.ensure_fwd_in(to.0);
        self.fwd_out
            .get_mut(&from.0)
            .expect("ensured")
            .push((to.0, w));
        self.fwd_in
            .get_mut(&to.0)
            .expect("ensured")
            .push((from.0, w));
        *self.indeg_delta.entry(to.0).or_insert(0) += 1;
        *self.outdeg_delta.entry(from.0).or_insert(0) += 1;
        self.touched.insert(from.0);
        self.touched.insert(to.0);
        self.original_edges_delta += 1;
        Ok(OpEffect::EdgeAdded { from, to })
    }

    fn remove_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> std::result::Result<OpEffect, GraphError> {
        self.check_live(from)?;
        self.check_live(to)?;
        self.ensure_fwd_out(from.0);
        let count = self
            .fwd_out
            .get(&from.0)
            .expect("ensured")
            .iter()
            .filter(|(t, _)| *t == to.0)
            .count();
        if count == 0 {
            return Err(GraphError::EdgeNotFound { from, to });
        }
        self.ensure_fwd_in(to.0);
        self.fwd_out
            .get_mut(&from.0)
            .expect("ensured")
            .retain(|(t, _)| *t != to.0);
        self.fwd_in
            .get_mut(&to.0)
            .expect("ensured")
            .retain(|(f, _)| *f != from.0);
        *self.indeg_delta.entry(to.0).or_insert(0) -= count as i64;
        *self.outdeg_delta.entry(from.0).or_insert(0) -= count as i64;
        self.touched.insert(from.0);
        self.touched.insert(to.0);
        self.original_edges_delta -= count as i64;
        Ok(OpEffect::EdgesRemoved { from, to, count })
    }

    fn set_label(
        &mut self,
        node: NodeId,
        label: &str,
    ) -> std::result::Result<OpEffect, GraphError> {
        self.check_live(node)?;
        if node.index() >= self.base_nodes {
            // Batch-added node: edit in place; `label_old` already records
            // that the node has no pre-batch text.
            self.new_meta[node.index() - self.base_nodes].label = label.to_string();
        } else {
            self.label_old
                .entry(node.0)
                .or_insert_with(|| Some(self.g.node_label(node).to_string()));
            self.label_patch.insert(node.0, label.to_string());
        }
        Ok(OpEffect::LabelSet(node))
    }

    fn set_weight(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> std::result::Result<OpEffect, GraphError> {
        self.check_live(from)?;
        self.check_live(to)?;
        if !weight.is_finite() || weight <= 0.0 {
            return Err(GraphError::InvalidEdgeWeight { from, to, weight });
        }
        self.ensure_fwd_out(from.0);
        let count = self
            .fwd_out
            .get(&from.0)
            .expect("ensured")
            .iter()
            .filter(|(t, _)| *t == to.0)
            .count();
        if count == 0 {
            return Err(GraphError::EdgeNotFound { from, to });
        }
        self.ensure_fwd_in(to.0);
        for (t, w) in self.fwd_out.get_mut(&from.0).expect("ensured") {
            if *t == to.0 {
                *w = weight;
            }
        }
        for (f, w) in self.fwd_in.get_mut(&to.0).expect("ensured") {
            if *f == from.0 {
                *w = weight;
            }
        }
        self.touched.insert(from.0);
        self.touched.insert(to.0);
        Ok(OpEffect::WeightSet { from, to, count })
    }

    fn remove_node(&mut self, node: NodeId) -> std::result::Result<OpEffect, GraphError> {
        self.check_live(node)?;
        let n = node.0;
        self.ensure_fwd_out(n);
        self.ensure_fwd_in(n);
        // Distinct neighbour sets first: `remove_edge` takes out all
        // parallel edges of a pair at once, with the standard indegree and
        // backward-weight bookkeeping.
        let out_targets: BTreeSet<u32> = self.fwd_out[&n].iter().map(|(t, _)| *t).collect();
        // Self-loops are removed by the out pass; revisiting them from the
        // in side would address an edge that is already gone.
        let in_sources: BTreeSet<u32> = self.fwd_in[&n]
            .iter()
            .map(|(f, _)| *f)
            .filter(|f| *f != n)
            .collect();
        let mut edges_removed = 0usize;
        for t in out_targets {
            match self.remove_edge(node, NodeId(t)) {
                Ok(OpEffect::EdgesRemoved { count, .. }) => edges_removed += count,
                other => unreachable!("edge from materialised list must remove: {other:?}"),
            }
        }
        for s in in_sources {
            match self.remove_edge(NodeId(s), node) {
                Ok(OpEffect::EdgesRemoved { count, .. }) => edges_removed += count,
                other => unreachable!("edge from materialised list must remove: {other:?}"),
            }
        }
        // Clear the label so keyword-index deltas drop the node's postings.
        self.set_label(node, "")?;
        self.tombstoned.insert(n);
        self.touched.insert(n);
        Ok(OpEffect::NodeRemoved {
            node,
            edges_removed,
        })
    }

    /// Final forward in-degree of a node after the batch.
    fn indeg_final(&self, n: u32) -> usize {
        let base = if (n as usize) < self.base_nodes {
            self.g.forward_indegree(NodeId(n)) as i64
        } else {
            0
        };
        (base + self.indeg_delta.get(&n).copied().unwrap_or(0)) as usize
    }

    fn finish(
        mut self,
        results: Vec<std::result::Result<OpEffect, GraphError>>,
    ) -> (DataGraph, BatchOutcome) {
        // Nodes whose forward in-degree changed: their *own* out-row (the
        // backward edges they hand out) and the in-rows of every forward
        // predecessor (which hold those backward edges) must be rebuilt
        // with the new `log2(1 + indegree)` weights.
        let indeg_changed: BTreeSet<u32> = self
            .indeg_delta
            .iter()
            .filter(|(_, d)| **d != 0)
            .map(|(n, _)| *n)
            .collect();
        let fan_out_needed = self.g.policy().add_backward_edges;
        let mut rebuild: BTreeSet<u32> = self.touched.clone();
        rebuild.extend(indeg_changed.iter().copied());
        if fan_out_needed {
            for &v in &indeg_changed {
                self.ensure_fwd_in(v);
                let preds: Vec<u32> = self.fwd_in[&v].iter().map(|(f, _)| *f).collect();
                rebuild.extend(preds);
            }
        }

        // Rebuild both rows of every affected node from the final forward
        // lists, sorted exactly as the CSR sorts (target id, then kind) so
        // a from-scratch rebuild is byte-identical.
        let policy = self.g.policy();
        let mut new_out_rows: Vec<(u32, Vec<OverlayEdge>)> = Vec::with_capacity(rebuild.len());
        let mut new_inc_rows: Vec<(u32, Vec<OverlayEdge>)> = Vec::with_capacity(rebuild.len());
        let mut directed_delta: i64 = 0;
        for &r in &rebuild {
            self.ensure_fwd_out(r);
            self.ensure_fwd_in(r);
            let out_list = &self.fwd_out[&r];
            let in_list = &self.fwd_in[&r];

            let mut out_row: Vec<OverlayEdge> = Vec::with_capacity(
                out_list.len()
                    + if policy.add_backward_edges {
                        in_list.len()
                    } else {
                        0
                    },
            );
            for (to, w) in out_list {
                out_row.push((*to, *w, EdgeKind::Forward));
            }
            if policy.add_backward_edges {
                let indeg_r = self.indeg_final(r);
                for (from, w) in in_list {
                    out_row.push((
                        *from,
                        policy.backward_weight.backward_weight(*w, indeg_r),
                        EdgeKind::Backward,
                    ));
                }
            }
            out_row.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| a.2.is_backward().cmp(&b.2.is_backward()))
            });

            let mut inc_row: Vec<OverlayEdge> = Vec::with_capacity(
                in_list.len()
                    + if policy.add_backward_edges {
                        out_list.len()
                    } else {
                        0
                    },
            );
            for (from, w) in in_list {
                inc_row.push((*from, *w, EdgeKind::Forward));
            }
            if policy.add_backward_edges {
                for (to, w) in out_list {
                    inc_row.push((
                        *to,
                        policy
                            .backward_weight
                            .backward_weight(*w, self.indeg_final(*to)),
                        EdgeKind::Backward,
                    ));
                }
            }
            inc_row.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| a.2.is_backward().cmp(&b.2.is_backward()))
            });

            let old_out_degree = if (r as usize) < self.base_nodes {
                self.g.out_degree(NodeId(r)) as i64
            } else {
                0
            };
            directed_delta += out_row.len() as i64 - old_out_degree;
            new_out_rows.push((r, out_row));
            new_inc_rows.push((r, inc_row));
        }

        // Assemble the successor: clone the (small) overlay, install the
        // rebuilt rows, append nodes/kinds, patch metadata and degrees.
        let new_meta = std::mem::take(&mut self.new_meta);
        let new_kinds = std::mem::take(&mut self.new_kinds);
        let label_patch = std::mem::take(&mut self.label_patch);
        let label_old = std::mem::take(&mut self.label_old);

        let mut overlay = self.g.overlay.clone();
        for (r, row) in new_out_rows {
            overlay.out_rows.insert(r, Arc::new(row));
        }
        for (r, row) in new_inc_rows {
            overlay.inc_rows.insert(r, Arc::new(row));
        }
        overlay.extra_meta.extend(new_meta);
        overlay.extra_kinds.extend(new_kinds.iter().cloned());
        let arc_base_nodes = self.g.base_nodes();
        for (node, label) in &label_patch {
            if (*node as usize) < arc_base_nodes {
                let kind = self.g.node_kind(NodeId(*node));
                overlay
                    .meta_patch
                    .insert(*node, NodeMeta::new(kind, label.clone()));
            } else {
                // The node lives in an earlier batch's overlay extension.
                overlay.extra_meta[*node as usize - arc_base_nodes].label = label.clone();
            }
        }
        for (&n, &d) in &self.indeg_delta {
            if d != 0 {
                overlay.indegree_patch.insert(n, self.indeg_final(n) as u32);
            }
        }
        for (&n, &d) in &self.outdeg_delta {
            if d != 0 {
                let base = if (n as usize) < self.base_nodes {
                    self.g.forward_outdegree(NodeId(n)) as i64
                } else {
                    0
                };
                overlay.outdegree_patch.insert(n, (base + d) as u32);
            }
        }
        overlay.tombstones.extend(self.tombstoned.iter().copied());

        let graph = DataGraph {
            base: Arc::clone(&self.g.base),
            overlay,
            num_original_edges: (self.g.num_original_edges() as i64 + self.original_edges_delta)
                as usize,
            num_directed_edges: (self.g.num_directed_edges() as i64 + directed_delta) as usize,
            policy,
            epoch: fresh_epoch(),
        };

        let mut dirty: BTreeSet<u32> = indeg_changed;
        for i in self.base_nodes..graph.num_nodes() {
            dirty.insert(i as u32);
        }
        let num_kinds_before = self.g.num_kinds();
        let outcome = BatchOutcome {
            results,
            dirty_nodes: dirty.into_iter().map(NodeId).collect(),
            label_changes: label_old
                .into_iter()
                .map(|(node, old_label)| LabelChange {
                    node: NodeId(node),
                    old_label,
                })
                .collect(),
            new_kinds: new_kinds
                .into_iter()
                .enumerate()
                .map(|(i, name)| (name, KindId::from_index(num_kinds_before + i)))
                .collect(),
        };
        (graph, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, graph_from_weighted_edges, GraphBuilder};
    use crate::weights::ExpansionPolicy;

    fn rows(g: &DataGraph, u: u32) -> Vec<(u32, f64, bool)> {
        g.out_edges(NodeId(u))
            .map(|e| (e.to.0, e.weight, e.kind.is_backward()))
            .collect()
    }

    /// Mutated graph and from-scratch rebuild must agree on every row.
    fn assert_graphs_identical(a: &DataGraph, b: &DataGraph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_original_edges(), b.num_original_edges());
        assert_eq!(a.num_directed_edges(), b.num_directed_edges());
        assert_eq!(a.num_kinds(), b.num_kinds());
        for u in a.nodes() {
            assert_eq!(a.node_kind_name(u), b.node_kind_name(u), "kind of {u:?}");
            assert_eq!(a.node_label(u), b.node_label(u), "label of {u:?}");
            assert_eq!(
                a.forward_indegree(u),
                b.forward_indegree(u),
                "indegree of {u:?}"
            );
            assert_eq!(
                a.forward_outdegree(u),
                b.forward_outdegree(u),
                "outdegree of {u:?}"
            );
            let ra: Vec<_> = a
                .out_edges(u)
                .map(|e| (e.to.0, e.weight.to_bits(), e.kind))
                .collect();
            let rb: Vec<_> = b
                .out_edges(u)
                .map(|e| (e.to.0, e.weight.to_bits(), e.kind))
                .collect();
            assert_eq!(ra, rb, "out row of {u:?}");
            let ia: Vec<_> = a
                .in_edges(u)
                .map(|e| (e.from.0, e.weight.to_bits(), e.kind))
                .collect();
            let ib: Vec<_> = b
                .in_edges(u)
                .map(|e| (e.from.0, e.weight.to_bits(), e.kind))
                .collect();
            assert_eq!(ia, ib, "in row of {u:?}");
        }
    }

    #[test]
    fn add_edge_matches_rebuild_including_backward_fanout() {
        // 3 papers cite one conference; adding a 4th changes the backward
        // weight of *every* edge the conference hands out.
        let g = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0)]);
        let (g2, outcome) = g.apply_batch(&MutationBatch::new().add_edge(NodeId(4), NodeId(0)));
        assert_eq!(outcome.accepted(), 1);
        let rebuilt = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        assert_graphs_identical(&g2, &rebuilt);
        // log2(1 + 4) backward weights now
        let w = g2
            .out_edges(NodeId(0))
            .find(|e| e.to == NodeId(1))
            .unwrap()
            .weight;
        assert!((w - (5f64).log2()).abs() < 1e-12);
        // The ancestor still sees the old world.
        assert_eq!(g.forward_indegree(NodeId(0)), 3);
        assert!(!g.has_edge(NodeId(4), NodeId(0)));
    }

    #[test]
    fn remove_edge_matches_rebuild() {
        let g = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0), (3, 4)]);
        let (g2, outcome) = g.apply_batch(&MutationBatch::new().remove_edge(NodeId(2), NodeId(0)));
        assert_eq!(outcome.accepted(), 1);
        assert_graphs_identical(&g2, &graph_from_edges(5, &[(1, 0), (3, 0), (3, 4)]));
    }

    #[test]
    fn add_node_and_edge_in_one_batch() {
        let g = {
            let mut b = GraphBuilder::new();
            let a = b.add_node("author", "Gray");
            let p = b.add_node("paper", "Locks");
            b.add_edge(p, a).unwrap();
            b.build_default()
        };
        let batch = MutationBatch::new()
            .add_node("writes", "w1")
            .add_edge(NodeId(2), NodeId(0))
            .add_edge(NodeId(2), NodeId(1));
        let (g2, outcome) = g.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 3);
        assert_eq!(outcome.new_kinds.len(), 1);
        assert_eq!(outcome.new_kinds[0].0, "writes");
        let rebuilt = {
            let mut b = GraphBuilder::new();
            let a = b.add_node("author", "Gray");
            let p = b.add_node("paper", "Locks");
            let w = b.add_node("writes", "w1");
            b.add_edge(p, a).unwrap();
            b.add_edge(w, a).unwrap();
            b.add_edge(w, p).unwrap();
            b.build_default()
        };
        assert_graphs_identical(&g2, &rebuilt);
        assert_eq!(g2.kind_by_name("writes"), Some(KindId(2)));
        assert_eq!(g2.node_label(NodeId(2)), "w1");
    }

    #[test]
    fn set_weight_and_label_match_rebuild() {
        let g = graph_from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        let batch = MutationBatch::new()
            .set_weight(NodeId(0), NodeId(1), 5.0)
            .set_label(NodeId(2), "renamed");
        let (g2, outcome) = g.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 2);
        assert_eq!(g2.node_label(NodeId(2)), "renamed");
        assert_eq!(g2.forward_edge_weight(NodeId(0), NodeId(1)), Some(5.0));
        assert_eq!(
            outcome.label_changes,
            vec![LabelChange {
                node: NodeId(2),
                old_label: Some("v2".to_string())
            }]
        );
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(
                "node",
                if i == 2 {
                    "renamed".into()
                } else {
                    format!("v{i}")
                },
            );
        }
        b.add_edge_weighted(NodeId(0), NodeId(1), 5.0).unwrap();
        b.add_edge_weighted(NodeId(1), NodeId(2), 2.0).unwrap();
        assert_graphs_identical(&g2, &b.build_default());
    }

    #[test]
    fn rejected_ops_change_nothing() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let batch = MutationBatch::new()
            .add_edge(NodeId(0), NodeId(9)) // out of bounds
            .add_edge(NodeId(1), NodeId(1)) // self loop
            .add_edge_weighted(NodeId(1), NodeId(2), -1.0) // bad weight
            .remove_edge(NodeId(1), NodeId(0)) // only a backward edge exists
            .set_weight(NodeId(2), NodeId(0), 1.0) // no such edge
            .add_edge(NodeId(1), NodeId(2)); // fine
        let (g2, outcome) = g.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 1);
        assert_eq!(outcome.rejected(), 5);
        assert!(matches!(
            outcome.results[0],
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            outcome.results[1],
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            outcome.results[2],
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
        assert!(matches!(
            outcome.results[3],
            Err(GraphError::EdgeNotFound { .. })
        ));
        assert!(matches!(
            outcome.results[4],
            Err(GraphError::EdgeNotFound { .. })
        ));
        assert_graphs_identical(&g2, &graph_from_edges(3, &[(0, 1), (1, 2)]));
    }

    #[test]
    fn empty_batch_accepts_nothing_and_changes_nothing() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let (g2, outcome) = g.apply_batch(&MutationBatch::new());
        assert_eq!(outcome.accepted(), 0);
        assert_graphs_identical(&g2, &g);
    }

    #[test]
    fn chained_batches_compose() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let (g2, _) = g.apply_batch(&MutationBatch::new().add_edge(NodeId(1), NodeId(2)));
        let (g3, _) = g2.apply_batch(
            &MutationBatch::new()
                .add_node("node", "v3")
                .add_edge(NodeId(2), NodeId(3))
                .remove_edge(NodeId(0), NodeId(1)),
        );
        let rebuilt = {
            let mut b = GraphBuilder::new();
            for i in 0..4 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge(NodeId(1), NodeId(2)).unwrap();
            b.add_edge(NodeId(2), NodeId(3)).unwrap();
            b.build_default()
        };
        assert_graphs_identical(&g3, &rebuilt);
        // relabel a node that itself lives in an earlier batch's overlay
        let (g4, _) = g3.apply_batch(&MutationBatch::new().set_label(NodeId(3), "late"));
        assert_eq!(g4.node_label(NodeId(3)), "late");
        assert_eq!(g3.node_label(NodeId(3)), "v3", "ancestor unchanged");
    }

    #[test]
    fn directed_only_policy_skips_backward_bookkeeping() {
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1)).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        let (g2, _) = g.apply_batch(&MutationBatch::new().add_edge(NodeId(2), NodeId(1)));
        assert_eq!(g2.num_directed_edges(), 2);
        assert!(!g2.has_edge(NodeId(1), NodeId(2)), "no backward edges");
        let rebuilt = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1)).unwrap();
            b.add_edge(NodeId(2), NodeId(1)).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        assert_graphs_identical(&g2, &rebuilt);
    }

    #[test]
    fn parallel_edges_are_removed_and_reweighted_together() {
        let mut b = GraphBuilder::new();
        for i in 0..2 {
            b.add_node("node", format!("v{i}"));
        }
        b.add_edge_weighted(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge_weighted(NodeId(0), NodeId(1), 2.0).unwrap();
        let g = b.build_default();
        let (g2, outcome) =
            g.apply_batch(&MutationBatch::new().set_weight(NodeId(0), NodeId(1), 3.0));
        assert!(matches!(
            outcome.results[0],
            Ok(OpEffect::WeightSet { count: 2, .. })
        ));
        assert_eq!(g2.forward_edge_weight(NodeId(0), NodeId(1)), Some(3.0));
        let (g3, outcome) = g2.apply_batch(&MutationBatch::new().remove_edge(NodeId(0), NodeId(1)));
        assert!(matches!(
            outcome.results[0],
            Ok(OpEffect::EdgesRemoved { count: 2, .. })
        ));
        assert_eq!(g3.num_original_edges(), 0);
        assert_eq!(g3.num_directed_edges(), 0);
    }

    #[test]
    fn successor_shares_base_storage_with_ancestor() {
        let g = graph_from_edges(100, &(0..99).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let before = g.memory_breakdown();
        assert_eq!(before.sharers, 1);
        let (g2, _) = g.apply_batch(&MutationBatch::new().add_edge(NodeId(0), NodeId(50)));
        assert!(g2.has_overlay());
        assert!(!g.has_overlay());
        let a = g.memory_breakdown();
        let b = g2.memory_breakdown();
        assert_eq!(a.sharers, 2);
        assert_eq!(a.shared_bytes, b.shared_bytes, "one base, shared");
        assert!(b.owned_bytes > 0 && b.owned_bytes < b.shared_bytes / 4);
        // Attributed bytes sum to roughly base + overlay, not 2x base.
        let summed = g.memory_bytes() + g2.memory_bytes();
        assert!(summed <= a.shared_bytes + b.owned_bytes + 1);
        assert!(g2.overlay_ratio() > 0.0 && g2.overlay_ratio() < 0.1);
    }

    #[test]
    fn dirty_nodes_cover_indegree_changes_and_additions() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let batch = MutationBatch::new()
            .add_node("node", "new")
            .add_edge(NodeId(0), NodeId(4))
            .remove_edge(NodeId(2), NodeId(3));
        let (_, outcome) = g.apply_batch(&batch);
        assert_eq!(outcome.dirty_nodes, vec![NodeId(3), NodeId(4)]);
        assert_eq!(outcome.label_changes.len(), 1);
        assert_eq!(outcome.label_changes[0].node, NodeId(4));
        assert_eq!(outcome.label_changes[0].old_label, None);
    }

    #[test]
    fn relabel_twice_records_the_pre_batch_label_once() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let batch = MutationBatch::new()
            .set_label(NodeId(0), "first")
            .set_label(NodeId(0), "second");
        let (g2, outcome) = g.apply_batch(&batch);
        assert_eq!(g2.node_label(NodeId(0)), "second");
        assert_eq!(
            outcome.label_changes,
            vec![LabelChange {
                node: NodeId(0),
                old_label: Some("v0".to_string())
            }]
        );
    }

    #[test]
    fn example_rows_stay_sorted_after_mutation() {
        let g = graph_from_edges(4, &[(0, 2), (0, 1)]);
        let (g2, _) = g.apply_batch(&MutationBatch::new().add_edge(NodeId(0), NodeId(3)));
        let row = rows(&g2, 0);
        let ids: Vec<u32> = row.iter().map(|(t, _, _)| *t).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn remove_node_drops_all_incident_edges_and_tombstones_the_id() {
        // 1 -> 0, 2 -> 0, 0 -> 3: removing 0 takes out all three pairs and
        // the backward fan-out they induced.
        let g = graph_from_edges(4, &[(1, 0), (2, 0), (0, 3)]);
        let (g2, outcome) = g.apply_batch(&MutationBatch::new().remove_node(NodeId(0)));
        assert!(matches!(
            outcome.results[0],
            Ok(OpEffect::NodeRemoved {
                node: NodeId(0),
                edges_removed: 3
            })
        ));
        assert!(g2.is_tombstoned(NodeId(0)));
        assert!(!g.is_tombstoned(NodeId(0)), "ancestor unchanged");
        assert_eq!(g2.num_nodes(), 4, "ids are never remapped");
        assert_eq!(g2.num_original_edges(), 0);
        assert_eq!(g2.num_directed_edges(), 0);
        assert_eq!(g2.node_label(NodeId(0)), "", "label cleared");
        assert_eq!(g2.forward_indegree(NodeId(0)), 0);
        assert_eq!(g2.forward_outdegree(NodeId(0)), 0);
        assert_eq!(
            outcome.label_changes,
            vec![LabelChange {
                node: NodeId(0),
                old_label: Some("v0".to_string())
            }]
        );
        // Kind scans skip the tombstone.
        let kind = g2.kind_by_name("node").unwrap();
        assert_eq!(
            g2.nodes_of_kind(kind),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn ops_against_a_tombstoned_node_are_rejected() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let (g2, _) = g.apply_batch(&MutationBatch::new().remove_node(NodeId(1)));
        let batch = MutationBatch::new()
            .add_edge(NodeId(0), NodeId(1))
            .remove_edge(NodeId(1), NodeId(2))
            .set_label(NodeId(1), "ghost")
            .set_weight(NodeId(0), NodeId(1), 2.0)
            .remove_node(NodeId(1))
            .add_edge(NodeId(0), NodeId(2)); // fine
        let (g3, outcome) = g2.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 1);
        assert_eq!(outcome.rejected(), 5);
        for r in &outcome.results[..5] {
            assert!(
                matches!(r, Err(GraphError::NodeTombstoned { node: NodeId(1) })),
                "unexpected result {r:?}"
            );
        }
        assert!(g3.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn remove_node_in_same_batch_as_its_edges() {
        // The batch removes a node right after wiring it in; later ops see
        // the tombstone immediately.
        let g = graph_from_edges(3, &[(0, 1)]);
        let batch = MutationBatch::new()
            .add_node("node", "doomed")
            .add_edge(NodeId(3), NodeId(2))
            .remove_node(NodeId(3))
            .add_edge(NodeId(3), NodeId(0));
        let (g2, outcome) = g.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 3);
        assert!(matches!(
            outcome.results[3],
            Err(GraphError::NodeTombstoned { node: NodeId(3) })
        ));
        assert!(g2.is_tombstoned(NodeId(3)));
        assert_eq!(g2.num_original_edges(), 1, "only 0 -> 1 survives");
    }

    #[test]
    fn tombstones_survive_compaction_without_id_remap() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (g2, _) = g.apply_batch(&MutationBatch::new().remove_node(NodeId(2)));
        assert!(g2.has_overlay());
        let flat = g2.compacted();
        assert!(!flat.has_overlay());
        assert!(flat.is_tombstoned(NodeId(2)));
        assert_eq!(flat.num_nodes(), g2.num_nodes());
        assert_eq!(flat.num_tombstoned(), 1);
        assert_eq!(flat.tombstoned_nodes(), vec![2]);
        assert_graphs_identical(&flat, &g2);
        // Mutating the compacted graph still rejects the dead id.
        let (_, outcome) = flat.apply_batch(&MutationBatch::new().set_label(NodeId(2), "x"));
        assert!(matches!(
            outcome.results[0],
            Err(GraphError::NodeTombstoned { node: NodeId(2) })
        ));
    }

    #[test]
    fn remove_node_updates_backward_fanout_of_surviving_neighbours() {
        // 1, 2, 3 all point at 0; removing 3 must re-weight the backward
        // edges 0 hands back to the survivors (log2(1 + indegree)).
        let g = graph_from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let (g2, _) = g.apply_batch(&MutationBatch::new().remove_node(NodeId(3)));
        let rebuilt = graph_from_edges(4, &[(1, 0), (2, 0)]);
        assert_eq!(g2.forward_indegree(NodeId(0)), 2);
        let w = g2
            .out_edges(NodeId(0))
            .find(|e| e.to == NodeId(1))
            .unwrap()
            .weight;
        let expected = rebuilt
            .out_edges(NodeId(0))
            .find(|e| e.to == NodeId(1))
            .unwrap()
            .weight;
        assert_eq!(w.to_bits(), expected.to_bits());
    }

    #[test]
    fn remove_node_with_self_loop_counts_it_once() {
        let mut b = GraphBuilder::new().allow_self_loops(true);
        for i in 0..2 {
            b.add_node("node", format!("v{i}"));
        }
        b.add_edge(NodeId(0), NodeId(0)).unwrap();
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        let g = b.build_default();
        let (g2, outcome) = g.apply_batch(&MutationBatch::new().remove_node(NodeId(0)));
        assert!(matches!(
            outcome.results[0],
            Ok(OpEffect::NodeRemoved {
                edges_removed: 2,
                ..
            })
        ));
        assert_eq!(g2.num_original_edges(), 0);
    }
}
