//! Compressed sparse row (CSR) adjacency storage.
//!
//! A [`CsrAdjacency`] stores, for every node, a contiguous slice of
//! `(neighbour, weight, kind)` triples.  Two instances — one for outgoing
//! and one for incoming edges — back a [`crate::DataGraph`].  The layout is
//! the classic offsets/targets split so that the memory footprint stays
//! close to the `16·|V| + 8·|E|` bytes the paper quotes for its Java
//! prototype.

use crate::error::GraphError;
use crate::ids::NodeId;
use crate::node::EdgeKind;

/// One adjacency direction in CSR form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrAdjacency {
    /// `offsets[u] .. offsets[u + 1]` indexes the neighbour arrays for `u`.
    offsets: Vec<u32>,
    /// Neighbour node ids, grouped by source node.
    neighbours: Vec<u32>,
    /// Edge weights, parallel to `neighbours`.
    weights: Vec<f64>,
    /// Edge kinds (forward / backward), parallel to `neighbours`.
    kinds: Vec<EdgeKind>,
}

impl CsrAdjacency {
    /// Builds a CSR adjacency from an unsorted list of directed edges
    /// `(from, to, weight, kind)` over `num_nodes` nodes.
    ///
    /// Edges are grouped by `from` using a counting sort (stable, O(V + E)),
    /// and within a node sorted by target id so that lookups and iteration
    /// are cache friendly and deterministic.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId, f64, EdgeKind)]) -> Self {
        let mut counts = vec![0u32; num_nodes + 1];
        for (from, _, _, _) in edges {
            counts[from.index() + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();

        let mut neighbours = vec![0u32; edges.len()];
        let mut weights = vec![0f64; edges.len()];
        let mut kinds = vec![EdgeKind::Forward; edges.len()];
        let mut cursor = offsets.clone();
        for (from, to, w, kind) in edges {
            let slot = cursor[from.index()] as usize;
            neighbours[slot] = to.0;
            weights[slot] = *w;
            kinds[slot] = *kind;
            cursor[from.index()] += 1;
        }

        let mut csr = CsrAdjacency {
            offsets,
            neighbours,
            weights,
            kinds,
        };
        csr.sort_rows();
        csr
    }

    /// Sorts every row by (neighbour id, kind) to make iteration order
    /// deterministic regardless of insertion order.
    fn sort_rows(&mut self) {
        let n = self.num_nodes();
        for u in 0..n {
            let (start, end) = self.range(u);
            if end - start <= 1 {
                continue;
            }
            let mut row: Vec<(u32, f64, EdgeKind)> = (start..end)
                .map(|i| (self.neighbours[i], self.weights[i], self.kinds[i]))
                .collect();
            row.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| a.2.is_backward().cmp(&b.2.is_backward()))
            });
            for (offset, (nbr, w, k)) in row.into_iter().enumerate() {
                self.neighbours[start + offset] = nbr;
                self.weights[start + offset] = w;
                self.kinds[start + offset] = k;
            }
        }
    }

    #[inline]
    fn range(&self, u: usize) -> (usize, usize) {
        (self.offsets[u] as usize, self.offsets[u + 1] as usize)
    }

    /// Number of nodes covered by this adjacency.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbours.len()
    }

    /// Degree of `u` in this direction.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let (start, end) = self.range(u.index());
        end - start
    }

    /// Iterates over the `(neighbour, weight, kind)` triples of `u`.
    #[inline]
    pub fn neighbours(&self, u: NodeId) -> CsrRow<'_> {
        let (start, end) = self.range(u.index());
        CsrRow {
            csr: self,
            pos: start,
            end,
        }
    }

    /// Returns the weight of the edge `u -> v` if present (the smallest
    /// weight if parallel edges exist).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.neighbours(u)
            .filter(|(nbr, _, _)| *nbr == v)
            .map(|(_, w, _)| w)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }

    /// Checks whether the edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbours(u).any(|(nbr, _, _)| nbr == v)
    }

    // ------------------------------------------------------------ raw parts
    //
    // The persistence layer (`banks-persist`) serializes the CSR arrays
    // verbatim and reconstructs them without re-sorting, so a loaded graph
    // is bit-identical to the one that was written (weights included).

    /// The offsets array: `offsets[u] .. offsets[u + 1]` indexes the edge
    /// arrays for node `u`.  Length is `num_nodes() + 1` (or 0 for a
    /// default-constructed adjacency).
    #[inline]
    pub fn raw_offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The neighbour ids, parallel to [`CsrAdjacency::raw_weights`].
    #[inline]
    pub fn raw_targets(&self) -> &[u32] {
        &self.neighbours
    }

    /// The edge weights, parallel to [`CsrAdjacency::raw_targets`].
    #[inline]
    pub fn raw_weights(&self) -> &[f64] {
        &self.weights
    }

    /// The edge kinds, parallel to [`CsrAdjacency::raw_targets`].
    #[inline]
    pub fn raw_kinds(&self) -> &[EdgeKind] {
        &self.kinds
    }

    /// Reassembles an adjacency from arrays previously obtained via the
    /// `raw_*` accessors, **without** re-sorting rows — callers must supply
    /// arrays in the exact layout a [`CsrAdjacency`] produced them.
    ///
    /// Validates structural invariants (monotone offsets covering the edge
    /// arrays, parallel array lengths) and rejects inconsistent input with
    /// [`GraphError::InvalidStorage`] instead of panicking, so corrupt
    /// on-disk data cannot crash a loader.
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        neighbours: Vec<u32>,
        weights: Vec<f64>,
        kinds: Vec<EdgeKind>,
    ) -> crate::Result<Self> {
        let invalid = |message: String| GraphError::InvalidStorage { message };
        if offsets.is_empty() {
            if !(neighbours.is_empty() && weights.is_empty() && kinds.is_empty()) {
                return Err(invalid("empty offsets with non-empty edge arrays".into()));
            }
            return Ok(CsrAdjacency::default());
        }
        let num_edges = neighbours.len();
        if weights.len() != num_edges || kinds.len() != num_edges {
            return Err(invalid(format!(
                "edge array lengths differ: {} targets, {} weights, {} kinds",
                num_edges,
                weights.len(),
                kinds.len()
            )));
        }
        if offsets[0] != 0 {
            return Err(invalid(format!("offsets[0] = {}, expected 0", offsets[0])));
        }
        for w in offsets.windows(2) {
            if w[1] < w[0] {
                return Err(invalid("offsets are not monotonically increasing".into()));
            }
        }
        let last = *offsets.last().expect("non-empty offsets") as usize;
        if last != num_edges {
            return Err(invalid(format!(
                "offsets cover {last} edges but {num_edges} are stored"
            )));
        }
        let num_nodes = offsets.len() - 1;
        if let Some(bad) = neighbours.iter().find(|&&t| t as usize >= num_nodes) {
            return Err(invalid(format!(
                "edge target {bad} out of bounds for {num_nodes} nodes"
            )));
        }
        Ok(CsrAdjacency {
            offsets,
            neighbours,
            weights,
            kinds,
        })
    }

    /// Approximate heap footprint in bytes (used by the stats module and by
    /// capacity planning in the benches).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.neighbours.len() * std::mem::size_of::<u32>()
            + self.weights.len() * std::mem::size_of::<f64>()
            + self.kinds.len() * std::mem::size_of::<EdgeKind>()
    }
}

/// Concrete iterator over one CSR row.
///
/// A nameable type (unlike `impl Iterator`) so that [`crate::DataGraph`]
/// can dispatch between a base CSR row and a copy-on-write overlay row
/// without boxing on the adjacency hot path.
#[derive(Clone, Debug)]
pub struct CsrRow<'a> {
    csr: &'a CsrAdjacency,
    pos: usize,
    end: usize,
}

impl Iterator for CsrRow<'_> {
    type Item = (NodeId, f64, EdgeKind);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        Some((
            NodeId(self.csr.neighbours[i]),
            self.csr.weights[i],
            self.csr.kinds[i],
        ))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CsrRow<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<(NodeId, NodeId, f64, EdgeKind)> {
        vec![
            (NodeId(0), NodeId(2), 1.0, EdgeKind::Forward),
            (NodeId(0), NodeId(1), 2.0, EdgeKind::Forward),
            (NodeId(2), NodeId(0), 1.5, EdgeKind::Backward),
            (NodeId(1), NodeId(2), 1.0, EdgeKind::Forward),
            (NodeId(0), NodeId(3), 4.0, EdgeKind::Backward),
        ]
    }

    #[test]
    fn builds_and_counts() {
        let csr = CsrAdjacency::from_edges(4, &sample_edges());
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.degree(NodeId(0)), 3);
        assert_eq!(csr.degree(NodeId(1)), 1);
        assert_eq!(csr.degree(NodeId(2)), 1);
        assert_eq!(csr.degree(NodeId(3)), 0);
    }

    #[test]
    fn rows_are_sorted_by_target() {
        let csr = CsrAdjacency::from_edges(4, &sample_edges());
        let row: Vec<u32> = csr.neighbours(NodeId(0)).map(|(v, _, _)| v.0).collect();
        assert_eq!(row, vec![1, 2, 3]);
    }

    #[test]
    fn weights_and_kinds_follow_their_edge() {
        let csr = CsrAdjacency::from_edges(4, &sample_edges());
        let row: Vec<(u32, f64, EdgeKind)> = csr
            .neighbours(NodeId(0))
            .map(|(v, w, k)| (v.0, w, k))
            .collect();
        assert_eq!(row[0], (1, 2.0, EdgeKind::Forward));
        assert_eq!(row[1], (2, 1.0, EdgeKind::Forward));
        assert_eq!(row[2], (3, 4.0, EdgeKind::Backward));
    }

    #[test]
    fn edge_weight_lookup() {
        let csr = CsrAdjacency::from_edges(4, &sample_edges());
        assert_eq!(csr.edge_weight(NodeId(0), NodeId(1)), Some(2.0));
        assert_eq!(
            csr.edge_weight(NodeId(0), NodeId(9).min(NodeId(3))),
            Some(4.0)
        );
        assert_eq!(csr.edge_weight(NodeId(3), NodeId(0)), None);
        assert!(csr.has_edge(NodeId(1), NodeId(2)));
        assert!(!csr.has_edge(NodeId(2), NodeId(1)));
    }

    #[test]
    fn parallel_edges_take_min_weight() {
        let edges = vec![
            (NodeId(0), NodeId(1), 5.0, EdgeKind::Forward),
            (NodeId(0), NodeId(1), 2.0, EdgeKind::Backward),
        ];
        let csr = CsrAdjacency::from_edges(2, &edges);
        assert_eq!(csr.edge_weight(NodeId(0), NodeId(1)), Some(2.0));
        assert_eq!(csr.degree(NodeId(0)), 2);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrAdjacency::from_edges(0, &[]);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let csr = CsrAdjacency::from_edges(5, &[(NodeId(4), NodeId(0), 1.0, EdgeKind::Forward)]);
        for u in 0..4 {
            assert_eq!(csr.degree(NodeId(u)), 0);
        }
        assert_eq!(csr.degree(NodeId(4)), 1);
    }

    #[test]
    fn memory_estimate_scales_with_edges() {
        let small = CsrAdjacency::from_edges(4, &sample_edges());
        let large_edges: Vec<_> = (0..1000u32)
            .map(|i| (NodeId(i % 4), NodeId((i + 1) % 4), 1.0, EdgeKind::Forward))
            .collect();
        let large = CsrAdjacency::from_edges(4, &large_edges);
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
