//! Hash partitioning of a [`DataGraph`] into K shards with boundary-node
//! replication.
//!
//! The sharded execution tier (`banks-service`'s `ShardSet` and the
//! `scatter-gather` engine in `banks-core`) needs a deterministic,
//! mutation-friendly decomposition of the graph:
//!
//! * **Ownership** — every node is owned by exactly one shard, chosen by a
//!   stable hash of its [`NodeId`] ([`ShardSpec::owner`]).  The hash is a
//!   pure function of the id, so a node added later — on any replica, after
//!   any crash — lands on the same shard without coordination.
//! * **Edge cut** — a forward edge `u -> v` is owned by `owner(u)` (the
//!   tail rule).  When `owner(v) != owner(u)` the edge is *cut*: the head
//!   is materialised in the tail's shard as a **boundary replica**, and the
//!   edge is also replicated into the head's shard (with the tail as the
//!   boundary replica there), so either side of the cut can traverse it
//!   locally.
//! * **Union reconstruction** — concatenating the owned nodes of every
//!   shard and the owned edges of every shard reproduces the original
//!   graph's node set and forward-edge multiset exactly (the property the
//!   tests below assert).  Derived backward-edge weights inside a shard
//!   subgraph follow the *shard-local* in-degree and are therefore not
//!   comparable to the union graph's — queries always run against the
//!   union; the shard subgraphs exist for storage accounting, mutation
//!   fan-out and future shard-local execution.
//!
//! [`GraphPartition::apply_ops`] keeps the shards in sync with the union
//! under the incremental mutation path: accepted [`GraphMutation`]s fan out
//! to the owning shard(s), creating boundary replicas lazily.

use std::collections::HashMap;

use crate::builder::GraphBuilder;
use crate::graph::DataGraph;
use crate::ids::NodeId;
use crate::mutation::{GraphMutation, MutationBatch};
use crate::node::EdgeKind;

/// How eagerly a shard subgraph's copy-on-write overlay is folded back into
/// flat storage after mutation fan-out; mirrors the service-level
/// compaction trigger.
const COMPACT_OVERLAY_RATIO: f64 = 0.25;

/// The partitioning function: how many shards, and which shard owns a node.
///
/// Ownership is a stable splitmix64-style hash of the node id — independent
/// of graph contents, insertion order and process lifetime, so every
/// participant (partitioner, merge engine, recovery) agrees on placement
/// without coordination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A spec for `shards` shards; values below 1 are clamped to 1.
    pub fn new(shards: usize) -> Self {
        ShardSpec {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node` — a stable hash of the id, in `0..shards()`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (mix64(node.0 as u64) % self.shards as u64) as usize
    }
}

impl Default for ShardSpec {
    /// One shard: the unsharded degenerate case.
    fn default() -> Self {
        ShardSpec::new(1)
    }
}

/// splitmix64 finalizer: a cheap, well-dispersed bijection on `u64`, so
/// consecutive node ids spread evenly across shards.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard's materialised subgraph: the nodes it owns, the boundary
/// replicas cut edges pulled in, and a local-id [`DataGraph`] over both.
#[derive(Clone, Debug)]
pub struct ShardSubgraph {
    graph: DataGraph,
    /// Global ids by local index: owned nodes first (in global id order at
    /// build time), then boundary replicas in order of first appearance.
    nodes: Vec<NodeId>,
    to_local: HashMap<NodeId, u32>,
    owned_nodes: usize,
    owned_edges: usize,
    cut_edges: usize,
}

impl ShardSubgraph {
    /// The shard-local graph (local dense ids; see [`Self::global_id`]).
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// Global ids indexed by local id.
    pub fn global_ids(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Local id of a global node, if this shard materialises it.
    pub fn local_id(&self, global: NodeId) -> Option<NodeId> {
        self.to_local.get(&global).map(|i| NodeId(*i))
    }

    /// Global id behind a local id.
    pub fn global_id(&self, local: NodeId) -> Option<NodeId> {
        self.nodes.get(local.index()).copied()
    }

    /// Whether this shard materialises `global` (owned or replica).
    pub fn contains(&self, global: NodeId) -> bool {
        self.to_local.contains_key(&global)
    }

    /// Nodes this shard owns.
    pub fn owned_nodes(&self) -> usize {
        self.owned_nodes
    }

    /// Boundary replicas materialised for cut edges.
    pub fn replica_nodes(&self) -> usize {
        self.nodes.len() - self.owned_nodes
    }

    /// Forward edges owned by this shard (tail rule), cut edges included.
    pub fn owned_edges(&self) -> usize {
        self.owned_edges
    }

    /// Owned forward edges whose head lives on another shard.
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Forward edges stored in this shard's subgraph: owned edges plus the
    /// replicas of cut edges owned elsewhere.
    pub fn stored_edges(&self) -> usize {
        self.graph.num_original_edges()
    }
}

/// Point-in-time shard occupancy, surfaced through service metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index, `0..K`.
    pub shard: usize,
    /// Nodes owned by the shard.
    pub owned_nodes: usize,
    /// Boundary replicas materialised for cut edges.
    pub replica_nodes: usize,
    /// Forward edges owned by the shard (tail rule).
    pub owned_edges: usize,
    /// Owned forward edges whose head lives on another shard.
    pub cut_edges: usize,
}

/// A [`DataGraph`] decomposed into [`ShardSubgraph`]s under a [`ShardSpec`],
/// kept in sync with the union graph through mutation fan-out.
#[derive(Clone, Debug)]
pub struct GraphPartition {
    spec: ShardSpec,
    shards: Vec<ShardSubgraph>,
    num_global_nodes: usize,
}

/// Mutable translation state for one shard while fanning a batch out.
struct ShardDelta {
    batch: MutationBatch,
    /// Global ids of nodes this delta appends, in append order.
    appended: Vec<(NodeId, bool)>, // (global id, owned?)
    /// Cut-edge count adjustment.
    cut_delta: isize,
    /// Owned-edge count adjustment.
    owned_delta: isize,
}

impl ShardDelta {
    fn new() -> Self {
        ShardDelta {
            batch: MutationBatch::new(),
            appended: Vec::new(),
            cut_delta: 0,
            owned_delta: 0,
        }
    }
}

impl GraphPartition {
    /// Decomposes `graph` into `spec.shards()` subgraphs.
    ///
    /// Deterministic: owned nodes are laid out in global id order, boundary
    /// replicas in order of first appearance along the global edge scan, so
    /// two builds of the same graph produce identical shards.
    pub fn build(graph: &DataGraph, spec: ShardSpec) -> Self {
        let k = spec.shards();
        let mut builders: Vec<GraphBuilder> = (0..k).map(|_| GraphBuilder::new()).collect();
        // Per-shard accumulator: (global node ids in local order,
        // global → local id map, owned nodes, owned edges, cut edges).
        type Acc = (Vec<NodeId>, HashMap<NodeId, u32>, usize, usize, usize);
        let mut shards: Vec<Acc> = (0..k)
            .map(|_| (Vec::new(), HashMap::new(), 0, 0, 0))
            .collect();

        // Owned nodes first, in global id order.
        for node in graph.nodes() {
            let owner = spec.owner(node);
            let (nodes, to_local, owned, _, _) = &mut shards[owner];
            let local =
                builders[owner].add_node(graph.node_kind_name(node), graph.node_label(node));
            debug_assert_eq!(local.index(), nodes.len());
            to_local.insert(node, nodes.len() as u32);
            nodes.push(node);
            *owned += 1;
        }

        // Edge scan: each forward edge lands in its owner shard and, when
        // cut, is replicated into the head's shard; replicas materialise on
        // first sight.
        for u in graph.nodes() {
            for e in graph.out_edges(u) {
                if e.kind != EdgeKind::Forward {
                    continue;
                }
                let tail_owner = spec.owner(u);
                let head_owner = spec.owner(e.to);
                let cut = tail_owner != head_owner;
                {
                    let (nodes, to_local, _, owned_edges, cut_edges) = &mut shards[tail_owner];
                    ensure_replica(&mut builders[tail_owner], nodes, to_local, graph, e.to);
                    let lu = NodeId(to_local[&u]);
                    let lv = NodeId(to_local[&e.to]);
                    builders[tail_owner]
                        .add_edge_weighted(lu, lv, e.weight)
                        .expect("valid shard edge");
                    *owned_edges += 1;
                    if cut {
                        *cut_edges += 1;
                    }
                }
                if cut {
                    let (nodes, to_local, _, _, _) = &mut shards[head_owner];
                    ensure_replica(&mut builders[head_owner], nodes, to_local, graph, u);
                    let lu = NodeId(to_local[&u]);
                    let lv = NodeId(to_local[&e.to]);
                    builders[head_owner]
                        .add_edge_weighted(lu, lv, e.weight)
                        .expect("valid shard edge");
                }
            }
        }

        let policy = graph.policy();
        let shards = builders
            .into_iter()
            .zip(shards)
            .map(
                |(builder, (nodes, to_local, owned_nodes, owned_edges, cut_edges))| ShardSubgraph {
                    graph: builder.build(policy),
                    nodes,
                    to_local,
                    owned_nodes,
                    owned_edges,
                    cut_edges,
                },
            )
            .collect();
        GraphPartition {
            spec,
            shards,
            num_global_nodes: graph.num_nodes(),
        }
    }

    /// The partitioning function behind this decomposition.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `k`'s subgraph.
    pub fn shard(&self, k: usize) -> &ShardSubgraph {
        &self.shards[k]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[ShardSubgraph] {
        &self.shards
    }

    /// The shard owning a node.
    pub fn owner(&self, node: NodeId) -> usize {
        self.spec.owner(node)
    }

    /// Total global nodes the partition currently accounts for.
    pub fn num_global_nodes(&self) -> usize {
        self.num_global_nodes
    }

    /// Point-in-time occupancy of every shard.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStats {
                shard,
                owned_nodes: s.owned_nodes(),
                replica_nodes: s.replica_nodes(),
                owned_edges: s.owned_edges(),
                cut_edges: s.cut_edges(),
            })
            .collect()
    }

    /// Fans a sequence of **accepted** mutations out to the owning shards.
    ///
    /// `union` is the successor union graph the same ops were already
    /// applied to — consulted for the kind/label of nodes that must be
    /// materialised as fresh boundary replicas.  Callers pass only ops the
    /// union accepted (rejected ops change nothing anywhere); ops apply to
    /// each shard in batch order, so intra-batch references (an edge to a
    /// node added earlier in the batch) resolve exactly as they did on the
    /// union.
    pub fn apply_ops(&mut self, union: &DataGraph, ops: &[GraphMutation]) {
        let k = self.shards.len();
        let mut deltas: Vec<ShardDelta> = (0..k).map(|_| ShardDelta::new()).collect();

        for op in ops {
            match op {
                GraphMutation::AddNode { kind, label } => {
                    let global = NodeId::from_index(self.num_global_nodes);
                    self.num_global_nodes += 1;
                    let owner = self.spec.owner(global);
                    let delta = &mut deltas[owner];
                    delta.appended.push((global, true));
                    delta.batch =
                        std::mem::take(&mut delta.batch).add_node(kind.clone(), label.clone());
                }
                GraphMutation::AddEdge { from, to, weight } => {
                    let tail_owner = self.spec.owner(*from);
                    let head_owner = self.spec.owner(*to);
                    let cut = tail_owner != head_owner;
                    for (idx, shard_idx) in [tail_owner, head_owner].iter().enumerate() {
                        if idx == 1 && !cut {
                            break;
                        }
                        let shard = &self.shards[*shard_idx];
                        let delta = &mut deltas[*shard_idx];
                        let lf = stage_local(union, shard, delta, *from);
                        let lt = stage_local(union, shard, delta, *to);
                        delta.batch = match weight {
                            Some(w) => {
                                std::mem::take(&mut delta.batch).add_edge_weighted(lf, lt, *w)
                            }
                            None => std::mem::take(&mut delta.batch).add_edge(lf, lt),
                        };
                    }
                    let delta = &mut deltas[tail_owner];
                    delta.owned_delta += 1;
                    if cut {
                        delta.cut_delta += 1;
                    }
                }
                GraphMutation::RemoveEdge { from, to } => {
                    let tail_owner = self.spec.owner(*from);
                    let head_owner = self.spec.owner(*to);
                    let cut = tail_owner != head_owner;
                    // Count the parallel forward edges being removed before
                    // staging, for exact stats maintenance.
                    let removed =
                        self.forward_multiplicity(tail_owner, &deltas[tail_owner], *from, *to);
                    for (idx, shard_idx) in [tail_owner, head_owner].iter().enumerate() {
                        if idx == 1 && !cut {
                            break;
                        }
                        let shard = &self.shards[*shard_idx];
                        let delta = &mut deltas[*shard_idx];
                        let (Some(lf), Some(lt)) = (
                            staged_local(shard, delta, *from),
                            staged_local(shard, delta, *to),
                        ) else {
                            continue;
                        };
                        delta.batch = std::mem::take(&mut delta.batch).remove_edge(lf, lt);
                    }
                    let delta = &mut deltas[tail_owner];
                    delta.owned_delta -= removed as isize;
                    if cut {
                        delta.cut_delta -= removed as isize;
                    }
                }
                GraphMutation::SetLabel { node, label } => {
                    // Relabel everywhere the node is materialised: its owner
                    // shard and every shard holding it as a replica.
                    for (shard_idx, shard) in self.shards.iter().enumerate() {
                        let delta = &mut deltas[shard_idx];
                        if let Some(local) = staged_local(shard, delta, *node) {
                            delta.batch =
                                std::mem::take(&mut delta.batch).set_label(local, label.clone());
                        }
                    }
                }
                GraphMutation::SetWeight { from, to, weight } => {
                    let tail_owner = self.spec.owner(*from);
                    let head_owner = self.spec.owner(*to);
                    let cut = tail_owner != head_owner;
                    for (idx, shard_idx) in [tail_owner, head_owner].iter().enumerate() {
                        if idx == 1 && !cut {
                            break;
                        }
                        let shard = &self.shards[*shard_idx];
                        let delta = &mut deltas[*shard_idx];
                        let (Some(lf), Some(lt)) = (
                            staged_local(shard, delta, *from),
                            staged_local(shard, delta, *to),
                        ) else {
                            continue;
                        };
                        delta.batch = std::mem::take(&mut delta.batch).set_weight(lf, lt, *weight);
                    }
                }
                GraphMutation::RemoveNode { node } => {
                    let o = self.spec.owner(*node);
                    // Exact removed-edge accounting, replayed through ops
                    // already staged this batch (the same discipline as
                    // `forward_multiplicity`).  The owner shard materialises
                    // *every* forward edge incident to the node — owned
                    // edges by the tail rule plus cut edges replicated into
                    // the head's shard — so it alone yields the full
                    // incident multiset.
                    let mut out_pairs: HashMap<NodeId, usize> = HashMap::new();
                    let mut in_pairs: HashMap<NodeId, usize> = HashMap::new();
                    {
                        let shard = &self.shards[o];
                        let delta = &deltas[o];
                        if let Some(lg) = staged_local(shard, delta, *node) {
                            if lg.index() < shard.graph.num_nodes() {
                                for e in shard.graph.out_edges(lg) {
                                    if e.kind == EdgeKind::Forward {
                                        let v = staged_global(shard, delta, e.to);
                                        *out_pairs.entry(v).or_insert(0) += 1;
                                    }
                                }
                                for e in shard.graph.in_edges(lg) {
                                    // Self-loops were already counted on
                                    // the out side.
                                    if e.kind == EdgeKind::Forward && e.from != lg {
                                        let t = staged_global(shard, delta, e.from);
                                        *in_pairs.entry(t).or_insert(0) += 1;
                                    }
                                }
                            }
                            for op in delta.batch.ops() {
                                match op {
                                    GraphMutation::AddEdge { from, to, .. } => {
                                        if *from == lg {
                                            let v = staged_global(shard, delta, *to);
                                            *out_pairs.entry(v).or_insert(0) += 1;
                                        } else if *to == lg {
                                            let t = staged_global(shard, delta, *from);
                                            *in_pairs.entry(t).or_insert(0) += 1;
                                        }
                                    }
                                    GraphMutation::RemoveEdge { from, to } => {
                                        if *from == lg {
                                            out_pairs.insert(staged_global(shard, delta, *to), 0);
                                        } else if *to == lg {
                                            in_pairs.insert(staged_global(shard, delta, *from), 0);
                                        }
                                    }
                                    GraphMutation::RemoveNode { node: other } if *other != lg => {
                                        // A neighbour removed earlier in the
                                        // batch already took its incident
                                        // edges with it.
                                        let g = staged_global(shard, delta, *other);
                                        out_pairs.insert(g, 0);
                                        in_pairs.insert(g, 0);
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    for (v, c) in out_pairs {
                        let delta = &mut deltas[o];
                        delta.owned_delta -= c as isize;
                        if self.spec.owner(v) != o {
                            delta.cut_delta -= c as isize;
                        }
                    }
                    for (t, c) in in_pairs {
                        let s = self.spec.owner(t);
                        let delta = &mut deltas[s];
                        delta.owned_delta -= c as isize;
                        if s != o {
                            delta.cut_delta -= c as isize;
                        }
                    }
                    // Tombstone everywhere the node is materialised, owner
                    // and replica shards alike; the shard-local
                    // `remove_node` drops the incident edges in each.
                    for (shard_idx, shard) in self.shards.iter().enumerate() {
                        let delta = &mut deltas[shard_idx];
                        if let Some(local) = staged_local(shard, delta, *node) {
                            delta.batch = std::mem::take(&mut delta.batch).remove_node(local);
                        }
                    }
                }
            }
        }

        for (shard, delta) in self.shards.iter_mut().zip(deltas) {
            if delta.batch.is_empty() && delta.appended.is_empty() {
                continue;
            }
            let (next, outcome) = shard.graph.apply_batch(&delta.batch);
            debug_assert!(
                outcome.results.iter().all(|r| r.is_ok()),
                "accepted union ops must fan out cleanly: {:?}",
                outcome.results
            );
            shard.graph = next;
            if shard.graph.overlay_ratio() > COMPACT_OVERLAY_RATIO {
                shard.graph = shard.graph.compacted();
            }
            for (global, owned) in delta.appended {
                shard.to_local.insert(global, shard.nodes.len() as u32);
                shard.nodes.push(global);
                if owned {
                    shard.owned_nodes += 1;
                }
            }
            shard.owned_edges = (shard.owned_edges as isize + delta.owned_delta).max(0) as usize;
            shard.cut_edges = (shard.cut_edges as isize + delta.cut_delta).max(0) as usize;
        }
    }

    /// Number of parallel forward edges `from -> to` a `RemoveEdge` staged
    /// at this point of the batch will remove in the owner shard: what the
    /// materialised graph stores, replayed through the ops already staged
    /// for that shard (an edge added three ops earlier counts; an earlier
    /// staged removal resets the count).
    fn forward_multiplicity(
        &self,
        shard_idx: usize,
        delta: &ShardDelta,
        from: NodeId,
        to: NodeId,
    ) -> usize {
        let shard = &self.shards[shard_idx];
        let (Some(lf), Some(lt)) = (
            staged_local(shard, delta, from),
            staged_local(shard, delta, to),
        ) else {
            return 0;
        };
        let mut count =
            if lf.index() < shard.graph.num_nodes() && lt.index() < shard.graph.num_nodes() {
                shard
                    .graph
                    .out_edges(lf)
                    .filter(|e| e.to == lt && e.kind == EdgeKind::Forward)
                    .count()
            } else {
                0
            };
        for op in delta.batch.ops() {
            match op {
                GraphMutation::AddEdge { from, to, .. } if *from == lf && *to == lt => count += 1,
                GraphMutation::RemoveEdge { from, to } if *from == lf && *to == lt => count = 0,
                _ => {}
            }
        }
        count
    }
}

/// Local id of `global` in `shard`, staging a boundary replica (pulled
/// from the union graph) if the shard does not materialise it yet.
fn stage_local(
    union: &DataGraph,
    shard: &ShardSubgraph,
    delta: &mut ShardDelta,
    global: NodeId,
) -> NodeId {
    if let Some(local) = staged_local(shard, delta, global) {
        return local;
    }
    let local = NodeId::from_index(shard.nodes.len() + delta.appended.len());
    delta.appended.push((global, false));
    delta.batch = std::mem::take(&mut delta.batch).add_node(
        union.node_kind_name(global).to_string(),
        union.node_label(global).to_string(),
    );
    local
}

/// Global id behind a staged local id: materialised nodes first, then this
/// batch's staged appends.
fn staged_global(shard: &ShardSubgraph, delta: &ShardDelta, local: NodeId) -> NodeId {
    if local.index() < shard.nodes.len() {
        shard.nodes[local.index()]
    } else {
        delta.appended[local.index() - shard.nodes.len()].0
    }
}

/// Local id of `global` counting both materialised nodes and this batch's
/// staged appends.
fn staged_local(shard: &ShardSubgraph, delta: &ShardDelta, global: NodeId) -> Option<NodeId> {
    if let Some(local) = shard.local_id(global) {
        return Some(local);
    }
    delta
        .appended
        .iter()
        .position(|(g, _)| *g == global)
        .map(|i| NodeId::from_index(shard.nodes.len() + i))
}

/// Materialises `global` as a boundary replica in a shard still being built.
fn ensure_replica(
    builder: &mut GraphBuilder,
    nodes: &mut Vec<NodeId>,
    to_local: &mut HashMap<NodeId, u32>,
    graph: &DataGraph,
    global: NodeId,
) {
    if to_local.contains_key(&global) {
        return;
    }
    let local = builder.add_node(graph.node_kind_name(global), graph.node_label(global));
    debug_assert_eq!(local.index(), nodes.len());
    to_local.insert(global, nodes.len() as u32);
    nodes.push(global);
}
