//! Incremental construction of a [`DataGraph`].

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::DataGraph;
use crate::ids::{KindId, NodeId};
use crate::node::NodeMeta;
use crate::weights::ExpansionPolicy;
use crate::Result;

/// Builder that accumulates typed nodes and *original* (forward) edges and
/// freezes them into an immutable [`DataGraph`].
///
/// ```
/// use banks_graph::{GraphBuilder, ExpansionPolicy};
///
/// let mut b = GraphBuilder::new();
/// let paper = b.add_node("paper", "Transaction Recovery");
/// let author = b.add_node("author", "Gray");
/// let writes = b.add_node("writes", "w1");
/// b.add_edge(writes, paper).unwrap();
/// b.add_edge(writes, author).unwrap();
/// let g = b.build(ExpansionPolicy::paper_default());
/// assert_eq!(g.num_nodes(), 3);
/// // two forward + two backward edges
/// assert_eq!(g.num_directed_edges(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    kinds: Vec<String>,
    kind_lookup: HashMap<String, KindId>,
    nodes: Vec<NodeMeta>,
    /// Original forward edges; `None` weight means "use the policy default".
    edges: Vec<(NodeId, NodeId, Option<f64>)>,
    allow_self_loops: bool,
    allow_parallel_edges: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::with_capacity(0, 0)
    }
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity for `nodes` nodes and
    /// `edges` forward edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            kinds: Vec::new(),
            kind_lookup: HashMap::new(),
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            allow_self_loops: false,
            allow_parallel_edges: true,
        }
    }

    /// Permits self-loop edges (disabled by default, as tuple graphs never
    /// contain them and they only create degenerate one-node "trees").
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Forbids parallel forward edges between the same ordered node pair.
    /// When disallowed, later duplicates are silently ignored at `build`.
    pub fn allow_parallel_edges(mut self, allow: bool) -> Self {
        self.allow_parallel_edges = allow;
        self
    }

    /// Interns a node kind (relation name) and returns its id.
    pub fn kind(&mut self, name: &str) -> KindId {
        if let Some(id) = self.kind_lookup.get(name) {
            return *id;
        }
        assert!(self.kinds.len() <= u16::MAX as usize, "too many node kinds");
        let id = KindId::from_index(self.kinds.len());
        self.kinds.push(name.to_string());
        self.kind_lookup.insert(name.to_string(), id);
        id
    }

    /// Adds a node of the given kind with a display label; returns its id.
    pub fn add_node(&mut self, kind: &str, label: impl Into<String>) -> NodeId {
        let kind = self.kind(kind);
        self.add_node_with_kind(kind, label)
    }

    /// Adds a node given an already-interned kind id.
    pub fn add_node_with_kind(&mut self, kind: KindId, label: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeMeta::new(kind, label));
        id
    }

    /// Adds an original forward edge `from -> to` with the default weight
    /// (resolved against the [`ExpansionPolicy`] at build time).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.push_edge(from, to, None)
    }

    /// Adds an original forward edge with an explicit weight.
    pub fn add_edge_weighted(&mut self, from: NodeId, to: NodeId, weight: f64) -> Result<()> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(GraphError::InvalidEdgeWeight { from, to, weight });
        }
        self.push_edge(from, to, Some(weight))
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId, weight: Option<f64>) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to && !self.allow_self_loops {
            return Err(GraphError::SelfLoop { node: from });
        }
        self.edges.push((from, to, weight));
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.nodes.len() {
            return Err(GraphError::NodeOutOfBounds {
                node,
                len: self.nodes.len(),
            });
        }
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of forward edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`DataGraph`] using the given
    /// expansion policy.
    pub fn build(self, policy: ExpansionPolicy) -> DataGraph {
        let GraphBuilder {
            kinds,
            nodes,
            mut edges,
            allow_parallel_edges,
            ..
        } = self;
        if !allow_parallel_edges {
            let mut seen = std::collections::HashSet::with_capacity(edges.len());
            edges.retain(|(u, v, _)| seen.insert((*u, *v)));
        }
        let resolved: Vec<(NodeId, NodeId, f64)> = edges
            .into_iter()
            .map(|(u, v, w)| (u, v, w.unwrap_or(policy.default_forward_weight)))
            .collect();
        DataGraph::from_parts(kinds, nodes, resolved, policy)
    }

    /// Convenience: freezes with the paper's default policy.
    pub fn build_default(self) -> DataGraph {
        self.build(ExpansionPolicy::paper_default())
    }
}

/// Convenience constructor used pervasively in unit tests: builds a graph
/// from plain `(from, to)` pairs over `n` nodes, all of kind `"node"` with
/// labels `"v{i}"`, default weights and the paper's expansion policy.
pub fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> DataGraph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for i in 0..n {
        b.add_node("node", format!("v{i}"));
    }
    for (u, v) in edges {
        b.add_edge(NodeId(*u), NodeId(*v))
            .expect("edge endpoints must exist");
    }
    b.build_default()
}

/// Convenience constructor with explicit weights.
pub fn graph_from_weighted_edges(n: usize, edges: &[(u32, u32, f64)]) -> DataGraph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for i in 0..n {
        b.add_node("node", format!("v{i}"));
    }
    for (u, v, w) in edges {
        b.add_edge_weighted(NodeId(*u), NodeId(*v), *w)
            .expect("edge must be valid");
    }
    b.build_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::EdgeKind;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Gray");
        let p = b.add_node("paper", "Transactions");
        b.add_edge_weighted(p, a, 1.0).unwrap();
        let g = b.build(ExpansionPolicy::paper_default());
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_original_edges(), 1);
        assert_eq!(g.num_directed_edges(), 2); // forward + backward
        assert!(g.has_edge(p, a));
        assert!(g.has_edge(a, p)); // backward edge
    }

    #[test]
    fn kind_interning_is_stable() {
        let mut b = GraphBuilder::new();
        let k1 = b.kind("paper");
        let k2 = b.kind("author");
        let k1_again = b.kind("paper");
        assert_eq!(k1, k1_again);
        assert_ne!(k1, k2);
    }

    #[test]
    fn rejects_dangling_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("x", "a");
        let err = b.add_edge(a, NodeId(5)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("x", "a");
        let c = b.add_node("x", "c");
        assert!(matches!(
            b.add_edge_weighted(a, c, 0.0),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
        assert!(matches!(
            b.add_edge_weighted(a, c, f64::NAN),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
        assert!(matches!(
            b.add_edge_weighted(a, c, -3.0),
            Err(GraphError::InvalidEdgeWeight { .. })
        ));
    }

    #[test]
    fn rejects_self_loops_by_default() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("x", "a");
        assert!(matches!(b.add_edge(a, a), Err(GraphError::SelfLoop { .. })));

        let mut b = GraphBuilder::new().allow_self_loops(true);
        let a = b.add_node("x", "a");
        assert!(b.add_edge(a, a).is_ok());
    }

    #[test]
    fn deduplicates_parallel_edges_when_requested() {
        let mut b = GraphBuilder::new().allow_parallel_edges(false);
        let a = b.add_node("x", "a");
        let c = b.add_node("x", "c");
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        let g = b.build_default();
        assert_eq!(g.num_original_edges(), 1);
    }

    #[test]
    fn backward_edge_weight_uses_head_indegree() {
        // Three papers point at one conference; backward edges from the
        // conference must be log2(1 + 3) = 2 times the forward weight.
        let mut b = GraphBuilder::new();
        let conf = b.add_node("conference", "VLDB");
        let papers: Vec<NodeId> = (0..3)
            .map(|i| b.add_node("paper", format!("p{i}")))
            .collect();
        for p in &papers {
            b.add_edge_weighted(*p, conf, 1.0).unwrap();
        }
        let g = b.build_default();
        for p in &papers {
            let back = g
                .out_edges(conf)
                .find(|e| e.to == *p)
                .expect("backward edge must exist");
            assert_eq!(back.kind, EdgeKind::Backward);
            assert!(
                (back.weight - 2.0).abs() < 1e-12,
                "weight was {}",
                back.weight
            );
            let fwd = g.out_edges(*p).find(|e| e.to == conf).unwrap();
            assert_eq!(fwd.kind, EdgeKind::Forward);
            assert!((fwd.weight - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn directed_only_policy_omits_backward_edges() {
        let g = {
            let mut b = GraphBuilder::new();
            let a = b.add_node("x", "a");
            let c = b.add_node("x", "c");
            b.add_edge(a, c).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        assert_eq!(g.num_directed_edges(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn helper_constructors() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_original_edges(), 2);

        let g = graph_from_weighted_edges(2, &[(0, 1, 2.5)]);
        assert_eq!(g.forward_edge_weight(NodeId(0), NodeId(1)), Some(2.5));
    }
}
