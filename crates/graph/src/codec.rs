//! Stable binary serialization of [`GraphMutation`] batches.
//!
//! The write-ahead log in `banks-persist` appends every accepted
//! [`MutationBatch`] to disk and replays it after a crash, so the encoding
//! must be *stable across releases*: little-endian fixed-width integers, a
//! one-byte tag per op, and length-prefixed UTF-8 strings.  Weights are
//! stored as raw IEEE-754 bit patterns so a replayed batch reproduces the
//! pre-crash graph bit for bit.
//!
//! Decoding is totally defensive — truncated, oversized or unknown-tag
//! input yields [`GraphError::ParseError`] (with the failing op index as
//! the `line`), never a panic, because the bytes may come off a torn or
//! corrupted log.

use crate::error::GraphError;
use crate::ids::NodeId;
use crate::mutation::{GraphMutation, MutationBatch};
use crate::Result;

/// Format version written as the first byte of every encoded batch.
pub const CODEC_VERSION: u8 = 1;

const TAG_ADD_NODE: u8 = 0;
const TAG_ADD_EDGE: u8 = 1;
const TAG_REMOVE_EDGE: u8 = 2;
const TAG_SET_LABEL: u8 = 3;
const TAG_SET_WEIGHT: u8 = 4;
const TAG_REMOVE_NODE: u8 = 5;

/// Encodes a batch into a self-describing byte string.
///
/// Layout: `version: u8`, `op_count: u32`, then each op as a `tag: u8`
/// followed by tag-specific fields.  Strings are `len: u32` + UTF-8 bytes;
/// node ids are `u32`; weights are `f64` bit patterns.  All integers are
/// little-endian.
pub fn encode_batch(batch: &MutationBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + batch.len() * 16);
    buf.push(CODEC_VERSION);
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for op in batch.ops() {
        match op {
            GraphMutation::AddNode { kind, label } => {
                buf.push(TAG_ADD_NODE);
                put_str(&mut buf, kind);
                put_str(&mut buf, label);
            }
            GraphMutation::AddEdge { from, to, weight } => {
                buf.push(TAG_ADD_EDGE);
                buf.extend_from_slice(&from.0.to_le_bytes());
                buf.extend_from_slice(&to.0.to_le_bytes());
                match weight {
                    Some(w) => {
                        buf.push(1);
                        buf.extend_from_slice(&w.to_bits().to_le_bytes());
                    }
                    None => buf.push(0),
                }
            }
            GraphMutation::RemoveEdge { from, to } => {
                buf.push(TAG_REMOVE_EDGE);
                buf.extend_from_slice(&from.0.to_le_bytes());
                buf.extend_from_slice(&to.0.to_le_bytes());
            }
            GraphMutation::SetLabel { node, label } => {
                buf.push(TAG_SET_LABEL);
                buf.extend_from_slice(&node.0.to_le_bytes());
                put_str(&mut buf, label);
            }
            GraphMutation::SetWeight { from, to, weight } => {
                buf.push(TAG_SET_WEIGHT);
                buf.extend_from_slice(&from.0.to_le_bytes());
                buf.extend_from_slice(&to.0.to_le_bytes());
                buf.extend_from_slice(&weight.to_bits().to_le_bytes());
            }
            GraphMutation::RemoveNode { node } => {
                buf.push(TAG_REMOVE_NODE);
                buf.extend_from_slice(&node.0.to_le_bytes());
            }
        }
    }
    buf
}

/// Decodes a batch previously produced by [`encode_batch`].
///
/// Rejects unknown format versions, unknown op tags, truncated input and
/// invalid UTF-8 with [`GraphError::ParseError`]; the reported `line` is
/// the 1-based index of the op being decoded (0 for header problems).
pub fn decode_batch(bytes: &[u8]) -> Result<MutationBatch> {
    let mut r = Reader::new(bytes);
    let version = r.u8(0)?;
    if version != CODEC_VERSION {
        return Err(parse_err(
            0,
            format!("unsupported mutation codec version {version}"),
        ));
    }
    let count = r.u32(0)? as usize;
    // A conservative bound: every op needs at least 1 tag byte.
    if count > bytes.len() {
        return Err(parse_err(
            0,
            format!("op count {count} exceeds payload of {} bytes", bytes.len()),
        ));
    }
    let mut batch = MutationBatch::new();
    for i in 1..=count {
        let op = match r.u8(i)? {
            TAG_ADD_NODE => GraphMutation::AddNode {
                kind: r.string(i)?,
                label: r.string(i)?,
            },
            TAG_ADD_EDGE => {
                let from = NodeId(r.u32(i)?);
                let to = NodeId(r.u32(i)?);
                let weight = match r.u8(i)? {
                    0 => None,
                    1 => Some(f64::from_bits(r.u64(i)?)),
                    other => {
                        return Err(parse_err(i, format!("invalid weight flag {other}")));
                    }
                };
                GraphMutation::AddEdge { from, to, weight }
            }
            TAG_REMOVE_EDGE => GraphMutation::RemoveEdge {
                from: NodeId(r.u32(i)?),
                to: NodeId(r.u32(i)?),
            },
            TAG_SET_LABEL => GraphMutation::SetLabel {
                node: NodeId(r.u32(i)?),
                label: r.string(i)?,
            },
            TAG_SET_WEIGHT => GraphMutation::SetWeight {
                from: NodeId(r.u32(i)?),
                to: NodeId(r.u32(i)?),
                weight: f64::from_bits(r.u64(i)?),
            },
            TAG_REMOVE_NODE => GraphMutation::RemoveNode {
                node: NodeId(r.u32(i)?),
            },
            tag => return Err(parse_err(i, format!("unknown mutation tag {tag}"))),
        };
        batch.push(op);
    }
    if !r.is_done() {
        return Err(parse_err(
            count,
            format!("{} trailing bytes after final op", r.remaining()),
        ));
    }
    Ok(batch)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn parse_err(line: usize, message: String) -> GraphError {
    GraphError::ParseError { line, message }
}

/// Bounds-checked little-endian cursor over the encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, op: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(parse_err(
                op,
                format!(
                    "truncated input: wanted {n} bytes, {} left",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, op: usize) -> Result<u8> {
        Ok(self.take(1, op)?[0])
    }

    fn u32(&mut self, op: usize) -> Result<u32> {
        let b = self.take(4, op)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, op: usize) -> Result<u64> {
        let b = self.take(8, op)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, op: usize) -> Result<String> {
        let len = self.u32(op)? as usize;
        let bytes = self.take(len, op)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| parse_err(op, format!("invalid UTF-8 in string: {e}")))
    }

    fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> MutationBatch {
        MutationBatch::new()
            .add_node("paper", "Keyword Searching and Browsing")
            .add_edge(NodeId(0), NodeId(1))
            .add_edge_weighted(NodeId(1), NodeId(2), 2.5)
            .remove_edge(NodeId(3), NodeId(4))
            .set_label(NodeId(5), "renamed")
            .set_weight(NodeId(6), NodeId(7), 0.125)
            .remove_node(NodeId(8))
    }

    #[test]
    fn round_trips_every_op_kind() {
        let batch = sample_batch();
        let decoded = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn round_trips_empty_batch_and_empty_strings() {
        let empty = MutationBatch::new();
        assert_eq!(decode_batch(&encode_batch(&empty)).unwrap(), empty);
        let blank = MutationBatch::new().add_node("", "");
        assert_eq!(decode_batch(&encode_batch(&blank)).unwrap(), blank);
    }

    #[test]
    fn weight_bit_patterns_survive_exactly() {
        let w = 0.1f64 + 0.2f64; // a value with an awkward binary expansion
        let batch = MutationBatch::new().set_weight(NodeId(0), NodeId(1), w);
        let decoded = decode_batch(&encode_batch(&batch)).unwrap();
        match decoded.ops()[0] {
            GraphMutation::SetWeight { weight, .. } => {
                assert_eq!(weight.to_bits(), w.to_bits());
            }
            ref other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = encode_batch(&sample_batch());
        for cut in 0..bytes.len() {
            match decode_batch(&bytes[..cut]) {
                Err(GraphError::ParseError { .. }) => {}
                Ok(_) => panic!("decoding a {cut}-byte prefix must not succeed"),
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_version_tag_and_trailing_bytes_are_rejected() {
        let mut bytes = encode_batch(&sample_batch());
        bytes[0] = 99;
        assert!(matches!(
            decode_batch(&bytes),
            Err(GraphError::ParseError { line: 0, .. })
        ));

        let mut bytes = encode_batch(&MutationBatch::new().remove_edge(NodeId(0), NodeId(1)));
        bytes[5] = 200; // op tag
        assert!(matches!(
            decode_batch(&bytes),
            Err(GraphError::ParseError { line: 1, .. })
        ));

        let mut bytes = encode_batch(&MutationBatch::new());
        bytes.push(0);
        assert!(decode_batch(&bytes).is_err());
    }

    #[test]
    fn bogus_op_count_is_rejected_without_allocation_blowup() {
        let mut bytes = vec![CODEC_VERSION];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_batch(&bytes),
            Err(GraphError::ParseError { .. })
        ));
    }
}
