//! Graphviz DOT export, mainly for debugging small example graphs and for
//! rendering answer trees in documentation.

use std::fmt::Write as _;

use crate::graph::DataGraph;
use crate::ids::NodeId;
use crate::node::EdgeKind;

/// Options controlling the DOT rendering.
#[derive(Clone, Copy, Debug)]
pub struct DotOptions {
    /// Include derived backward edges (dashed) in the output.
    pub include_backward_edges: bool,
    /// Include edge weights as labels.
    pub include_weights: bool,
    /// Maximum number of nodes rendered (protects against dumping a
    /// million-node graph by accident).  `0` means unlimited.
    pub max_nodes: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            include_backward_edges: false,
            include_weights: true,
            max_nodes: 10_000,
        }
    }
}

/// Renders the whole graph (or its first `max_nodes` nodes) as a DOT digraph.
pub fn to_dot(graph: &DataGraph, options: DotOptions) -> String {
    let limit = if options.max_nodes == 0 {
        graph.num_nodes()
    } else {
        options.max_nodes
    };
    let node_included = |n: NodeId| n.index() < limit;
    let mut out = String::new();
    out.push_str("digraph banks {\n");
    out.push_str("  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for u in graph.nodes().take(limit) {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\"];",
            u.0,
            escape(graph.node_kind_name(u)),
            escape(graph.node_label(u))
        );
    }
    for u in graph.nodes().take(limit) {
        for e in graph.out_edges(u) {
            if !node_included(e.to) {
                continue;
            }
            if e.kind == EdgeKind::Backward && !options.include_backward_edges {
                continue;
            }
            let style = if e.kind == EdgeKind::Backward {
                ", style=dashed"
            } else {
                ""
            };
            if options.include_weights {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"{:.2}\"{}];",
                    u.0, e.to.0, e.weight, style
                );
            } else {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [{}];",
                    u.0,
                    e.to.0,
                    style.trim_start_matches(", ")
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Gray \"Jim\"");
        let p = b.add_node("paper", "Transactions");
        b.add_edge(p, a).unwrap();
        b.build_default()
    }

    #[test]
    fn renders_nodes_and_forward_edges() {
        let dot = to_dot(&tiny(), DotOptions::default());
        assert!(dot.starts_with("digraph banks {"));
        assert!(dot.contains("n0 [label=\"author"));
        assert!(dot.contains("n1 -> n0"));
        // backward edge excluded by default
        assert!(!dot.contains("style=dashed"));
        // quotes escaped
        assert!(dot.contains("\\\"Jim\\\""));
    }

    #[test]
    fn includes_backward_edges_when_asked() {
        let dot = to_dot(
            &tiny(),
            DotOptions {
                include_backward_edges: true,
                include_weights: false,
                max_nodes: 0,
            },
        );
        assert!(dot.contains("style=dashed"));
        assert!(!dot.contains("label=\"1.00\""));
    }

    #[test]
    fn respects_node_limit() {
        let dot = to_dot(
            &tiny(),
            DotOptions {
                max_nodes: 1,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("n0 ["));
        assert!(!dot.contains("n1 ["));
        assert!(!dot.contains("n1 -> n0"));
    }
}
