//! Property-based tests for the hash partitioner: ownership, edge
//! coverage, union reconstruction, degenerate shapes, and mutation
//! fan-out staying in sync with the union graph.

use std::collections::HashMap;

use banks_graph::builder::GraphBuilder;
use banks_graph::partition::{GraphPartition, ShardSpec};
use banks_graph::{DataGraph, EdgeKind, ExpansionPolicy, MutationBatch, NodeId};
use proptest::prelude::*;

/// Strategy producing a random edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (1usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 0..(n * 3));
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> DataGraph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for i in 0..n {
        b.add_node(if i % 3 == 0 { "paper" } else { "author" }, format!("v{i}"));
    }
    for (u, v, w) in edges {
        if u != v {
            b.add_edge_weighted(NodeId(*u), NodeId(*v), *w).unwrap();
        }
    }
    b.build(ExpansionPolicy::paper_default())
}

/// The forward-edge multiset of a graph, with global ids resolved through
/// `to_global` (identity for the union graph).
fn forward_edges(g: &DataGraph, to_global: impl Fn(NodeId) -> NodeId) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::new();
    for u in g.nodes() {
        for e in g.out_edges(u) {
            if e.kind == EdgeKind::Forward {
                out.push((to_global(u).0, to_global(e.to).0, e.weight.to_bits()));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The forward-edge multiset a shard *owns* (tail rule), in global ids.
fn owned_edges(partition: &GraphPartition, k: usize) -> Vec<(u32, u32, u64)> {
    let shard = partition.shard(k);
    let mut out = forward_edges(shard.graph(), |l| {
        shard.global_id(l).expect("mapped local id")
    });
    out.retain(|(u, _, _)| partition.owner(NodeId(*u)) == k);
    out.sort_unstable();
    out
}

/// Asserts the three partition invariants the ISSUE names, against `union`.
fn assert_partition_invariants(union: &DataGraph, partition: &GraphPartition) {
    let spec = partition.spec();
    let k = partition.num_shards();

    // 1. Every node is owned by exactly one shard, and that shard
    //    materialises it; replicas elsewhere carry identical metadata.
    let mut owned_total = 0usize;
    for s in 0..k {
        owned_total += partition.shard(s).owned_nodes();
    }
    assert_eq!(
        owned_total,
        union.num_nodes(),
        "owned nodes cover the graph"
    );
    for node in union.nodes() {
        let owner = spec.owner(node);
        assert!(owner < k);
        assert!(
            partition.shard(owner).contains(node),
            "owner shard {owner} must materialise node {node:?}"
        );
        for s in 0..k {
            let shard = partition.shard(s);
            if let Some(local) = shard.local_id(node) {
                assert_eq!(shard.global_id(local), Some(node), "id maps are inverses");
                assert_eq!(
                    shard.graph().node_label(local),
                    union.node_label(node),
                    "replica label in sync"
                );
                assert_eq!(
                    shard.graph().node_kind_name(local),
                    union.node_kind_name(node),
                    "replica kind in sync"
                );
            }
        }
    }

    // 2. Every forward edge is present in exactly one owner shard; cut
    //    edges are additionally replicated into the head's shard.
    let union_edges = forward_edges(union, |n| n);
    let mut all_owned: Vec<(u32, u32, u64)> = Vec::new();
    let mut cut_total = 0usize;
    for s in 0..k {
        let shard = partition.shard(s);
        let owned = owned_edges(partition, s);
        assert_eq!(owned.len(), shard.owned_edges(), "owned-edge stat exact");
        cut_total += shard.cut_edges();
        // everything the shard stores but does not own must be the replica
        // of a cut edge whose head this shard owns
        let stored = forward_edges(shard.graph(), |l| shard.global_id(l).expect("mapped"));
        assert_eq!(stored.len(), shard.stored_edges());
        for (u, v, _) in &stored {
            let tail_owner = spec.owner(NodeId(*u));
            if tail_owner != s {
                assert_eq!(
                    spec.owner(NodeId(*v)),
                    s,
                    "non-owned stored edge ({u},{v}) must be a cut replica"
                );
            }
        }
        all_owned.extend(owned);
    }
    all_owned.sort_unstable();

    // 3. The union of owned nodes and owned edges reconstructs the original
    //    graph signature.
    assert_eq!(all_owned, union_edges, "owned edges reconstruct the union");
    let cut_expected = union_edges
        .iter()
        .filter(|(u, v, _)| spec.owner(NodeId(*u)) != spec.owner(NodeId(*v)))
        .count();
    assert_eq!(cut_total, cut_expected, "cut-edge stat exact");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ownership, coverage and reconstruction hold for every K.
    #[test]
    fn partition_invariants_hold(((n, edges), k) in (arb_graph(), 1usize..9)) {
        let g = build(n, &edges);
        let partition = GraphPartition::build(&g, ShardSpec::new(k));
        assert_partition_invariants(&g, &partition);
    }

    /// K=1 degenerates to a single shard that mirrors the whole graph.
    #[test]
    fn single_shard_is_the_whole_graph((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let partition = GraphPartition::build(&g, ShardSpec::new(1));
        prop_assert_eq!(partition.num_shards(), 1);
        let shard = partition.shard(0);
        prop_assert_eq!(shard.graph().num_nodes(), g.num_nodes());
        prop_assert_eq!(shard.replica_nodes(), 0);
        prop_assert_eq!(shard.cut_edges(), 0);
        prop_assert_eq!(
            forward_edges(shard.graph(), |l| shard.global_id(l).unwrap()),
            forward_edges(&g, |x| x)
        );
        // with one shard, local ids are global ids
        for node in g.nodes() {
            prop_assert_eq!(shard.local_id(node), Some(node));
        }
    }

    /// Incremental fan-out tracks the union graph: after a mutation batch,
    /// the partition matches a from-scratch rebuild of the successor (up to
    /// stale replicas, which are retained rather than garbage-collected).
    #[test]
    fn mutation_fanout_matches_rebuild(
        ((n, edges), k, ops) in (
            arb_graph(),
            1usize..6,
            proptest::collection::vec((0u8..5, 0u32..44, 0u32..44, 0.5f64..3.0), 1..24),
        )
    ) {
        let g = build(n, &edges);
        let mut partition = GraphPartition::build(&g, ShardSpec::new(k));
        let mut batch = MutationBatch::new();
        for (kind, a, b, w) in ops {
            batch = match kind {
                0 => batch.add_node("paper", format!("added-{a}")),
                1 => batch.add_edge_weighted(NodeId(a), NodeId(b), w),
                2 => batch.remove_edge(NodeId(a), NodeId(b)),
                3 => batch.set_label(NodeId(a), format!("relabel-{b}")),
                _ => batch.set_weight(NodeId(a), NodeId(b), w),
            };
        }
        let (next, outcome) = g.apply_batch(&batch);
        let accepted: Vec<_> = batch
            .ops()
            .iter()
            .zip(&outcome.results)
            .filter(|(_, r)| r.is_ok())
            .map(|(op, _)| op.clone())
            .collect();
        partition.apply_ops(&next, &accepted);

        // the incremental partition satisfies every invariant against the
        // successor union...
        assert_partition_invariants(&next, &partition);
        // ...and owns exactly what a rebuild would own
        let rebuilt = GraphPartition::build(&next, ShardSpec::new(k));
        for s in 0..partition.num_shards() {
            prop_assert_eq!(owned_edges(&partition, s), owned_edges(&rebuilt, s));
            prop_assert_eq!(
                partition.shard(s).owned_nodes(),
                rebuilt.shard(s).owned_nodes()
            );
            prop_assert_eq!(partition.shard(s).cut_edges(), rebuilt.shard(s).cut_edges());
            // stale replicas are the only permitted divergence
            prop_assert!(
                partition.shard(s).replica_nodes() >= rebuilt.shard(s).replica_nodes()
            );
        }
    }
}

#[test]
fn more_shards_than_nodes() {
    let g = build(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
    let partition = GraphPartition::build(&g, ShardSpec::new(16));
    assert_eq!(partition.num_shards(), 16);
    assert_partition_invariants(&g, &partition);
    // most shards are empty; the stats say so without panicking
    let stats = partition.stats();
    assert_eq!(stats.len(), 16);
    let occupied = stats.iter().filter(|s| s.owned_nodes > 0).count();
    assert!(occupied <= 3);
    assert_eq!(stats.iter().map(|s| s.owned_nodes).sum::<usize>(), 3);
    assert_eq!(stats.iter().map(|s| s.owned_edges).sum::<usize>(), 2);
}

#[test]
fn empty_graph_partitions_cleanly() {
    let g = GraphBuilder::new().build_default();
    for k in [1, 4, 7] {
        let partition = GraphPartition::build(&g, ShardSpec::new(k));
        assert_eq!(partition.num_shards(), k);
        assert_partition_invariants(&g, &partition);
        for s in 0..k {
            assert!(partition.shard(s).graph().is_empty());
        }
    }
}

#[test]
fn zero_shards_clamps_to_one() {
    assert_eq!(ShardSpec::new(0).shards(), 1);
    assert_eq!(ShardSpec::default().shards(), 1);
    let g = build(4, &[(0, 1, 1.0)]);
    let partition = GraphPartition::build(&g, ShardSpec::new(0));
    assert_eq!(partition.num_shards(), 1);
}

#[test]
fn ownership_is_stable_across_specs_of_equal_k() {
    let spec_a = ShardSpec::new(4);
    let spec_b = ShardSpec::new(4);
    let mut spread = HashMap::new();
    for i in 0..1000u32 {
        let node = NodeId(i);
        assert_eq!(spec_a.owner(node), spec_b.owner(node));
        *spread.entry(spec_a.owner(node)).or_insert(0usize) += 1;
    }
    // the hash spreads ids across all four shards without gross skew
    assert_eq!(spread.len(), 4);
    for (&shard, &count) in &spread {
        assert!(
            (150..=350).contains(&count),
            "shard {shard} got {count} of 1000 ids"
        );
    }
}
