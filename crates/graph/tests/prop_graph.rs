//! Property-based tests for the graph substrate.

use banks_graph::builder::GraphBuilder;
use banks_graph::traversal::{dijkstra, Direction};
use banks_graph::{BackwardWeightPolicy, EdgeKind, ExpansionPolicy, NodeId};
use proptest::prelude::*;

/// Strategy producing a random edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.25f64..4.0), 0..(n * 3));
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)], policy: ExpansionPolicy) -> banks_graph::DataGraph {
    let mut b = GraphBuilder::with_capacity(n, edges.len()).allow_self_loops(false);
    for i in 0..n {
        b.add_node("node", format!("v{i}"));
    }
    for (u, v, w) in edges {
        if u != v {
            b.add_edge_weighted(NodeId(*u), NodeId(*v), *w).unwrap();
        }
    }
    b.build(policy)
}

proptest! {
    /// Every out-edge appears as an in-edge of its target with the same
    /// weight and kind, and vice versa.
    #[test]
    fn adjacency_directions_are_mirrors((n, edges) in arb_graph()) {
        let g = build(n, &edges, ExpansionPolicy::paper_default());
        for u in g.nodes() {
            let outs: Vec<_> = g.out_edges(u).collect();
            for e in outs {
                prop_assert!(g.in_edges(e.to).any(|b| b.from == u && (b.weight - e.weight).abs() < 1e-12 && b.kind == e.kind));
            }
            let ins: Vec<_> = g.in_edges(u).collect();
            for e in ins {
                prop_assert!(g.out_edges(e.from).any(|b| b.to == u && (b.weight - e.weight).abs() < 1e-12 && b.kind == e.kind));
            }
        }
    }

    /// The number of directed edges is exactly twice the number of original
    /// edges when backward expansion is on, and equal when it is off.
    #[test]
    fn edge_counts_match_policy((n, edges) in arb_graph()) {
        let with_back = build(n, &edges, ExpansionPolicy::paper_default());
        let without = build(n, &edges, ExpansionPolicy::directed_only());
        prop_assert_eq!(with_back.num_directed_edges(), 2 * with_back.num_original_edges());
        prop_assert_eq!(without.num_directed_edges(), without.num_original_edges());
        prop_assert_eq!(with_back.num_original_edges(), without.num_original_edges());
    }

    /// Backward edges are never cheaper than their forward counterpart under
    /// the paper's indegree-log policy.
    #[test]
    fn backward_edges_at_least_forward_weight((n, edges) in arb_graph()) {
        let g = build(n, &edges, ExpansionPolicy::paper_default());
        for u in g.nodes() {
            for e in g.out_edges(u).filter(|e| e.kind == EdgeKind::Backward) {
                // the matching forward edge goes e.to -> e.from
                let fwd = g.forward_edge_weight(e.to, e.from).expect("forward twin must exist");
                prop_assert!(e.weight >= fwd - 1e-12,
                    "backward edge {:?} cheaper than forward {}", e, fwd);
            }
        }
    }

    /// Under the Mirror policy the expanded graph is weight-symmetric, so
    /// Dijkstra distances are symmetric too.
    #[test]
    fn mirror_policy_gives_symmetric_distances((n, edges) in arb_graph()) {
        let policy = ExpansionPolicy {
            add_backward_edges: true,
            backward_weight: BackwardWeightPolicy::Mirror,
            default_forward_weight: 1.0,
        };
        let g = build(n, &edges, policy);
        // sample a handful of node pairs to keep runtime bounded
        let nodes: Vec<NodeId> = g.nodes().collect();
        for (i, &a) in nodes.iter().enumerate().take(5) {
            let from_a = dijkstra(&g, a, Direction::Outgoing);
            for &b in nodes.iter().skip(i).take(5) {
                let from_b = dijkstra(&g, b, Direction::Outgoing);
                let d_ab = from_a.distance(b);
                let d_ba = from_b.distance(a);
                if d_ab.is_finite() || d_ba.is_finite() {
                    prop_assert!((d_ab - d_ba).abs() < 1e-9,
                        "asymmetric distances {} vs {}", d_ab, d_ba);
                }
            }
        }
    }

    /// Serialisation round-trips the original structure.
    #[test]
    fn serialization_roundtrip((n, edges) in arb_graph()) {
        let g = build(n, &edges, ExpansionPolicy::paper_default());
        let text = banks_graph::serialize::to_text(&g);
        let g2 = banks_graph::serialize::from_text(&text, ExpansionPolicy::paper_default()).unwrap();
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g.num_original_edges(), g2.num_original_edges());
        for u in g.nodes() {
            let mut a: Vec<_> = g.out_edges(u).map(|e| (e.to.0, e.kind.is_backward())).collect();
            let mut b: Vec<_> = g2.out_edges(u).map(|e| (e.to.0, e.kind.is_backward())).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// Dijkstra distances satisfy the triangle inequality over direct edges.
    #[test]
    fn dijkstra_relaxed_edges((n, edges) in arb_graph()) {
        let g = build(n, &edges, ExpansionPolicy::paper_default());
        if g.num_nodes() == 0 { return Ok(()); }
        let src = NodeId(0);
        let sp = dijkstra(&g, src, Direction::Outgoing);
        for u in g.nodes() {
            if !sp.is_reachable(u) { continue; }
            for e in g.out_edges(u) {
                prop_assert!(sp.distance(e.to) <= sp.distance(u) + e.weight + 1e-9);
            }
        }
    }
}
