//! Indegree-based prestige (the BANKS-I fallback).
//!
//! The original BANKS paper computes node prestige from the in-degree of a
//! node; BANKS-II keeps this available as a cheap alternative to the biased
//! PageRank.  We expose it both for ablations and because the synthetic
//! workload generators use it when the random-walk prestige is not needed.

use banks_graph::DataGraph;

use crate::vector::PrestigeVector;

/// Computes prestige proportional to `log2(1 + forward indegree)`, rescaled
/// so the maximum is 1.
///
/// The logarithm keeps hub nodes (conference nodes with tens of thousands of
/// incoming edges) from drowning out every other signal, mirroring the
/// paper's treatment of hub edges.
pub fn compute_indegree_prestige(graph: &DataGraph) -> PrestigeVector {
    let raw: Vec<f64> = graph
        .nodes()
        .map(|u| (1.0 + graph.forward_indegree(u) as f64).log2())
        .collect();
    let max = raw.iter().copied().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        // No edges at all: fall back to uniform prestige.
        return PrestigeVector::uniform(graph.num_nodes());
    }
    PrestigeVector::from_values(raw.into_iter().map(|v| v / max).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::builder::graph_from_edges;
    use banks_graph::{GraphBuilder, NodeId};

    #[test]
    fn hub_gets_max_prestige() {
        let g = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0), (3, 4)]);
        let p = compute_indegree_prestige(&g);
        assert_eq!(p.get(NodeId(0)), 1.0);
        assert!(p.get(NodeId(4)) < 1.0);
        assert!(p.get(NodeId(4)) > 0.0);
        // Nodes with no incoming edges get zero.
        assert_eq!(p.get(NodeId(1)), 0.0);
    }

    #[test]
    fn edgeless_graph_falls_back_to_uniform() {
        let mut b = GraphBuilder::new();
        b.add_node("node", "a");
        b.add_node("node", "b");
        let g = b.build_default();
        let p = compute_indegree_prestige(&g);
        assert_eq!(p.get(NodeId(0)), 1.0);
        assert_eq!(p.get(NodeId(1)), 1.0);
    }

    #[test]
    fn prestige_is_monotone_in_indegree() {
        let g = graph_from_edges(7, &[(1, 0), (2, 0), (3, 0), (4, 6), (5, 6), (1, 6), (2, 5)]);
        let p = compute_indegree_prestige(&g);
        // node 0 has indegree 3, node 6 has indegree 3, node 5 has indegree 1
        assert!(p.get(NodeId(0)) > p.get(NodeId(5)));
        assert_eq!(p.get(NodeId(0)), p.get(NodeId(6)));
    }
}
