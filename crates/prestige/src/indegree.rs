//! Indegree-based prestige (the BANKS-I fallback).
//!
//! The original BANKS paper computes node prestige from the in-degree of a
//! node; BANKS-II keeps this available as a cheap alternative to the biased
//! PageRank.  We expose it both for ablations and because the synthetic
//! workload generators use it when the random-walk prestige is not needed.

use banks_graph::{DataGraph, NodeId};

use crate::vector::PrestigeVector;

/// Computes prestige proportional to `log2(1 + forward indegree)`, rescaled
/// so the maximum is 1.
///
/// The logarithm keeps hub nodes (conference nodes with tens of thousands of
/// incoming edges) from drowning out every other signal, mirroring the
/// paper's treatment of hub edges.
pub fn compute_indegree_prestige(graph: &DataGraph) -> PrestigeVector {
    IndegreePrestige::compute(graph).to_vector()
}

/// Incrementally-maintainable state behind the indegree prestige backend.
///
/// A full [`compute_indegree_prestige`] re-reads every node's forward
/// in-degree.  When the serving tier applies a [`banks_graph::MutationBatch`]
/// it already knows exactly which nodes' in-degrees changed
/// ([`banks_graph::BatchOutcome::dirty_nodes`]), so this type keeps the raw
/// (unnormalised) per-node scores and refreshes only the dirty entries:
/// [`IndegreePrestige::refresh`] is O(|dirty|) except in the rare case that
/// the previous maximum decreased, which triggers one O(n) rescan.
///
/// The normalised vector produced by [`IndegreePrestige::to_vector`] is
/// **bit-identical** to a from-scratch [`compute_indegree_prestige`] on the
/// same graph — raw scores and the division by the maximum use exactly the
/// same operations — which is what lets the serving tier answer queries on
/// incrementally-refreshed prestige without any drift from the rebuild
/// path.
#[derive(Clone, Debug)]
pub struct IndegreePrestige {
    /// `log2(1 + forward_indegree(u))` per node.
    raw: Vec<f64>,
    max: f64,
}

impl IndegreePrestige {
    /// Computes the state from scratch.
    pub fn compute(graph: &DataGraph) -> Self {
        let raw: Vec<f64> = graph
            .nodes()
            .map(|u| (1.0 + graph.forward_indegree(u) as f64).log2())
            .collect();
        let max = raw.iter().copied().fold(0.0_f64, f64::max);
        IndegreePrestige { raw, max }
    }

    /// Refreshes the entries of `dirty` nodes against the (post-mutation)
    /// `graph`, extending the state for nodes the mutation appended.
    /// `dirty` must cover every node whose forward in-degree changed — the
    /// contract [`banks_graph::BatchOutcome::dirty_nodes`] provides.
    pub fn refresh(&mut self, graph: &DataGraph, dirty: &[NodeId]) {
        let n = graph.num_nodes();
        if self.raw.len() < n {
            // Appended nodes: fill with their true score right away (the
            // dirty list covers them too, but this keeps the state valid
            // even for callers passing a narrower list).
            for i in self.raw.len()..n {
                let v = (1.0 + graph.forward_indegree(NodeId::from_index(i)) as f64).log2();
                self.raw.push(v);
                self.max = self.max.max(v);
            }
        }
        let mut max_lowered = false;
        for &d in dirty {
            let v = (1.0 + graph.forward_indegree(d) as f64).log2();
            let old = self.raw[d.index()];
            self.raw[d.index()] = v;
            if v > self.max {
                self.max = v;
            } else if old == self.max && v < old {
                max_lowered = true;
            }
        }
        if max_lowered {
            self.max = self.raw.iter().copied().fold(0.0_f64, f64::max);
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Produces the normalised prestige vector (maximum rescaled to 1;
    /// uniform fallback for edgeless graphs) — bit-identical to
    /// [`compute_indegree_prestige`] on the same graph.
    pub fn to_vector(&self) -> PrestigeVector {
        if self.max <= 0.0 {
            // No edges at all: fall back to uniform prestige.
            return PrestigeVector::uniform(self.raw.len());
        }
        PrestigeVector::from_values(self.raw.iter().map(|v| v / self.max).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::builder::graph_from_edges;
    use banks_graph::{GraphBuilder, NodeId};

    #[test]
    fn hub_gets_max_prestige() {
        let g = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0), (3, 4)]);
        let p = compute_indegree_prestige(&g);
        assert_eq!(p.get(NodeId(0)), 1.0);
        assert!(p.get(NodeId(4)) < 1.0);
        assert!(p.get(NodeId(4)) > 0.0);
        // Nodes with no incoming edges get zero.
        assert_eq!(p.get(NodeId(1)), 0.0);
    }

    #[test]
    fn edgeless_graph_falls_back_to_uniform() {
        let mut b = GraphBuilder::new();
        b.add_node("node", "a");
        b.add_node("node", "b");
        let g = b.build_default();
        let p = compute_indegree_prestige(&g);
        assert_eq!(p.get(NodeId(0)), 1.0);
        assert_eq!(p.get(NodeId(1)), 1.0);
    }

    #[test]
    fn prestige_is_monotone_in_indegree() {
        let g = graph_from_edges(7, &[(1, 0), (2, 0), (3, 0), (4, 6), (5, 6), (1, 6), (2, 5)]);
        let p = compute_indegree_prestige(&g);
        // node 0 has indegree 3, node 6 has indegree 3, node 5 has indegree 1
        assert!(p.get(NodeId(0)) > p.get(NodeId(5)));
        assert_eq!(p.get(NodeId(0)), p.get(NodeId(6)));
    }

    #[test]
    fn refresh_is_bit_identical_to_full_recompute() {
        use banks_graph::MutationBatch;
        let g = graph_from_edges(6, &[(1, 0), (2, 0), (3, 0), (4, 5)]);
        let mut state = IndegreePrestige::compute(&g);
        let batch = MutationBatch::new()
            .add_node("node", "v6")
            .add_edge(NodeId(6), NodeId(0))
            .add_edge(NodeId(1), NodeId(5))
            .remove_edge(NodeId(4), NodeId(5));
        let (g2, outcome) = g.apply_batch(&batch);
        state.refresh(&g2, &outcome.dirty_nodes);
        let incremental = state.to_vector();
        let full = compute_indegree_prestige(&g2);
        assert_eq!(incremental.len(), full.len());
        for (a, b) in incremental.values().iter().zip(full.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "values must be bit-identical");
        }
    }

    #[test]
    fn refresh_rescans_when_the_maximum_drops() {
        use banks_graph::MutationBatch;
        // node 0 is the unique hub; removing its edges lowers the max
        let g = graph_from_edges(5, &[(1, 0), (2, 0), (3, 0), (3, 4)]);
        let mut state = IndegreePrestige::compute(&g);
        let batch = MutationBatch::new()
            .remove_edge(NodeId(1), NodeId(0))
            .remove_edge(NodeId(2), NodeId(0));
        let (g2, outcome) = g.apply_batch(&batch);
        state.refresh(&g2, &outcome.dirty_nodes);
        let full = compute_indegree_prestige(&g2);
        for (a, b) in state.to_vector().values().iter().zip(full.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // indegree(0) == 1 == indegree(4): both are now the maximum
        assert_eq!(state.to_vector().get(NodeId(0)), 1.0);
    }

    #[test]
    fn edgeless_refresh_keeps_the_uniform_fallback() {
        let mut b = GraphBuilder::new();
        b.add_node("node", "a");
        let g = b.build_default();
        let mut state = IndegreePrestige::compute(&g);
        let (g2, outcome) = g.apply_batch(&banks_graph::MutationBatch::new().add_node("node", "b"));
        state.refresh(&g2, &outcome.dirty_nodes);
        let v = state.to_vector();
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(NodeId(1)), 1.0, "uniform fallback");
    }
}
