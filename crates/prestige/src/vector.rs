//! The per-node prestige vector handed to the search algorithms.

use banks_graph::{DataGraph, NodeId};

/// Immutable prestige assignment: one non-negative score per node.
///
/// The vector also caches its maximum, which the Bidirectional search needs
/// when computing upper bounds on the scores of answers not yet generated
/// (Section 4.5).
#[derive(Clone, Debug, PartialEq)]
pub struct PrestigeVector {
    values: Vec<f64>,
    max: f64,
}

impl PrestigeVector {
    /// Wraps a raw score vector.
    ///
    /// # Panics
    /// Panics if any score is negative or non-finite.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "prestige scores must be finite and non-negative"
        );
        let max = values.iter().copied().fold(0.0_f64, f64::max);
        PrestigeVector { values, max }
    }

    /// Uniform prestige `1.0` for every node — the setting of the paper's
    /// Figure 4 walk-through ("assume all node prestiges and edge weights to
    /// be unity").
    pub fn uniform(num_nodes: usize) -> Self {
        PrestigeVector {
            values: vec![1.0; num_nodes],
            max: if num_nodes == 0 { 0.0 } else { 1.0 },
        }
    }

    /// Uniform prestige sized for a graph.
    pub fn uniform_for(graph: &DataGraph) -> Self {
        Self::uniform(graph.num_nodes())
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the vector covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Prestige of a node.
    #[inline]
    pub fn get(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }

    /// Largest prestige over all nodes.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all prestige values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns a copy rescaled so the values sum to `target_sum`
    /// (useful to compare vectors computed with different conventions).
    pub fn rescaled(&self, target_sum: f64) -> PrestigeVector {
        let current = self.sum();
        if current <= 0.0 {
            return self.clone();
        }
        let factor = target_sum / current;
        PrestigeVector::from_values(self.values.iter().map(|v| v * factor).collect())
    }

    /// The `k` nodes with highest prestige, in descending prestige order
    /// (ties broken by node id for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut ranked: Vec<(NodeId, f64)> = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (NodeId::from_index(i), *v))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vector() {
        let p = PrestigeVector::uniform(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.get(NodeId(2)), 1.0);
        assert_eq!(p.max(), 1.0);
        assert_eq!(p.sum(), 4.0);
        assert!(!p.is_empty());
        assert!(PrestigeVector::uniform(0).is_empty());
    }

    #[test]
    fn from_values_tracks_max() {
        let p = PrestigeVector::from_values(vec![0.1, 0.5, 0.4]);
        assert_eq!(p.max(), 0.5);
        assert_eq!(p.values(), &[0.1, 0.5, 0.4]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_values() {
        let _ = PrestigeVector::from_values(vec![0.1, -0.5]);
    }

    #[test]
    fn rescaling_preserves_ratios() {
        let p = PrestigeVector::from_values(vec![1.0, 3.0]);
        let r = p.rescaled(1.0);
        assert!((r.sum() - 1.0).abs() < 1e-12);
        assert!((r.get(NodeId(1)) / r.get(NodeId(0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_orders_by_prestige() {
        let p = PrestigeVector::from_values(vec![0.2, 0.5, 0.5, 0.1]);
        let top = p.top_k(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, NodeId(1)); // tie broken by id
        assert_eq!(top[1].0, NodeId(2));
        assert_eq!(top[2].0, NodeId(0));
    }
}
