//! # banks-prestige
//!
//! Node-prestige computation for the BANKS-II reproduction.
//!
//! The paper (Section 2.3) ranks answer trees by a combination of an edge
//! score and a *node prestige* score: "The prestige of each node is
//! determined using a biased version of the Pagerank random walk, similar to
//! the computation of global ObjectRank, except that, in our case, the
//! probability of following an edge is inversely proportional to its edge
//! weight taken from the data graph".  Prestige is precomputed (the paper
//! reports about a minute for its datasets) and handed to the search
//! algorithms.
//!
//! This crate provides:
//!
//! * [`PrestigeVector`] — an immutable per-node prestige assignment,
//! * [`PageRankConfig`] / [`compute_pagerank`] — the paper's biased random
//!   walk via power iteration,
//! * [`refresh_pagerank`] — a warm-start refresh after an incremental
//!   graph mutation, with a documented staleness bound
//!   ([`PageRankStats::staleness_bound`]),
//! * [`compute_indegree_prestige`] — the simpler indegree-based prestige of
//!   BANKS-I, useful as a cheap alternative and for ablations, plus
//!   [`IndegreePrestige`], its incrementally-refreshable state (dirty-node
//!   updates bit-identical to a full recompute),
//! * [`PrestigeVector::uniform`] — the "all node prestiges are unity"
//!   setting used in the paper's worked example (Figure 4).

pub mod indegree;
pub mod pagerank;
pub mod vector;

pub use indegree::{compute_indegree_prestige, IndegreePrestige};
pub use pagerank::{compute_pagerank, refresh_pagerank, PageRankConfig, PageRankStats};
pub use vector::PrestigeVector;
