//! Biased PageRank prestige (the paper's default).

use banks_graph::{DataGraph, NodeId};

use crate::vector::PrestigeVector;

/// Configuration for the biased PageRank power iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Probability of following an edge rather than teleporting
    /// (the classic damping factor; Brin & Page use 0.85).
    pub damping: f64,
    /// Maximum number of power-iteration sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 change between successive iterations.
    pub tolerance: f64,
    /// Whether the walk follows only forward edges or the full expanded
    /// graph (forward + backward).  The paper's walk runs on the data graph,
    /// which contains both; following both also guarantees ergodicity on
    /// weakly connected graphs.
    pub use_backward_edges: bool,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 200,
            tolerance: 1e-9,
            use_backward_edges: true,
        }
    }
}

/// Convergence diagnostics of a PageRank run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankStats {
    /// Number of sweeps actually performed.
    pub iterations: usize,
    /// L1 change of the last sweep.
    pub final_delta: f64,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

impl PageRankStats {
    /// A posteriori bound on the L1 distance between the returned vector
    /// and the true stationary vector of the graph it ran on.
    ///
    /// The power iteration contracts the L1 error by (at most) the damping
    /// factor `d` per sweep, so if the last sweep moved the vector by
    /// `final_delta`, the remaining distance to the fixed point is at most
    /// `final_delta · d / (1 − d)` (the geometric tail).  This is the
    /// **staleness bound** the serving tier quotes when it refreshes
    /// prestige incrementally with [`refresh_pagerank`] instead of running
    /// the full iteration to convergence.
    pub fn staleness_bound(&self, damping: f64) -> f64 {
        if damping >= 1.0 {
            f64::INFINITY
        } else {
            self.final_delta * damping / (1.0 - damping)
        }
    }
}

/// Computes the paper's biased PageRank prestige.
///
/// At each step the walker at node `u` follows edge `u -> v` with probability
/// proportional to `1 / w(u, v)` (cheap edges are strong endorsements), or
/// teleports to a uniformly random node with probability `1 - damping`.
/// Nodes with no outgoing edges teleport with probability 1.
///
/// The result is normalised to sum to 1 over all nodes.
pub fn compute_pagerank(
    graph: &DataGraph,
    config: PageRankConfig,
) -> (PrestigeVector, PageRankStats) {
    let n = graph.num_nodes();
    let uniform = if n == 0 { 0.0 } else { 1.0 / n as f64 };
    power_iterate(graph, config, vec![uniform; n])
}

/// Warm-start ("dirty region") refresh of a previously-computed prestige
/// vector after an incremental graph change.
///
/// Instead of restarting the power iteration from the uniform vector, the
/// walk starts from `previous` (nodes the mutation appended start at the
/// uniform mass; the vector is renormalised).  After a small batch the
/// starting point is already close to the new fixed point everywhere
/// outside the mutated region, so far fewer sweeps reach a given accuracy —
/// pass a `config` with a reduced `max_iterations` to bound the refresh
/// cost.
///
/// **Staleness bound** (documented contract): each sweep contracts the L1
/// distance to the new stationary vector by at most the damping factor
/// `d`, so after `t` sweeps the error is at most `d^t · δ₀` (with `δ₀` the
/// initial distance, itself bounded by the size of the mutation's
/// footprint), and the returned [`PageRankStats`] certify the a posteriori
/// bound [`PageRankStats::staleness_bound`] = `final_delta · d / (1 − d)`.
/// Callers that need exactness run [`compute_pagerank`] to convergence;
/// callers serving frequent small deltas accept the quantified staleness.
pub fn refresh_pagerank(
    graph: &DataGraph,
    previous: &PrestigeVector,
    config: PageRankConfig,
) -> (PrestigeVector, PageRankStats) {
    let n = graph.num_nodes();
    let uniform = if n == 0 { 0.0 } else { 1.0 / n as f64 };
    let mut init: Vec<f64> = previous.values().to_vec();
    init.resize(n, uniform);
    let sum: f64 = init.iter().sum();
    if sum > 0.0 {
        init.iter_mut().for_each(|x| *x /= sum);
    } else {
        init = vec![uniform; n];
    }
    power_iterate(graph, config, init)
}

/// The shared power-iteration core: runs sweeps from `init` until the
/// tolerance or the iteration cap is reached.
fn power_iterate(
    graph: &DataGraph,
    config: PageRankConfig,
    init: Vec<f64>,
) -> (PrestigeVector, PageRankStats) {
    let n = graph.num_nodes();
    if n == 0 {
        return (
            PrestigeVector::from_values(Vec::new()),
            PageRankStats {
                iterations: 0,
                final_delta: 0.0,
                converged: true,
            },
        );
    }

    // Precompute, for every node, its transition targets and probabilities.
    let mut targets: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    for u in graph.nodes() {
        let edges: Vec<(NodeId, f64)> = graph
            .out_edges(u)
            .filter(|e| config.use_backward_edges || e.kind.is_forward())
            .map(|e| (e.to, 1.0 / e.weight))
            .collect();
        let total: f64 = edges.iter().map(|(_, p)| p).sum();
        if total > 0.0 {
            targets.push(edges.into_iter().map(|(v, p)| (v.0, p / total)).collect());
        } else {
            targets.push(Vec::new());
        }
    }

    let uniform = 1.0 / n as f64;
    let mut rank = init;
    let mut next = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut final_delta = f64::INFINITY;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Mass from teleportation and dangling nodes.
        let dangling_mass: f64 = (0..n)
            .filter(|i| targets[*i].is_empty())
            .map(|i| rank[i])
            .sum();
        let base = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for u in 0..n {
            if targets[u].is_empty() {
                continue;
            }
            let share = config.damping * rank[u];
            for (v, p) in &targets[u] {
                next[*v as usize] += share * p;
            }
        }
        final_delta = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if final_delta < config.tolerance {
            converged = true;
            break;
        }
    }

    // Normalise defensively (floating point drift).
    let sum: f64 = rank.iter().sum();
    if sum > 0.0 {
        rank.iter_mut().for_each(|x| *x /= sum);
    }

    (
        PrestigeVector::from_values(rank),
        PageRankStats {
            iterations,
            final_delta,
            converged,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::builder::{graph_from_edges, graph_from_weighted_edges};
    use banks_graph::{ExpansionPolicy, GraphBuilder};

    #[test]
    fn ranks_sum_to_one_and_converge() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 1), (4, 1), (5, 4)]);
        let (p, stats) = compute_pagerank(&g, PageRankConfig::default());
        assert!((p.sum() - 1.0).abs() < 1e-9);
        assert!(stats.converged, "did not converge: {stats:?}");
        assert!(stats.iterations > 1);
        assert!(p.values().iter().all(|v| *v > 0.0));
    }

    #[test]
    fn heavily_cited_node_has_higher_prestige() {
        // Many papers cite node 0; node 5 is cited by nobody.
        let g = graph_from_edges(6, &[(1, 0), (2, 0), (3, 0), (4, 0), (1, 5)]);
        let (p, _) = compute_pagerank(&g, PageRankConfig::default());
        assert!(p.get(NodeId(0)) > p.get(NodeId(5)));
        assert!(p.get(NodeId(0)) > p.get(NodeId(2)));
    }

    #[test]
    fn cheaper_edges_carry_more_endorsement() {
        // Node 0 points to 1 with a cheap edge and to 2 with an expensive
        // edge; the walk should favour node 1.
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge_weighted(NodeId(0), NodeId(1), 1.0).unwrap();
            b.add_edge_weighted(NodeId(0), NodeId(2), 10.0).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        let (p, _) = compute_pagerank(
            &g,
            PageRankConfig {
                use_backward_edges: false,
                ..Default::default()
            },
        );
        assert!(p.get(NodeId(1)) > p.get(NodeId(2)));
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        // Strictly directed chain: node 2 is dangling.
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1)).unwrap();
            b.add_edge(NodeId(1), NodeId(2)).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        let (p, _) = compute_pagerank(
            &g,
            PageRankConfig {
                use_backward_edges: false,
                ..Default::default()
            },
        );
        assert!((p.sum() - 1.0).abs() < 1e-9);
        // Downstream nodes accumulate prestige.
        assert!(p.get(NodeId(2)) > p.get(NodeId(0)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build_default();
        let (p, stats) = compute_pagerank(&g, PageRankConfig::default());
        assert!(p.is_empty());
        assert!(stats.converged);
    }

    #[test]
    fn warm_start_refresh_converges_faster_after_a_small_delta() {
        use banks_graph::{MutationBatch, NodeId};
        // An irregular graph (skewed in-degrees: a ring, extra chords, and
        // a hub), so the stationary vector is far from uniform and a warm
        // start has something to be warm about.
        let mut edges: Vec<(u32, u32)> = (0..200u32).map(|i| (i, (i + 1) % 200)).collect();
        edges.extend((0..100u32).filter_map(|i| {
            let t = (3 * i + 7) % 200;
            (t != i).then_some((i, t))
        }));
        edges.extend((150..180u32).map(|i| (i, 0)));
        let g = graph_from_edges(200, &edges);
        let config = PageRankConfig::default();
        let (full, full_stats) = compute_pagerank(&g, config);
        assert!(full_stats.converged);

        let (g2, _) = g.apply_batch(
            &MutationBatch::new()
                .add_edge(NodeId(0), NodeId(100))
                .remove_edge(NodeId(5), NodeId(6)),
        );
        // After the same small number of sweeps, the warm start is far
        // closer to the new fixed point than the cold start: its residual
        // (the L1 movement of the last sweep) is what certifies it.
        let budget = PageRankConfig {
            max_iterations: 4,
            tolerance: 0.0,
            ..config
        };
        let (_, cold_stats) = compute_pagerank(&g2, budget);
        let (_, warm_stats) = refresh_pagerank(&g2, &full, budget);
        assert!(
            warm_stats.final_delta < cold_stats.final_delta / 4.0,
            "warm residual {} must be well under cold residual {}",
            warm_stats.final_delta,
            cold_stats.final_delta
        );

        // Run to convergence: the refreshed vector agrees with the cold
        // recompute to within the shared tolerance.
        let (cold, _) = compute_pagerank(&g2, config);
        let (warm, _) = refresh_pagerank(&g2, &full, config);
        let l1: f64 = warm
            .values()
            .iter()
            .zip(cold.values())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 1e-6, "refreshed vector drifted: L1 {l1}");
    }

    #[test]
    fn staleness_bound_is_finite_and_scales_with_final_delta() {
        let stats = PageRankStats {
            iterations: 3,
            final_delta: 0.01,
            converged: false,
        };
        let bound = stats.staleness_bound(0.85);
        assert!((bound - 0.01 * 0.85 / 0.15).abs() < 1e-12);
        assert!(stats.staleness_bound(1.0).is_infinite());
        // a truncated refresh quantifies its own staleness
        let g = graph_from_edges(50, &(0..49u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (v, _) = compute_pagerank(&g, PageRankConfig::default());
        let truncated = PageRankConfig {
            max_iterations: 2,
            tolerance: 0.0,
            ..Default::default()
        };
        let (_, rs) = refresh_pagerank(&g, &v, truncated);
        // warm start from the fixed point: the residual bound is tiny
        assert!(rs.staleness_bound(truncated.damping) < 1e-6);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = graph_from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let (_, stats) = compute_pagerank(
            &g,
            PageRankConfig {
                max_iterations: 2,
                tolerance: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(stats.iterations, 2);
        assert!(!stats.converged);
    }
}
