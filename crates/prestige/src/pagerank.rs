//! Biased PageRank prestige (the paper's default).

use banks_graph::{DataGraph, NodeId};

use crate::vector::PrestigeVector;

/// Configuration for the biased PageRank power iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Probability of following an edge rather than teleporting
    /// (the classic damping factor; Brin & Page use 0.85).
    pub damping: f64,
    /// Maximum number of power-iteration sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 change between successive iterations.
    pub tolerance: f64,
    /// Whether the walk follows only forward edges or the full expanded
    /// graph (forward + backward).  The paper's walk runs on the data graph,
    /// which contains both; following both also guarantees ergodicity on
    /// weakly connected graphs.
    pub use_backward_edges: bool,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 200,
            tolerance: 1e-9,
            use_backward_edges: true,
        }
    }
}

/// Convergence diagnostics of a PageRank run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankStats {
    /// Number of sweeps actually performed.
    pub iterations: usize,
    /// L1 change of the last sweep.
    pub final_delta: f64,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

/// Computes the paper's biased PageRank prestige.
///
/// At each step the walker at node `u` follows edge `u -> v` with probability
/// proportional to `1 / w(u, v)` (cheap edges are strong endorsements), or
/// teleports to a uniformly random node with probability `1 - damping`.
/// Nodes with no outgoing edges teleport with probability 1.
///
/// The result is normalised to sum to 1 over all nodes.
pub fn compute_pagerank(
    graph: &DataGraph,
    config: PageRankConfig,
) -> (PrestigeVector, PageRankStats) {
    let n = graph.num_nodes();
    if n == 0 {
        return (
            PrestigeVector::from_values(Vec::new()),
            PageRankStats {
                iterations: 0,
                final_delta: 0.0,
                converged: true,
            },
        );
    }

    // Precompute, for every node, its transition targets and probabilities.
    let mut targets: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    for u in graph.nodes() {
        let edges: Vec<(NodeId, f64)> = graph
            .out_edges(u)
            .filter(|e| config.use_backward_edges || e.kind.is_forward())
            .map(|e| (e.to, 1.0 / e.weight))
            .collect();
        let total: f64 = edges.iter().map(|(_, p)| p).sum();
        if total > 0.0 {
            targets.push(edges.into_iter().map(|(v, p)| (v.0, p / total)).collect());
        } else {
            targets.push(Vec::new());
        }
    }

    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut final_delta = f64::INFINITY;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Mass from teleportation and dangling nodes.
        let dangling_mass: f64 = (0..n)
            .filter(|i| targets[*i].is_empty())
            .map(|i| rank[i])
            .sum();
        let base = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for u in 0..n {
            if targets[u].is_empty() {
                continue;
            }
            let share = config.damping * rank[u];
            for (v, p) in &targets[u] {
                next[*v as usize] += share * p;
            }
        }
        final_delta = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if final_delta < config.tolerance {
            converged = true;
            break;
        }
    }

    // Normalise defensively (floating point drift).
    let sum: f64 = rank.iter().sum();
    if sum > 0.0 {
        rank.iter_mut().for_each(|x| *x /= sum);
    }

    (
        PrestigeVector::from_values(rank),
        PageRankStats {
            iterations,
            final_delta,
            converged,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::builder::{graph_from_edges, graph_from_weighted_edges};
    use banks_graph::{ExpansionPolicy, GraphBuilder};

    #[test]
    fn ranks_sum_to_one_and_converge() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 1), (4, 1), (5, 4)]);
        let (p, stats) = compute_pagerank(&g, PageRankConfig::default());
        assert!((p.sum() - 1.0).abs() < 1e-9);
        assert!(stats.converged, "did not converge: {stats:?}");
        assert!(stats.iterations > 1);
        assert!(p.values().iter().all(|v| *v > 0.0));
    }

    #[test]
    fn heavily_cited_node_has_higher_prestige() {
        // Many papers cite node 0; node 5 is cited by nobody.
        let g = graph_from_edges(6, &[(1, 0), (2, 0), (3, 0), (4, 0), (1, 5)]);
        let (p, _) = compute_pagerank(&g, PageRankConfig::default());
        assert!(p.get(NodeId(0)) > p.get(NodeId(5)));
        assert!(p.get(NodeId(0)) > p.get(NodeId(2)));
    }

    #[test]
    fn cheaper_edges_carry_more_endorsement() {
        // Node 0 points to 1 with a cheap edge and to 2 with an expensive
        // edge; the walk should favour node 1.
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge_weighted(NodeId(0), NodeId(1), 1.0).unwrap();
            b.add_edge_weighted(NodeId(0), NodeId(2), 10.0).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        let (p, _) = compute_pagerank(
            &g,
            PageRankConfig {
                use_backward_edges: false,
                ..Default::default()
            },
        );
        assert!(p.get(NodeId(1)) > p.get(NodeId(2)));
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        // Strictly directed chain: node 2 is dangling.
        let g = {
            let mut b = GraphBuilder::new();
            for i in 0..3 {
                b.add_node("node", format!("v{i}"));
            }
            b.add_edge(NodeId(0), NodeId(1)).unwrap();
            b.add_edge(NodeId(1), NodeId(2)).unwrap();
            b.build(ExpansionPolicy::directed_only())
        };
        let (p, _) = compute_pagerank(
            &g,
            PageRankConfig {
                use_backward_edges: false,
                ..Default::default()
            },
        );
        assert!((p.sum() - 1.0).abs() < 1e-9);
        // Downstream nodes accumulate prestige.
        assert!(p.get(NodeId(2)) > p.get(NodeId(0)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build_default();
        let (p, stats) = compute_pagerank(&g, PageRankConfig::default());
        assert!(p.is_empty());
        assert!(stats.converged);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = graph_from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let (_, stats) = compute_pagerank(
            &g,
            PageRankConfig {
                max_iterations: 2,
                tolerance: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(stats.iterations, 2);
        assert!(!stats.converged);
    }
}
