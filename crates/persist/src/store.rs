//! Durable graph store: snapshot + WAL lifecycle and crash recovery.
//!
//! [`PersistentStore`] is the persistence-aware analogue of
//! `banks_graph::GraphStore`: it owns the current [`DataGraph`] version,
//! appends every accepted batch to the WAL **before** advancing the
//! in-memory state, and periodically [`checkpoint`](PersistentStore::checkpoint)s
//! — writing a fresh snapshot, pruning stale ones and truncating the log.
//!
//! The free functions ([`recover`], [`replay_wal`], [`list_snapshots`])
//! are the building blocks higher layers (the query service) use to run
//! the same protocol around their own richer state.

use std::path::{Path, PathBuf};

use banks_graph::{
    AppliedBatch, BatchOutcome, DataGraph, MutationBatch, MutationLog, DEFAULT_LOG_CAPACITY,
};

use crate::error::{PersistError, Result};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotContents};
use crate::wal::{scan_file, FsyncPolicy, Wal, WalRecord, WalScan};

/// File name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// Prefix of snapshot file names (`snapshot-<epoch:020>.banks`).
pub const SNAPSHOT_PREFIX: &str = "snapshot-";
/// Extension of snapshot file names.
pub const SNAPSHOT_EXT: &str = "banks";

/// Tuning knobs for a [`PersistentStore`] (and for the service layer's
/// persistence wiring, which reuses them).
#[derive(Clone, Copy, Debug)]
pub struct PersistOptions {
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint automatically once the WAL grows past this many bytes.
    pub rotate_wal_bytes: u64,
    /// How many recent snapshot files to keep (older ones are pruned at
    /// checkpoint).  The minimum of 1 is always enforced.
    pub keep_snapshots: usize,
    /// Capacity of the in-memory [`MutationLog`] ring.
    pub log_capacity: usize,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: FsyncPolicy::default(),
            rotate_wal_bytes: 8 * 1024 * 1024,
            keep_snapshots: 2,
            log_capacity: DEFAULT_LOG_CAPACITY,
        }
    }
}

/// Builds the canonical snapshot file name for an epoch.  Zero-padding to
/// 20 digits makes lexicographic and numeric order coincide.
pub fn snapshot_file_name(epoch: u64) -> String {
    format!("{SNAPSHOT_PREFIX}{epoch:020}.{SNAPSHOT_EXT}")
}

/// Lists snapshot files in `dir`, newest epoch first.  Files that do not
/// match the naming scheme are ignored.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|s| s.strip_suffix(&format!(".{SNAPSHOT_EXT}")))
        else {
            continue;
        };
        let Ok(epoch) = stem.parse::<u64>() else {
            continue;
        };
        found.push((epoch, entry.path()));
    }
    found.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(found)
}

/// What [`recover`] found in a data directory.
#[derive(Debug)]
pub struct Recovery {
    /// The decoded contents of the newest loadable snapshot (the graph
    /// already carries its persisted epoch).
    pub contents: SnapshotContents,
    /// Epoch of the snapshot that was loaded.
    pub snapshot_epoch: u64,
    /// Path of the snapshot file that was loaded.
    pub snapshot_path: PathBuf,
    /// Newer snapshot files that were skipped because they failed to load.
    pub skipped_snapshots: usize,
    /// The lenient WAL scan; replay its records with [`replay_wal`].
    pub wal: WalScan,
}

/// Scans a data directory after a (possibly unclean) shutdown.
///
/// Returns `Ok(None)` for a directory with no snapshots — a fresh start.
/// Otherwise tries snapshots newest-first, falling back past corrupt ones,
/// and pairs the winner with a lenient WAL scan.  Only if *every* snapshot
/// fails does this return [`PersistError::NoValidSnapshot`].
pub fn recover(dir: &Path) -> Result<Option<Recovery>> {
    let snapshots = list_snapshots(dir)?;
    if snapshots.is_empty() {
        return Ok(None);
    }
    let mut last_error: Option<PersistError> = None;
    for (skipped, (epoch, path)) in snapshots.iter().enumerate() {
        match read_snapshot(path) {
            Ok(contents) => {
                let wal = scan_file(&dir.join(WAL_FILE))?;
                return Ok(Some(Recovery {
                    contents,
                    snapshot_epoch: *epoch,
                    snapshot_path: path.clone(),
                    skipped_snapshots: skipped,
                    wal,
                }));
            }
            Err(e) => {
                if last_error.is_none() {
                    last_error = Some(e);
                }
            }
        }
    }
    Err(PersistError::NoValidSnapshot {
        attempts: snapshots.len(),
        last_error: last_error
            .map(|e| e.to_string())
            .unwrap_or_else(|| "unknown".to_string()),
    })
}

/// Replays scanned WAL records on top of a recovered graph, returning the
/// final graph and how many records were applied.
///
/// Records already covered by the snapshot (`epoch <= graph.epoch()`, as
/// left behind by a crash between snapshot write and WAL truncation) are
/// skipped.  Each applied record must chain from the current epoch; a gap
/// means snapshot and WAL disagree and is a typed error, not silent data
/// loss.  Replayed batches re-run through `DataGraph::apply_batch`, whose
/// rejections are deterministic, and the recorded epoch is restored so the
/// recovered graph is indistinguishable from the pre-crash one.
pub fn replay_wal(mut graph: DataGraph, records: &[WalRecord]) -> Result<(DataGraph, usize)> {
    let mut applied = 0;
    for rec in records {
        if rec.epoch <= graph.epoch() {
            continue;
        }
        if rec.parent_epoch != graph.epoch() {
            return Err(PersistError::Corrupt {
                detail: format!(
                    "wal record {} chains from epoch {} but the graph is at epoch {}",
                    rec.seq,
                    rec.parent_epoch,
                    graph.epoch()
                ),
            });
        }
        let (mut next, _outcome) = graph.apply_batch(&rec.batch);
        next.restore_epoch(rec.epoch);
        graph = next;
        applied += 1;
    }
    Ok((graph, applied))
}

/// How a [`PersistentStore`] came to its initial state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootSource {
    /// No prior state existed; the store started from the caller's graph
    /// and wrote an initial checkpoint.
    Fresh,
    /// A snapshot was loaded and `replayed` WAL records were applied on
    /// top of it.
    Recovered {
        /// WAL records replayed after the snapshot load.
        replayed: usize,
        /// Corrupt newer snapshots that were skipped.
        skipped_snapshots: usize,
        /// Whether the WAL had a torn/corrupt tail that was dropped.
        torn_tail: bool,
    },
}

/// A [`DataGraph`] owner that makes every accepted mutation batch durable.
///
/// The write path is WAL-first: the batch is appended (and fsynced per
/// policy) *before* the in-memory graph pointer advances, so the log is
/// always a superset of the served state and a crash replays forward to
/// exactly the pre-crash graph.
#[derive(Debug)]
pub struct PersistentStore {
    dir: PathBuf,
    options: PersistOptions,
    current: DataGraph,
    log: MutationLog,
    wal: Wal,
    last_checkpoint_epoch: u64,
    checkpoints: u64,
    boot: BootSource,
}

impl PersistentStore {
    /// Opens (or initialises) a durable store in `dir`.
    ///
    /// If the directory holds a usable snapshot, it is loaded and the WAL
    /// suffix replayed — `init` is never called.  Otherwise `init`
    /// provides the starting graph and an initial checkpoint is written
    /// immediately, so the directory is valid from the first moment.
    pub fn open_with(
        dir: &Path,
        options: PersistOptions,
        init: impl FnOnce() -> DataGraph,
    ) -> Result<PersistentStore> {
        std::fs::create_dir_all(dir)?;
        match recover(dir)? {
            Some(recovery) => {
                let torn_tail = recovery.wal.anomaly.is_some();
                let skipped = recovery.skipped_snapshots;
                let (graph, replayed) = replay_wal(recovery.contents.graph, &recovery.wal.records)?;
                let wal = Wal::open_after_scan(&dir.join(WAL_FILE), options.fsync, &recovery.wal)?;
                Ok(PersistentStore {
                    dir: dir.to_path_buf(),
                    current: graph,
                    log: MutationLog::new(options.log_capacity),
                    wal,
                    last_checkpoint_epoch: recovery.snapshot_epoch,
                    checkpoints: 0,
                    boot: BootSource::Recovered {
                        replayed,
                        skipped_snapshots: skipped,
                        torn_tail,
                    },
                    options,
                })
            }
            None => {
                let graph = init();
                let wal = Wal::create(&dir.join(WAL_FILE), options.fsync)?;
                let mut store = PersistentStore {
                    dir: dir.to_path_buf(),
                    current: graph,
                    log: MutationLog::new(options.log_capacity),
                    wal,
                    last_checkpoint_epoch: 0,
                    checkpoints: 0,
                    boot: BootSource::Fresh,
                    options,
                };
                store.checkpoint()?;
                store.checkpoints = 0; // the bootstrap write is not a user checkpoint
                Ok(store)
            }
        }
    }

    /// Opens a durable store with [`PersistOptions::default`].
    pub fn open(dir: &Path, init: impl FnOnce() -> DataGraph) -> Result<PersistentStore> {
        PersistentStore::open_with(dir, PersistOptions::default(), init)
    }

    /// The current graph version.
    pub fn graph(&self) -> &DataGraph {
        &self.current
    }

    /// How the store booted (fresh or recovered).
    pub fn boot_source(&self) -> BootSource {
        self.boot
    }

    /// Applies a mutation batch durably: WAL append first, then the
    /// in-memory swap.  If the append fails the graph does not advance and
    /// the error is returned — the caller's state and the disk state stay
    /// consistent.  Crossing the WAL rotation threshold triggers an
    /// automatic checkpoint.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<(BatchOutcome, AppliedBatch)> {
        let parent_epoch = self.current.epoch();
        let (next, outcome) = self.current.apply_batch(batch);
        let epoch = next.epoch();
        self.wal.append(parent_epoch, epoch, batch)?;
        let applied = AppliedBatch {
            parent_epoch,
            epoch,
            ops: batch.len(),
            accepted: outcome.accepted(),
            rejected: outcome.rejected(),
        };
        self.log.push(applied.clone());
        self.current = next;
        if self.wal.bytes() >= self.options.rotate_wal_bytes {
            self.checkpoint()?;
        }
        Ok((outcome, applied))
    }

    /// Writes a fresh snapshot of the current graph, truncates the WAL and
    /// prunes snapshots beyond [`PersistOptions::keep_snapshots`].  The
    /// in-memory graph is compacted as a side effect (same epoch, flat
    /// storage).  Returns the checkpointed epoch.
    pub fn checkpoint(&mut self) -> Result<u64> {
        if self.current.has_overlay() {
            self.current = self.current.compacted();
        }
        let epoch = self.current.epoch();
        let path = self.dir.join(snapshot_file_name(epoch));
        write_snapshot(&path, &self.current, None, None)?;
        self.wal.reset()?;
        self.last_checkpoint_epoch = epoch;
        self.checkpoints += 1;
        self.prune_snapshots()?;
        Ok(epoch)
    }

    fn prune_snapshots(&self) -> Result<()> {
        let keep = self.options.keep_snapshots.max(1);
        for (_, path) in list_snapshots(&self.dir)?.into_iter().skip(keep) {
            // Pruning is best-effort; a locked or vanished file must not
            // fail the checkpoint that just succeeded.
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Forces buffered WAL records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The in-memory ring of recently applied batches.
    pub fn log(&self) -> &MutationLog {
        &self.log
    }

    /// Records currently in the WAL (since the last checkpoint).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Size of the WAL file in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Epoch of the most recent checkpoint.
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint_epoch
    }

    /// Checkpoints taken since this store was opened (bootstrap excluded).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &PersistOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::{GraphBuilder, NodeId};

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("banks-store-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Ada");
        let p = b.add_node("paper", "Persistent Graphs");
        b.add_edge(p, a).unwrap();
        b.build_default()
    }

    fn rows(g: &DataGraph) -> Vec<Vec<(u32, u64, bool)>> {
        g.nodes()
            .map(|u| {
                g.out_edges(u)
                    .map(|e| (e.to.0, e.weight.to_bits(), e.kind.is_backward()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fresh_open_writes_a_bootstrap_snapshot() {
        let dir = tmp_dir("fresh");
        let store = PersistentStore::open(&dir, seed_graph).unwrap();
        assert_eq!(store.boot_source(), BootSource::Fresh);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.last_checkpoint_epoch(), store.graph().epoch());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_without_checkpoint_replays_the_wal() {
        let dir = tmp_dir("replay");
        let (pre_epoch, pre_rows, pre_labels): (u64, _, Vec<String>);
        {
            let mut store = PersistentStore::open(&dir, seed_graph).unwrap();
            for i in 0..4 {
                let batch = MutationBatch::new()
                    .add_node("author", format!("A{i}"))
                    .add_edge(NodeId(1), NodeId(2 + i));
                store.apply(&batch).unwrap();
            }
            store.sync().unwrap();
            pre_epoch = store.graph().epoch();
            pre_rows = rows(store.graph());
            pre_labels = store
                .graph()
                .nodes()
                .map(|n| store.graph().node_label(n).to_string())
                .collect();
            // Simulated crash: drop without checkpoint.
        }
        let store = PersistentStore::open(&dir, || panic!("must recover, not init")).unwrap();
        assert!(matches!(
            store.boot_source(),
            BootSource::Recovered {
                replayed: 4,
                skipped_snapshots: 0,
                torn_tail: false,
            }
        ));
        assert_eq!(store.graph().epoch(), pre_epoch);
        assert_eq!(rows(store.graph()), pre_rows);
        let labels: Vec<String> = store
            .graph()
            .nodes()
            .map(|n| store.graph().node_label(n).to_string())
            .collect();
        assert_eq!(labels, pre_labels);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_prunes() {
        let dir = tmp_dir("ckpt");
        let mut store = PersistentStore::open(&dir, seed_graph).unwrap();
        for i in 0..3 {
            store
                .apply(&MutationBatch::new().add_node("author", format!("B{i}")))
                .unwrap();
            store.checkpoint().unwrap();
        }
        assert_eq!(store.checkpoints(), 3);
        assert_eq!(store.wal_records(), 0);
        // keep_snapshots defaults to 2.
        assert_eq!(list_snapshots(&dir).unwrap().len(), 2);
        assert_eq!(
            list_snapshots(&dir).unwrap()[0].0,
            store.graph().epoch(),
            "newest snapshot is the current epoch"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_rotation_threshold_triggers_checkpoint() {
        let dir = tmp_dir("rotate");
        let options = PersistOptions {
            rotate_wal_bytes: 256,
            ..PersistOptions::default()
        };
        let mut store = PersistentStore::open_with(&dir, options, seed_graph).unwrap();
        let mut rotated = false;
        for i in 0..64 {
            store
                .apply(&MutationBatch::new().add_node("author", format!("Long Author Name {i}")))
                .unwrap();
            if store.checkpoints() > 0 {
                rotated = true;
                break;
            }
        }
        assert!(rotated, "256-byte threshold must rotate within 64 batches");
        assert!(store.wal_bytes() < 256);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let mut store = PersistentStore::open(&dir, seed_graph).unwrap();
        store
            .apply(&MutationBatch::new().add_node("author", "Victim"))
            .unwrap();
        store.checkpoint().unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 2);
        let newest = snaps[0].1.clone();
        drop(store);
        // Corrupt the newest snapshot's body.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let store = PersistentStore::open(&dir, || panic!("must recover")).unwrap();
        match store.boot_source() {
            BootSource::Recovered {
                skipped_snapshots, ..
            } => assert_eq!(skipped_snapshots, 1),
            other => panic!("expected recovery, got {other:?}"),
        }
        // The WAL was truncated at the fallback checkpoint, so the
        // recovered graph is the older checkpoint's state.
        assert_eq!(store.graph().num_nodes(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_snapshots_corrupt_is_a_typed_error() {
        let dir = tmp_dir("allbad");
        let store = PersistentStore::open(&dir, seed_graph).unwrap();
        drop(store);
        for (_, path) in list_snapshots(&dir).unwrap() {
            std::fs::write(&path, b"garbage").unwrap();
        }
        match PersistentStore::open(&dir, seed_graph) {
            Err(PersistError::NoValidSnapshot { attempts, .. }) => assert_eq!(attempts, 1),
            other => panic!("expected NoValidSnapshot, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_recovers_to_none() {
        let dir = tmp_dir("empty");
        assert!(recover(&dir).unwrap().is_none());
        assert!(recover(&dir.join("does-not-exist")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_rejects_sequence_gaps() {
        let g = seed_graph();
        let (g2, _) = g.apply_batch(&MutationBatch::new().add_node("author", "X"));
        let rec = WalRecord {
            seq: 1,
            parent_epoch: g2.epoch() + 100, // does not chain
            epoch: g2.epoch() + 101,
            batch: MutationBatch::new().add_node("author", "Y"),
        };
        assert!(matches!(
            replay_wal(g, &[rec]),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
