//! The epoch-versioned binary snapshot format.
//!
//! A snapshot captures one graph version — the flat CSR [`DataGraph`], and
//! optionally its [`PrestigeVector`] and [`InvertedIndex`] — as a single
//! file that loads back **bit-identically**: raw CSR arrays and IEEE-754
//! weight bit patterns are written verbatim and reassembled without
//! re-sorting or recomputation, so a loaded graph answers every query
//! exactly as the one that was written.
//!
//! ## Layout
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header (64 B): magic "BANKSDB0" | version | page_size |      |
//! |                epoch | record_count | reserved | header CRC  |
//! +--------------------------------------------------------------+
//! | record: tag | pad | payload_len | payload CRC | reserved     |
//! |         <pad zero bytes> <payload> <align-to-8 zeros>        |
//! +--------------------------------------------------------------+
//! | ... record_count records ...                                 |
//! +--------------------------------------------------------------+
//! ```
//!
//! Every record payload is guarded by a CRC-32; the CSR adjacency records
//! additionally start on a `page_size` boundary (the `pad` field), so the
//! bulk node/edge arrays sit page-aligned in the file and can be
//! memory-mapped or sliced zero-copy by readers that want to skip the
//! decode step.
//!
//! Snapshots are written atomically: the bytes go to a temporary file in
//! the same directory, are fsynced, and are renamed into place.

use std::path::Path;
use std::sync::Arc;

use banks_graph::{
    BackwardWeightPolicy, CsrAdjacency, DataGraph, EdgeKind, ExpansionPolicy, KindId, NodeId,
    NodeMeta, StorageParts, StorageRef,
};
use banks_prestige::PrestigeVector;
use banks_textindex::{InvertedIndex, Tokenizer};

use crate::bytes::{put_f64, put_f64_slice, put_str, put_u32, put_u32_slice, put_u64, Cursor};
use crate::crc::crc32;
use crate::error::{PersistError, Result};

/// Magic bytes opening every snapshot file (the `DB0` echoes the AFS ubik
/// database format this layout follows).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BANKSDB0";
/// Highest snapshot format version this build reads and the version it
/// writes.
pub const FORMAT_VERSION: u32 = 1;
/// Alignment of the CSR record payloads within the file.
pub const PAGE_SIZE: u32 = 4096;

const HEADER_LEN: usize = 64;
const RECORD_HEADER_LEN: usize = 24;

const TAG_KINDS: u32 = 1;
const TAG_META: u32 = 2;
const TAG_POLICY: u32 = 3;
const TAG_COUNTS: u32 = 4;
const TAG_CSR_OUT: u32 = 5;
const TAG_CSR_INC: u32 = 6;
const TAG_DEGREES: u32 = 7;
const TAG_PRESTIGE: u32 = 8;
const TAG_INDEX: u32 = 9;
/// Optional record: ids tombstoned by `RemoveNode`, sorted ascending.
/// Written only when non-empty, so pre-removal snapshots are byte-stable
/// and older files (which never contain the tag) keep decoding.
const TAG_TOMBSTONES: u32 = 10;

/// Everything a snapshot file holds: the graph (epoch restored) plus the
/// optional derived structures that were persisted alongside it.
#[derive(Clone, Debug)]
pub struct SnapshotContents {
    /// The reloaded graph, carrying the epoch it was written under.
    pub graph: DataGraph,
    /// The persisted prestige vector, if one was written.
    pub prestige: Option<PrestigeVector>,
    /// The persisted inverted index, if one was written.
    pub index: Option<InvertedIndex>,
}

// ----------------------------------------------------------------- encoding

/// Serializes a snapshot into bytes.  A graph carrying a copy-on-write
/// overlay is compacted first (O(V + E)); the caller's graph is untouched.
pub fn encode_snapshot(
    graph: &DataGraph,
    prestige: Option<&PrestigeVector>,
    index: Option<&InvertedIndex>,
) -> Vec<u8> {
    let flat;
    let graph = if graph.has_overlay() {
        flat = graph.compacted();
        &flat
    } else {
        graph
    };
    let parts = graph
        .flat_storage()
        .expect("compacted graph has flat storage");

    let mut records: Vec<(u32, Vec<u8>, bool)> = Vec::with_capacity(9);

    let mut kinds = Vec::new();
    put_u32(&mut kinds, parts.kinds.len() as u32);
    for k in parts.kinds {
        put_str(&mut kinds, k);
    }
    records.push((TAG_KINDS, kinds, false));

    let mut meta = Vec::new();
    put_u64(&mut meta, parts.meta.len() as u64);
    for m in parts.meta {
        meta.extend_from_slice(&(m.kind.0).to_le_bytes());
        put_str(&mut meta, &m.label);
    }
    records.push((TAG_META, meta, false));

    let mut policy = Vec::new();
    policy.push(parts.policy.add_backward_edges as u8);
    let (variant, param) = match parts.policy.backward_weight {
        BackwardWeightPolicy::IndegreeLog => (0u8, 0.0),
        BackwardWeightPolicy::Mirror => (1, 0.0),
        BackwardWeightPolicy::Constant(w) => (2, w),
        BackwardWeightPolicy::ScaledIndegreeLog(f) => (3, f),
    };
    policy.push(variant);
    put_f64(&mut policy, param);
    put_f64(&mut policy, parts.policy.default_forward_weight);
    records.push((TAG_POLICY, policy, false));

    let mut counts = Vec::new();
    put_u64(&mut counts, parts.num_original_edges as u64);
    put_u64(&mut counts, parts.num_directed_edges as u64);
    put_u64(&mut counts, parts.meta.len() as u64);
    put_u64(&mut counts, parts.kinds.len() as u64);
    records.push((TAG_COUNTS, counts, false));

    let mut degrees = Vec::new();
    put_u64(&mut degrees, parts.meta.len() as u64);
    put_u32_slice(&mut degrees, parts.forward_indegree);
    put_u32_slice(&mut degrees, parts.forward_outdegree);
    records.push((TAG_DEGREES, degrees, false));

    records.push((TAG_CSR_OUT, encode_csr(parts.out), true));
    records.push((TAG_CSR_INC, encode_csr(parts.inc), true));

    if !parts.tombstones.is_empty() {
        let mut buf = Vec::new();
        put_u64(&mut buf, parts.tombstones.len() as u64);
        put_u32_slice(&mut buf, parts.tombstones);
        records.push((TAG_TOMBSTONES, buf, false));
    }

    if let Some(p) = prestige {
        let mut buf = Vec::new();
        put_u64(&mut buf, p.len() as u64);
        put_f64_slice(&mut buf, p.values());
        records.push((TAG_PRESTIGE, buf, false));
    }
    if let Some(idx) = index {
        records.push((TAG_INDEX, encode_index(idx), false));
    }

    let mut out = header_bytes(parts, records.len() as u64);
    for (tag, payload, page_align) in records {
        append_record(&mut out, tag, &payload, page_align);
    }
    out
}

fn header_bytes(parts: StorageRef<'_>, record_count: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, PAGE_SIZE);
    put_u64(&mut out, parts.epoch);
    put_u64(&mut out, record_count);
    out.resize(HEADER_LEN - 4, 0);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn encode_csr(csr: &CsrAdjacency) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + csr.raw_offsets().len() * 4 + csr.num_edges() * 13);
    put_u64(&mut buf, csr.num_nodes() as u64);
    put_u64(&mut buf, csr.num_edges() as u64);
    put_u32_slice(&mut buf, csr.raw_offsets());
    put_u32_slice(&mut buf, csr.raw_targets());
    put_f64_slice(&mut buf, csr.raw_weights());
    buf.extend(csr.raw_kinds().iter().map(|k| k.is_backward() as u8));
    buf
}

fn encode_index(idx: &InvertedIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    let tok = idx.tokenizer();
    buf.push(tok.removes_stopwords() as u8);
    put_u32(&mut buf, tok.min_token_len() as u32);
    let mut stopwords: Vec<&str> = tok.stopwords().collect();
    stopwords.sort_unstable();
    put_u32(&mut buf, stopwords.len() as u32);
    for w in stopwords {
        put_str(&mut buf, w);
    }

    // Sort terms so identical indexes serialize to identical bytes,
    // regardless of hash-map iteration order.
    let mut terms: Vec<&str> = idx.terms().collect();
    terms.sort_unstable();
    put_u64(&mut buf, terms.len() as u64);
    for term in terms {
        put_str(&mut buf, term);
        let postings = idx.postings(term);
        put_u32(&mut buf, postings.len() as u32);
        for n in postings {
            put_u32(&mut buf, n.0);
        }
    }

    let mut kind_terms: Vec<(&str, &[KindId])> = idx.kind_terms().collect();
    kind_terms.sort_unstable_by_key(|(t, _)| *t);
    put_u32(&mut buf, kind_terms.len() as u32);
    for (term, kinds) in kind_terms {
        put_str(&mut buf, term);
        put_u32(&mut buf, kinds.len() as u32);
        for k in kinds {
            buf.extend_from_slice(&k.0.to_le_bytes());
        }
    }
    buf
}

fn append_record(out: &mut Vec<u8>, tag: u32, payload: &[u8], page_align: bool) {
    debug_assert_eq!(out.len() % 8, 0, "records start 8-aligned");
    let header_end = out.len() + RECORD_HEADER_LEN;
    let pad = if page_align {
        let page = PAGE_SIZE as usize;
        (page - header_end % page) % page
    } else {
        0
    };
    put_u32(out, tag);
    put_u32(out, pad as u32);
    put_u64(out, payload.len() as u64);
    put_u32(out, crc32(payload));
    put_u32(out, 0);
    out.resize(out.len() + pad, 0);
    out.extend_from_slice(payload);
    let aligned = out.len().div_ceil(8) * 8;
    out.resize(aligned, 0);
}

/// Writes a snapshot atomically (temp file + fsync + rename) and returns
/// the number of bytes written.
pub fn write_snapshot(
    path: &Path,
    graph: &DataGraph,
    prestige: Option<&PrestigeVector>,
    index: Option<&InvertedIndex>,
) -> Result<u64> {
    let bytes = encode_snapshot(graph, prestige, index);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    let f = std::fs::File::open(&tmp)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; not all filesystems support opening a
        // directory for sync, so failures here are non-fatal.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

// ----------------------------------------------------------------- decoding

/// Reads and decodes a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SnapshotContents> {
    decode_snapshot(&std::fs::read(path)?)
}

/// Decodes snapshot bytes.  Every corruption mode — wrong magic, future
/// format version, bit flips, truncation, inconsistent structure — yields
/// a typed [`PersistError`]; this function never panics on bad input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotContents> {
    let (epoch, record_count) = decode_header(bytes)?;

    let mut pos = HEADER_LEN;
    let mut payloads: Vec<(u32, &[u8])> = Vec::with_capacity(record_count as usize);
    for _ in 0..record_count {
        let rest = bytes.get(pos..).ok_or(PersistError::Truncated {
            offset: pos as u64,
            region: "record header",
        })?;
        let mut c = Cursor::new(rest, pos as u64);
        let tag = c.u32("record header")?;
        let pad = c.u32("record header")? as usize;
        let len = c.u64("record header")? as usize;
        let stored_crc = c.u32("record header")?;
        let _reserved = c.u32("record header")?;
        let payload_start = pos + RECORD_HEADER_LEN + pad;
        let payload_end = payload_start.saturating_add(len);
        if payload_end > bytes.len() {
            return Err(PersistError::Truncated {
                offset: pos as u64,
                region: "record payload",
            });
        }
        let payload = &bytes[payload_start..payload_end];
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(PersistError::ChecksumMismatch {
                region: "snapshot record",
                stored: stored_crc,
                computed,
            });
        }
        if payloads.iter().any(|(t, _)| *t == tag) {
            return Err(PersistError::Corrupt {
                detail: format!("duplicate record tag {tag}"),
            });
        }
        payloads.push((tag, payload));
        pos = payload_end.div_ceil(8) * 8;
    }

    let find = |tag: u32, name: &'static str| -> Result<&[u8]> {
        payloads
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| PersistError::Corrupt {
                detail: format!("missing required record: {name}"),
            })
    };

    // Kinds.
    let mut c = Cursor::new(find(TAG_KINDS, "kinds")?, 0);
    let kind_count = c.u32("kinds")? as usize;
    if kind_count > c.remaining() {
        return Err(PersistError::Corrupt {
            detail: format!("kind count {kind_count} exceeds record size"),
        });
    }
    let mut kinds = Vec::with_capacity(kind_count);
    for _ in 0..kind_count {
        kinds.push(c.string("kind name")?);
    }

    // Node metadata.
    let mut c = Cursor::new(find(TAG_META, "meta")?, 0);
    let node_count = c.count(3, "node meta")?;
    let mut meta = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let kind = KindId(c.u16("node kind")?);
        let label = c.string("node label")?;
        meta.push(NodeMeta { kind, label });
    }

    // Expansion policy.
    let mut c = Cursor::new(find(TAG_POLICY, "policy")?, 0);
    let add_backward_edges = c.u8("policy")? != 0;
    let variant = c.u8("policy")?;
    let param = c.f64("policy")?;
    let default_forward_weight = c.f64("policy")?;
    let backward_weight = match variant {
        0 => BackwardWeightPolicy::IndegreeLog,
        1 => BackwardWeightPolicy::Mirror,
        2 => BackwardWeightPolicy::Constant(param),
        3 => BackwardWeightPolicy::ScaledIndegreeLog(param),
        other => {
            return Err(PersistError::Corrupt {
                detail: format!("unknown backward-weight policy variant {other}"),
            });
        }
    };
    let policy = ExpansionPolicy {
        add_backward_edges,
        backward_weight,
        default_forward_weight,
    };

    // Counts.
    let mut c = Cursor::new(find(TAG_COUNTS, "counts")?, 0);
    let num_original_edges = c.u64("counts")? as usize;
    let num_directed_edges = c.u64("counts")? as usize;
    let counted_nodes = c.u64("counts")? as usize;
    let counted_kinds = c.u64("counts")? as usize;
    if counted_nodes != node_count || counted_kinds != kind_count {
        return Err(PersistError::Corrupt {
            detail: format!(
                "counts record disagrees: {counted_nodes}/{counted_kinds} vs \
                 {node_count} nodes / {kind_count} kinds"
            ),
        });
    }

    // Degrees.
    let mut c = Cursor::new(find(TAG_DEGREES, "degrees")?, 0);
    let degree_nodes = c.count(8, "degrees")?;
    if degree_nodes != node_count {
        return Err(PersistError::Corrupt {
            detail: format!("degree arrays cover {degree_nodes} nodes, expected {node_count}"),
        });
    }
    let forward_indegree = c.u32_vec(degree_nodes, "forward indegree")?;
    let forward_outdegree = c.u32_vec(degree_nodes, "forward outdegree")?;

    let out = decode_csr(find(TAG_CSR_OUT, "out adjacency")?)?;
    let inc = decode_csr(find(TAG_CSR_INC, "in adjacency")?)?;
    if out.num_edges() != num_directed_edges {
        return Err(PersistError::Corrupt {
            detail: format!(
                "out adjacency stores {} edges, counts record says {num_directed_edges}",
                out.num_edges()
            ),
        });
    }

    // Optional tombstone set (absent in snapshots written before
    // `RemoveNode` existed, and whenever no node was ever removed).
    let tombstones = match payloads.iter().find(|(t, _)| *t == TAG_TOMBSTONES) {
        None => Vec::new(),
        Some((_, p)) => {
            let mut c = Cursor::new(p, 0);
            let n = c.count(4, "tombstones")?;
            c.u32_vec(n, "tombstone ids")?
        }
    };

    let mut graph = DataGraph::from_storage_parts(StorageParts {
        kinds,
        meta,
        out,
        inc,
        forward_indegree,
        forward_outdegree,
        num_original_edges,
        policy,
        tombstones,
    })?;
    graph.restore_epoch(epoch);

    // Optional prestige.
    let prestige = match payloads.iter().find(|(t, _)| *t == TAG_PRESTIGE) {
        None => None,
        Some((_, p)) => {
            let mut c = Cursor::new(p, 0);
            let n = c.count(8, "prestige")?;
            let values = c.f64_vec(n, "prestige values")?;
            if values.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(PersistError::Corrupt {
                    detail: "prestige values must be finite and non-negative".to_string(),
                });
            }
            Some(PrestigeVector::from_values(values))
        }
    };

    // Optional inverted index.
    let index = match payloads.iter().find(|(t, _)| *t == TAG_INDEX) {
        None => None,
        Some((_, p)) => Some(decode_index(p)?),
    };

    Ok(SnapshotContents {
        graph,
        prestige,
        index,
    })
}

/// Validates the fixed header and returns `(epoch, record_count)`.
pub fn decode_header(bytes: &[u8]) -> Result<(u64, u64)> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated {
            offset: 0,
            region: "snapshot header",
        });
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            found: bytes[..8].to_vec(),
            expected: SNAPSHOT_MAGIC,
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
    let computed = crc32(&bytes[..HEADER_LEN - 4]);
    if computed != stored_crc {
        return Err(PersistError::ChecksumMismatch {
            region: "snapshot header",
            stored: stored_crc,
            computed,
        });
    }
    let mut c = Cursor::new(&bytes[8..HEADER_LEN - 4], 8);
    let version = c.u32("header version")?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let _page_size = c.u32("header page size")?;
    let epoch = c.u64("header epoch")?;
    let record_count = c.u64("header record count")?;
    if record_count > (bytes.len() / RECORD_HEADER_LEN) as u64 {
        return Err(PersistError::Corrupt {
            detail: format!("record count {record_count} exceeds file capacity"),
        });
    }
    Ok((epoch, record_count))
}

fn decode_csr(payload: &[u8]) -> Result<CsrAdjacency> {
    let mut c = Cursor::new(payload, 0);
    let num_nodes = c.u64("csr node count")? as usize;
    let num_edges = c.u64("csr edge count")? as usize;
    let offset_len = num_nodes
        .checked_add(1)
        .ok_or_else(|| PersistError::Corrupt {
            detail: "csr node count overflows".to_string(),
        })?;
    if offset_len
        .checked_mul(4)
        .zip(num_edges.checked_mul(13))
        .is_none_or(|(o, e)| o.saturating_add(e) > c.remaining())
    {
        return Err(PersistError::Corrupt {
            detail: format!("csr arrays for {num_nodes} nodes / {num_edges} edges exceed record"),
        });
    }
    let offsets = c.u32_vec(offset_len, "csr offsets")?;
    let targets = c.u32_vec(num_edges, "csr targets")?;
    let weights = c.f64_vec(num_edges, "csr weights")?;
    let raw_kinds = c.take(num_edges, "csr kinds")?;
    let mut kinds = Vec::with_capacity(num_edges);
    for &k in raw_kinds {
        kinds.push(match k {
            0 => EdgeKind::Forward,
            1 => EdgeKind::Backward,
            other => {
                return Err(PersistError::Corrupt {
                    detail: format!("invalid edge kind byte {other}"),
                });
            }
        });
    }
    Ok(CsrAdjacency::from_raw_parts(
        offsets, targets, weights, kinds,
    )?)
}

fn decode_index(payload: &[u8]) -> Result<InvertedIndex> {
    let mut c = Cursor::new(payload, 0);
    let removes = c.u8("tokenizer")? != 0;
    let min_len = c.u32("tokenizer")? as usize;
    let stop_count = c.u32("tokenizer")? as usize;
    if stop_count > c.remaining() {
        return Err(PersistError::Corrupt {
            detail: format!("stopword count {stop_count} exceeds record"),
        });
    }
    let mut stopwords = Vec::with_capacity(stop_count);
    for _ in 0..stop_count {
        stopwords.push(c.string("stopword")?);
    }
    let tokenizer = Tokenizer::new()
        .with_stopwords(stopwords)
        .with_stopword_removal(removes)
        .with_min_token_len(min_len);

    let term_count = c.count(5, "index terms")?;
    let mut postings = Vec::with_capacity(term_count);
    for _ in 0..term_count {
        let term = c.string("index term")?;
        let n = c.u32("posting count")? as usize;
        if n.checked_mul(4).is_none_or(|b| b > c.remaining()) {
            return Err(PersistError::Corrupt {
                detail: format!("posting list of {n} nodes exceeds record"),
            });
        }
        let nodes = c.u32_vec(n, "postings")?.into_iter().map(NodeId).collect();
        postings.push((term, nodes));
    }

    let kt_count = c.u32("kind terms")? as usize;
    if kt_count > c.remaining() {
        return Err(PersistError::Corrupt {
            detail: format!("kind-term count {kt_count} exceeds record"),
        });
    }
    let mut kind_terms = Vec::with_capacity(kt_count);
    for _ in 0..kt_count {
        let term = c.string("kind term")?;
        let n = c.u32("kind count")? as usize;
        if n.checked_mul(2).is_none_or(|b| b > c.remaining()) {
            return Err(PersistError::Corrupt {
                detail: format!("kind list of {n} ids exceeds record"),
            });
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(KindId(c.u16("kind id")?));
        }
        kind_terms.push((term, ids));
    }

    Ok(InvertedIndex::from_raw_parts(
        tokenizer, postings, kind_terms,
    ))
}

/// Convenience: `Arc`s the decoded contents for cheap sharing.
pub fn read_snapshot_arc(path: &Path) -> Result<Arc<SnapshotContents>> {
    Ok(Arc::new(read_snapshot(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::{GraphBuilder, MutationBatch};
    use banks_textindex::IndexBuilder;

    fn sample_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("author", "David Fernandez");
        let a2 = b.add_node("author", "Maria Sanchez");
        let p1 = b.add_node("paper", "Keyword search on graphs");
        let p2 = b.add_node("paper", "Bidirectional expansion");
        let c1 = b.add_node("conference", "VLDB 2005");
        b.add_edge(p1, a1).unwrap();
        b.add_edge(p1, a2).unwrap();
        b.add_edge(p2, a2).unwrap();
        b.add_edge_weighted(p1, c1, 2.0).unwrap();
        b.add_edge_weighted(p2, c1, 2.0).unwrap();
        b.build_default()
    }

    fn sample_index(g: &DataGraph) -> InvertedIndex {
        let mut ib = IndexBuilder::with_default_tokenizer();
        for n in g.nodes() {
            ib.add_text(n, g.node_label(n));
        }
        for i in 0..g.num_kinds() {
            let kind = KindId::from_index(i);
            ib.add_relation_name(g.kind_name(kind), kind);
        }
        ib.build()
    }

    fn assert_graphs_bit_identical(a: &DataGraph, b: &DataGraph) {
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_kinds(), b.num_kinds());
        assert_eq!(a.num_original_edges(), b.num_original_edges());
        assert_eq!(a.num_directed_edges(), b.num_directed_edges());
        assert_eq!(a.policy(), b.policy());
        for u in a.nodes() {
            assert_eq!(a.node_label(u), b.node_label(u));
            assert_eq!(a.node_kind_name(u), b.node_kind_name(u));
            assert_eq!(a.forward_indegree(u), b.forward_indegree(u));
            assert_eq!(a.forward_outdegree(u), b.forward_outdegree(u));
            let ra: Vec<_> = a
                .out_edges(u)
                .map(|e| (e.to.0, e.weight.to_bits(), e.kind))
                .collect();
            let rb: Vec<_> = b
                .out_edges(u)
                .map(|e| (e.to.0, e.weight.to_bits(), e.kind))
                .collect();
            assert_eq!(ra, rb, "out row of {u:?}");
            let ia: Vec<_> = a
                .in_edges(u)
                .map(|e| (e.from.0, e.weight.to_bits(), e.kind))
                .collect();
            let ib: Vec<_> = b
                .in_edges(u)
                .map(|e| (e.from.0, e.weight.to_bits(), e.kind))
                .collect();
            assert_eq!(ia, ib, "in row of {u:?}");
        }
    }

    #[test]
    fn graph_round_trips_bit_identically() {
        let g = sample_graph();
        let decoded = decode_snapshot(&encode_snapshot(&g, None, None)).unwrap();
        assert_graphs_bit_identical(&g, &decoded.graph);
        assert!(decoded.prestige.is_none());
        assert!(decoded.index.is_none());
    }

    #[test]
    fn mutated_graph_is_compacted_and_round_trips() {
        let g = sample_graph();
        let (g2, _) = g.apply_batch(
            &MutationBatch::new()
                .add_node("author", "New Author")
                .add_edge(NodeId(3), NodeId(5))
                .set_label(NodeId(0), "Renamed"),
        );
        assert!(g2.has_overlay());
        let decoded = decode_snapshot(&encode_snapshot(&g2, None, None)).unwrap();
        assert!(!decoded.graph.has_overlay());
        assert_graphs_bit_identical(&g2.compacted(), &decoded.graph);
    }

    #[test]
    fn tombstoned_graph_round_trips_with_the_optional_record() {
        let g = sample_graph();
        let (g2, outcome) = g.apply_batch(&MutationBatch::new().remove_node(NodeId(1)));
        assert!(outcome.results[0].is_ok());
        let bytes = encode_snapshot(&g2, None, None);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert!(decoded.graph.is_tombstoned(NodeId(1)));
        assert_eq!(decoded.graph.tombstoned_nodes(), vec![1]);
        assert_graphs_bit_identical(&g2.compacted(), &decoded.graph);
        // A mutation against the dead id is still rejected after reload.
        let (_, outcome) = decoded
            .graph
            .apply_batch(&MutationBatch::new().set_label(NodeId(1), "x"));
        assert!(outcome.results[0].is_err());

        // A graph with no tombstones must not grow the extra record: the
        // byte stream is unchanged from pre-RemoveNode builds.
        let plain = sample_graph();
        let (before, record_count) = decode_header(&encode_snapshot(&plain, None, None)).unwrap();
        let _ = before;
        assert_eq!(record_count, 7, "no TAG_TOMBSTONES record when empty");
    }

    #[test]
    fn prestige_and_index_round_trip() {
        let g = sample_graph();
        let prestige = PrestigeVector::from_values(vec![0.5, 0.25, 0.125, 0.0625, 0.0625]);
        let index = sample_index(&g);
        let decoded = decode_snapshot(&encode_snapshot(&g, Some(&prestige), Some(&index))).unwrap();
        let dp = decoded.prestige.expect("prestige persisted");
        assert_eq!(dp.values(), prestige.values());
        let di = decoded.index.expect("index persisted");
        assert_eq!(di.num_terms(), index.num_terms());
        for term in index.terms() {
            assert_eq!(di.postings(term), index.postings(term), "term {term}");
        }
        for (term, kinds) in index.kind_terms() {
            assert_eq!(di.kinds_for_term(term), kinds, "kind term {term}");
        }
        let tok = di.tokenizer();
        assert_eq!(
            tok.removes_stopwords(),
            index.tokenizer().removes_stopwords()
        );
        assert_eq!(tok.min_token_len(), index.tokenizer().min_token_len());
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = sample_graph();
        let index = sample_index(&g);
        let a = encode_snapshot(&g, None, Some(&index));
        let b = encode_snapshot(&g, None, Some(&index));
        assert_eq!(a, b, "same contents, same bytes");
    }

    #[test]
    fn csr_payloads_are_page_aligned() {
        let g = sample_graph();
        let bytes = encode_snapshot(&g, None, None);
        // Walk the records and check the CSR payload offsets.
        let (_, record_count) = decode_header(&bytes).unwrap();
        let mut pos = HEADER_LEN;
        let mut seen_csr = 0;
        for _ in 0..record_count {
            let mut c = Cursor::new(&bytes[pos..], pos as u64);
            let tag = c.u32("t").unwrap();
            let pad = c.u32("t").unwrap() as usize;
            let len = c.u64("t").unwrap() as usize;
            let payload_start = pos + RECORD_HEADER_LEN + pad;
            if tag == TAG_CSR_OUT || tag == TAG_CSR_INC {
                assert_eq!(
                    payload_start % PAGE_SIZE as usize,
                    0,
                    "CSR payload must be page aligned"
                );
                seen_csr += 1;
            }
            pos = (payload_start + len).div_ceil(8) * 8;
        }
        assert_eq!(seen_csr, 2);
    }

    #[test]
    fn epoch_survives_and_advances_the_counter() {
        let g = sample_graph();
        let epoch = g.epoch();
        let decoded = decode_snapshot(&encode_snapshot(&g, None, None)).unwrap();
        assert_eq!(decoded.graph.epoch(), epoch);
        // New graphs constructed afterwards must not collide.
        let fresh = sample_graph();
        assert!(fresh.epoch() > epoch);
    }

    #[test]
    fn bad_magic_is_typed() {
        let g = sample_graph();
        let mut bytes = encode_snapshot(&g, None, None);
        bytes[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_format_version_is_typed() {
        let g = sample_graph();
        let mut bytes = encode_snapshot(&g, None, None);
        bytes[8] = 99; // version field
                       // Header CRC must be fixed up so the version check is what fires.
        let crc = crc32(&bytes[..HEADER_LEN - 4]);
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(PersistError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn bit_flips_anywhere_never_panic() {
        let g = sample_graph();
        let prestige = PrestigeVector::uniform_for(&g);
        let index = sample_index(&g);
        let bytes = encode_snapshot(&g, Some(&prestige), Some(&index));
        // Flip one bit in every byte position; decode must return Ok (the
        // flip may cancel out in padding) or a typed error — never panic.
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            let _ = decode_snapshot(&corrupted);
        }
    }

    #[test]
    fn truncation_anywhere_never_panics() {
        let g = sample_graph();
        let bytes = encode_snapshot(&g, None, None);
        // Cuts inside the final trailing alignment padding (< 8 bytes) may
        // still parse — no payload was lost; any deeper cut must fail.
        for cut in (0..bytes.len()).step_by(7) {
            match decode_snapshot(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) if cut + 8 > bytes.len() => {}
                Ok(_) => panic!(
                    "a {cut}-byte prefix of a {}-byte snapshot parsed",
                    bytes.len()
                ),
            }
        }
    }

    #[test]
    fn write_and_read_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("banks-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        let g = sample_graph();
        let written = write_snapshot(&path, &g, None, None).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let loaded = read_snapshot(&path).unwrap();
        assert_graphs_bit_identical(&g, &loaded.graph);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
