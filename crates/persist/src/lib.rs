//! # banks-persist
//!
//! Durable persistence for BANKS graphs: epoch-versioned binary
//! **snapshots**, a mutation **write-ahead log**, and the **crash
//! recovery** protocol that stitches them back together.
//!
//! The paper's engines all search one immutable graph version; PR 5 made
//! versions cheap to produce (copy-on-write mutation batches, each minting
//! a fresh epoch).  This crate makes them survive the process:
//!
//! - [`snapshot`] — a checksummed, tagged-record binary format that
//!   serializes the flat CSR arrays **verbatim** (weights as raw IEEE-754
//!   bit patterns, rows in their canonical order), so a loaded graph is
//!   bit-identical to the written one and every engine answers queries
//!   identically.  CSR payloads are page-aligned within the file.
//! - [`wal`] — an append-only log of accepted mutation batches, written
//!   *before* the in-memory snapshot pointer swings, with a configurable
//!   [`FsyncPolicy`].  A torn final record (the signature of a crash) is
//!   detected by CRC and dropped, never replayed and never fatal.
//! - [`store`] — [`PersistentStore`] ties the two together: WAL-first
//!   apply, automatic rotation, [`checkpoint`](PersistentStore::checkpoint)
//!   (fresh snapshot + WAL truncation + pruning), and
//!   [`recover`]/[`replay_wal`] for boot.
//!
//! Everything decodes defensively: corrupt input yields a typed
//! [`PersistError`], never a panic, and recovery falls back past corrupt
//! snapshot files to the newest loadable one.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytes;
pub mod crc;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{PersistError, Result};
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, SnapshotContents,
    FORMAT_VERSION, PAGE_SIZE, SNAPSHOT_MAGIC,
};
pub use store::{
    list_snapshots, recover, replay_wal, snapshot_file_name, BootSource, PersistOptions,
    PersistentStore, Recovery, SNAPSHOT_EXT, SNAPSHOT_PREFIX, WAL_FILE,
};
pub use wal::{
    decode_record, encode_record, read_strict, scan_bytes, scan_file, FsyncPolicy, Wal, WalRecord,
    WalScan, WAL_MAGIC, WAL_VERSION,
};
