//! Typed errors for the persistence layer.
//!
//! Corrupt on-disk state must never panic a loader: every failure mode —
//! bad magic, unsupported format, checksum mismatch, torn record,
//! truncated file — maps to a [`PersistError`] variant, so recovery code
//! can distinguish "fall back to the previous snapshot" from "the disk is
//! broken".

use std::fmt;
use std::io;

use banks_graph::GraphError;

/// Errors produced while writing, reading or recovering persistent state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the expected magic bytes — it is not a
    /// BANKS snapshot / WAL (or the header was overwritten).
    BadMagic {
        /// What the file actually started with.
        found: Vec<u8>,
        /// The magic the format requires.
        expected: &'static [u8],
    },
    /// The file carries a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// A checksum did not match its payload: the region was bit-flipped or
    /// partially overwritten.
    ChecksumMismatch {
        /// Which region failed (e.g. `"snapshot header"`, `"wal record"`).
        region: &'static str,
        /// The checksum stored on disk.
        stored: u32,
        /// The checksum computed over the bytes actually read.
        computed: u32,
    },
    /// A record or header extends past the end of the file — the classic
    /// torn final write of a crashed process.
    Truncated {
        /// Byte offset at which the incomplete region starts.
        offset: u64,
        /// What was being read.
        region: &'static str,
    },
    /// The bytes parsed but describe an internally inconsistent structure.
    Corrupt {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A directory holds snapshot files but none of them could be loaded.
    NoValidSnapshot {
        /// How many snapshot files were tried.
        attempts: usize,
        /// The error from the newest candidate.
        last_error: String,
    },
    /// Decoded data violated a `banks-graph` invariant during reassembly.
    Graph(GraphError),
    /// The operation requires persistence, but none is configured.
    Disabled,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:?}, expected {:?}",
                String::from_utf8_lossy(expected)
            ),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            PersistError::ChecksumMismatch {
                region,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {region}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Truncated { offset, region } => {
                write!(f, "file truncated at byte {offset} while reading {region}")
            }
            PersistError::Corrupt { detail } => write!(f, "corrupt data: {detail}"),
            PersistError::NoValidSnapshot {
                attempts,
                last_error,
            } => write!(
                f,
                "no valid snapshot among {attempts} candidate(s); newest failed with: {last_error}"
            ),
            PersistError::Graph(e) => write!(f, "graph reassembly failed: {e}"),
            PersistError::Disabled => write!(f, "persistence is not enabled"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<GraphError> for PersistError {
    fn from(e: GraphError) -> Self {
        PersistError::Graph(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PersistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = PersistError::BadMagic {
            found: b"NOTBANKS".to_vec(),
            expected: b"BANKSDB0",
        };
        assert!(e.to_string().contains("BANKSDB0"));

        let e = PersistError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('1'));

        let e = PersistError::ChecksumMismatch {
            region: "wal record",
            stored: 0xdead,
            computed: 0xbeef,
        };
        assert!(e.to_string().contains("wal record"));

        let e = PersistError::Truncated {
            offset: 1234,
            region: "record header",
        };
        assert!(e.to_string().contains("1234"));

        let e = PersistError::Disabled;
        assert!(e.to_string().contains("not enabled"));
    }

    #[test]
    fn io_and_graph_errors_convert() {
        let io_err: PersistError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io_err, PersistError::Io(_)));
        let g: PersistError = GraphError::TooManyKinds.into();
        assert!(matches!(g, PersistError::Graph(_)));
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&io_err);
    }
}
