//! Bounds-checked little-endian encoding helpers shared by the snapshot
//! and WAL formats.
//!
//! Every read is validated against the remaining input and fails with
//! [`PersistError::Corrupt`] / [`PersistError::Truncated`] instead of
//! panicking — the bytes come off disks that crashed mid-write.

use crate::error::{PersistError, Result};

// ------------------------------------------------------------------ writing

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw IEEE-754 bit pattern (bit-exact round trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string (`len: u32` + bytes).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a `[u32]` slice verbatim (little-endian elements).
pub fn put_u32_slice(buf: &mut Vec<u8>, vs: &[u32]) {
    buf.reserve(vs.len() * 4);
    for &v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends an `[f64]` slice as raw bit patterns.
pub fn put_f64_slice(buf: &mut Vec<u8>, vs: &[f64]) {
    buf.reserve(vs.len() * 8);
    for &v in vs {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

// ------------------------------------------------------------------ reading

/// Bounds-checked little-endian cursor over a byte slice.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Offset of `bytes[0]` within the containing file, for error messages.
    base_offset: u64,
}

impl<'a> Cursor<'a> {
    /// Wraps a slice whose first byte sits at `base_offset` in the file.
    pub fn new(bytes: &'a [u8], base_offset: u64) -> Self {
        Cursor {
            bytes,
            pos: 0,
            base_offset,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Absolute file offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base_offset + self.pos as u64
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize, region: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                offset: self.offset(),
                region,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, region: &'static str) -> Result<u8> {
        Ok(self.take(1, region)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, region: &'static str) -> Result<u16> {
        let b = self.take(2, region)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, region: &'static str) -> Result<u32> {
        let b = self.take(4, region)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, region: &'static str) -> Result<u64> {
        let b = self.take(8, region)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, region: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(region)?))
    }

    /// Reads a `u64` and validates it as an element count: `count * width`
    /// must fit in the remaining input, which bounds allocations by the
    /// file size no matter what a corrupt header claims.
    pub fn count(&mut self, width: usize, region: &'static str) -> Result<usize> {
        let count = self.u64(region)? as usize;
        if count
            .checked_mul(width)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(PersistError::Corrupt {
                detail: format!(
                    "{region}: count {count} x {width} bytes exceeds the {} bytes left",
                    self.remaining()
                ),
            });
        }
        Ok(count)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, region: &'static str) -> Result<String> {
        let len = self.u32(region)? as usize;
        if len > self.remaining() {
            return Err(PersistError::Truncated {
                offset: self.offset(),
                region,
            });
        }
        let bytes = self.take(len, region)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| PersistError::Corrupt {
            detail: format!("{region}: invalid UTF-8: {e}"),
        })
    }

    /// Reads `n` little-endian `u32`s.
    pub fn u32_vec(&mut self, n: usize, region: &'static str) -> Result<Vec<u32>> {
        let raw = self.take(n * 4, region)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Reads `n` `f64` bit patterns.
    pub fn f64_vec(&mut self, n: usize, region: &'static str) -> Result<Vec<f64>> {
        let raw = self.take(n * 8, region)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_slices() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, 0.1 + 0.2);
        put_str(&mut buf, "BANKS");
        put_u32_slice(&mut buf, &[1, 2, 3]);
        put_f64_slice(&mut buf, &[1.5, -2.5]);

        let mut c = Cursor::new(&buf, 0);
        assert_eq!(c.u32("t").unwrap(), 7);
        assert_eq!(c.u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(c.f64("t").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(c.string("t").unwrap(), "BANKS");
        assert_eq!(c.u32_vec(3, "t").unwrap(), vec![1, 2, 3]);
        assert_eq!(c.f64_vec(2, "t").unwrap(), vec![1.5, -2.5]);
        assert!(c.is_done());
    }

    #[test]
    fn truncated_reads_are_typed() {
        let mut c = Cursor::new(&[1, 2], 100);
        assert!(matches!(
            c.u32("header"),
            Err(PersistError::Truncated { offset: 100, .. })
        ));
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX / 2);
        let mut c = Cursor::new(&buf, 0);
        assert!(matches!(
            c.count(8, "postings"),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_utf8_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut c = Cursor::new(&buf, 0);
        assert!(matches!(
            c.string("label"),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
