//! The mutation write-ahead log.
//!
//! Every accepted [`MutationBatch`] is appended here **before** the
//! in-memory snapshot pointer swings to the new graph version, so a crash
//! at any point leaves the log a superset of the served state.  On boot
//! the WAL suffix newer than the latest snapshot is replayed through
//! `DataGraph::apply_batch`, arriving at exactly the pre-crash graph.
//!
//! ## Layout
//!
//! ```text
//! +------------------------------------------------+
//! | header (16 B): magic "BANKSWAL" | version | CRC |
//! +------------------------------------------------+
//! | record: len | CRC | seq | parent_epoch | epoch |
//! |         <encode_batch payload>                 |
//! +------------------------------------------------+
//! | ... appended until rotation ...                |
//! +------------------------------------------------+
//! ```
//!
//! The record CRC covers everything after the `len`/`CRC` pair — sequence
//! number, epochs and the serialized batch — so a torn or bit-flipped tail
//! is detected and everything before it is still replayable.  Scanning is
//! deliberately lenient: the first bad record ends the scan (it is almost
//! always the torn final write of a crash) and [`WalScan::valid_bytes`]
//! tells the caller where to truncate before appending resumes.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use banks_graph::{decode_batch, encode_batch, MutationBatch};

use crate::bytes::{put_u32, put_u64, Cursor};
use crate::crc::crc32;
use crate::error::{PersistError, Result};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"BANKSWAL";
/// WAL format version written and read by this build.
pub const WAL_VERSION: u32 = 1;

const WAL_HEADER_LEN: usize = 16;
const WAL_RECORD_HEADER_LEN: usize = 32;

/// When the operating-system write buffer is flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record — full durability, slowest.
    Always,
    /// `fsync` every `n` records (and on checkpoint/rotation).  A crash can
    /// lose at most the last `n - 1` acknowledged batches.
    EveryN(u32),
    /// Never `fsync` explicitly; rely on the OS flushing on its own
    /// schedule.  Fastest, weakest.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

/// One logical WAL entry: the batch a service accepted, plus the epochs it
/// moved the graph between.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number within this WAL file (starts at 1).
    pub seq: u64,
    /// Epoch of the graph version the batch was applied to.
    pub parent_epoch: u64,
    /// Epoch of the graph version the batch produced.
    pub epoch: u64,
    /// The mutation batch itself.
    pub batch: MutationBatch,
}

/// Result of leniently scanning a WAL file.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Records that passed CRC and decode checks, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header plus intact records).
    /// Appending must resume here; anything after is a torn tail.
    pub valid_bytes: u64,
    /// Why the scan stopped early, if it did not reach a clean EOF.
    pub anomaly: Option<String>,
}

/// Encodes one WAL record — the `len`/`CRC` framing plus sequence number,
/// epochs and the serialized batch — exactly as [`Wal::append`] writes it
/// to disk.  Public so the replication stream can ship verbatim record
/// bytes to followers, who re-verify the CRC with [`decode_record`].
pub fn encode_record(seq: u64, parent_epoch: u64, epoch: u64, batch: &MutationBatch) -> Vec<u8> {
    let payload = encode_batch(batch);
    let mut body = Vec::with_capacity(24 + payload.len());
    put_u64(&mut body, seq);
    put_u64(&mut body, parent_epoch);
    put_u64(&mut body, epoch);
    body.extend_from_slice(&payload);
    let mut rec = Vec::with_capacity(8 + body.len());
    put_u32(&mut rec, body.len() as u32);
    put_u32(&mut rec, crc32(&body));
    rec.extend_from_slice(&body);
    rec
}

/// Decodes exactly one record produced by [`encode_record`], re-verifying
/// the CRC, and returns it with the number of bytes consumed.  Strict:
/// truncation, checksum mismatches and undecodable batches are typed
/// errors — a replication follower must reject a damaged shipment rather
/// than truncate-and-continue like the local crash-recovery scan does.
pub fn decode_record(bytes: &[u8]) -> Result<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return Err(PersistError::Truncated {
            offset: 0,
            region: "wal record framing",
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len < WAL_RECORD_HEADER_LEN - 8 {
        return Err(PersistError::Corrupt {
            detail: format!("wal record body of {len} bytes is too short"),
        });
    }
    let body_end = 8usize
        .checked_add(len)
        .filter(|e| *e <= bytes.len())
        .ok_or(PersistError::Truncated {
            offset: 8,
            region: "wal record body",
        })?;
    let body = &bytes[8..body_end];
    let computed = crc32(body);
    if computed != stored {
        return Err(PersistError::ChecksumMismatch {
            region: "wal record",
            stored,
            computed,
        });
    }
    let mut c = Cursor::new(body, 8);
    let seq = c.u64("wal seq")?;
    let parent_epoch = c.u64("wal parent epoch")?;
    let epoch = c.u64("wal epoch")?;
    let batch =
        decode_batch(c.take(c.remaining(), "wal payload")?).map_err(|e| PersistError::Corrupt {
            detail: format!("undecodable batch in wal record {seq}: {e}"),
        })?;
    Ok((
        WalRecord {
            seq,
            parent_epoch,
            epoch,
            batch,
        },
        body_end,
    ))
}

fn header() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    let crc = crc32(&h[..12]);
    h[12..].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Leniently scans WAL bytes: returns every intact record and the length
/// of the valid prefix.  A torn or corrupt tail sets [`WalScan::anomaly`]
/// instead of failing — that is the expected post-crash state.
///
/// Only structural header problems (wrong magic, future version, flipped
/// header bits) are hard errors: they mean the file is not a WAL at all.
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(PersistError::Truncated {
            offset: 0,
            region: "wal header",
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(PersistError::BadMagic {
            found: bytes[..8].to_vec(),
            expected: WAL_MAGIC,
        });
    }
    let stored = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let computed = crc32(&bytes[..12]);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            region: "wal header",
            stored,
            computed,
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }

    let mut scan = WalScan {
        valid_bytes: WAL_HEADER_LEN as u64,
        ..WalScan::default()
    };
    let mut pos = WAL_HEADER_LEN;
    let mut expected_seq = 1u64;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            scan.anomaly = Some(format!("torn record header at byte {pos}"));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len) {
            Some(e) if e <= bytes.len() => e,
            _ => {
                scan.anomaly = Some(format!(
                    "torn record at byte {pos}: {len}-byte body extends past EOF"
                ));
                break;
            }
        };
        if len < WAL_RECORD_HEADER_LEN - 8 {
            scan.anomaly = Some(format!("record at byte {pos} too short ({len} bytes)"));
            break;
        }
        let body = &bytes[body_start..body_end];
        let computed = crc32(body);
        if computed != stored_crc {
            scan.anomaly = Some(format!(
                "checksum mismatch at byte {pos}: stored {stored_crc:#010x}, \
                 computed {computed:#010x}"
            ));
            break;
        }
        let mut c = Cursor::new(body, body_start as u64);
        let seq = c.u64("wal seq")?;
        let parent_epoch = c.u64("wal parent epoch")?;
        let epoch = c.u64("wal epoch")?;
        let batch = match decode_batch(c.take(c.remaining(), "wal payload")?) {
            Ok(b) => b,
            Err(e) => {
                scan.anomaly = Some(format!("undecodable batch at byte {pos}: {e}"));
                break;
            }
        };
        if seq != expected_seq {
            scan.anomaly = Some(format!(
                "sequence gap at byte {pos}: found {seq}, expected {expected_seq}"
            ));
            break;
        }
        expected_seq += 1;
        scan.records.push(WalRecord {
            seq,
            parent_epoch,
            epoch,
            batch,
        });
        pos = body_end;
        scan.valid_bytes = pos as u64;
    }
    Ok(scan)
}

/// Leniently scans a WAL file on disk.  A missing file is an empty scan,
/// not an error — a fresh data directory simply has no WAL yet.
pub fn scan_file(path: &Path) -> Result<WalScan> {
    match std::fs::read(path) {
        Ok(bytes) => scan_bytes(&bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WalScan::default()),
        Err(e) => Err(e.into()),
    }
}

/// Strictly reads a WAL file: any anomaly (torn tail included) becomes a
/// typed error.  Used by tests and integrity checks; recovery paths want
/// [`scan_file`].
pub fn read_strict(path: &Path) -> Result<Vec<WalRecord>> {
    let scan = scan_file(path)?;
    match scan.anomaly {
        None => Ok(scan.records),
        Some(detail) => Err(PersistError::Corrupt { detail }),
    }
}

/// An open, append-only WAL file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    fsync: FsyncPolicy,
    /// Records appended since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    next_seq: u64,
    records: u64,
    bytes: u64,
    /// Latency distribution of the `sync_data` calls this WAL has issued.
    fsync_hist: banks_obs::Histogram,
    /// Count of `sync_data` calls issued since the WAL was opened.
    syncs: u64,
    /// Duration of the most recent `sync_data`, in microseconds.
    last_sync_us: u64,
}

impl Wal {
    /// Creates a fresh, empty WAL at `path`, truncating whatever was there.
    pub fn create(path: &Path, fsync: FsyncPolicy) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&header())?;
        file.sync_all()?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            fsync,
            unsynced: 0,
            next_seq: 1,
            records: 0,
            bytes: WAL_HEADER_LEN as u64,
            fsync_hist: banks_obs::Histogram::new(),
            syncs: 0,
            last_sync_us: 0,
        })
    }

    /// Opens an existing WAL for appending after a recovery scan,
    /// truncating any torn tail past `scan.valid_bytes`.  Creates the file
    /// if it does not exist.
    pub fn open_after_scan(path: &Path, fsync: FsyncPolicy, scan: &WalScan) -> Result<Wal> {
        if scan.valid_bytes == 0 {
            // No file (or nothing valid): start fresh.
            return Wal::create(path, fsync);
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_bytes)?;
        file.sync_all()?;
        let mut wal = Wal {
            path: path.to_path_buf(),
            file,
            fsync,
            unsynced: 0,
            next_seq: scan.records.last().map_or(1, |r| r.seq + 1),
            records: scan.records.len() as u64,
            bytes: scan.valid_bytes,
            fsync_hist: banks_obs::Histogram::new(),
            syncs: 0,
            last_sync_us: 0,
        };
        // Position at the end of the valid prefix.
        use std::io::Seek;
        wal.file.seek(std::io::SeekFrom::Start(scan.valid_bytes))?;
        Ok(wal)
    }

    /// Appends one accepted batch and applies the fsync policy.  Returns
    /// the record's sequence number.  On error the in-memory counters are
    /// untouched; the caller must treat the mutation as not durable.
    pub fn append(&mut self, parent_epoch: u64, epoch: u64, batch: &MutationBatch) -> Result<u64> {
        let seq = self.next_seq;
        let rec = encode_record(seq, parent_epoch, epoch, batch);
        self.file.write_all(&rec)?;
        match self.fsync {
            FsyncPolicy::Always => self.timed_sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.timed_sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.next_seq += 1;
        self.records += 1;
        self.bytes += rec.len() as u64;
        Ok(seq)
    }

    /// Forces any buffered records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.timed_sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// `sync_data` with its latency recorded into the fsync histogram.
    fn timed_sync_data(&mut self) -> Result<()> {
        let started = std::time::Instant::now();
        self.file.sync_data()?;
        let elapsed = started.elapsed();
        self.fsync_hist.record(elapsed);
        self.syncs += 1;
        self.last_sync_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        Ok(())
    }

    /// Truncates the log back to an empty header — called after a
    /// checkpoint makes every logged record redundant.
    pub fn reset(&mut self) -> Result<()> {
        use std::io::Seek;
        self.file.set_len(0)?;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        self.file.write_all(&header())?;
        self.file.sync_all()?;
        self.unsynced = 0;
        self.next_seq = 1;
        self.records = 0;
        self.bytes = WAL_HEADER_LEN as u64;
        Ok(())
    }

    /// Number of records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Size of the log in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Latency summary of every fsync this WAL has issued since it was
    /// opened (the distribution is in-memory only; it restarts empty).
    pub fn fsync_latency(&self) -> banks_obs::LatencySummary {
        self.fsync_hist.summary()
    }

    /// Number of `sync_data` calls issued since the WAL was opened.
    /// Callers attributing fsync cost to an individual append compare this
    /// counter before and after the append.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Duration of the most recent fsync in microseconds (0 before any
    /// fsync has happened).
    pub fn last_sync_micros(&self) -> u64 {
        self.last_sync_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::NodeId;

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("banks-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_batch(i: u64) -> MutationBatch {
        MutationBatch::new()
            .add_node("author", format!("Author {i}"))
            .add_edge(NodeId(0), NodeId(1))
            .set_weight(NodeId(0), NodeId(1), 1.5 + i as f64)
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        for i in 0..5 {
            let seq = wal.append(100 + i, 101 + i, &sample_batch(i)).unwrap();
            assert_eq!(seq, i + 1);
        }
        assert_eq!(wal.records(), 5);
        let scan = scan_file(&path).unwrap();
        assert!(scan.anomaly.is_none());
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.valid_bytes, wal.bytes());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
            assert_eq!(rec.parent_epoch, 100 + i as u64);
            assert_eq!(rec.epoch, 101 + i as u64);
            assert_eq!(rec.batch, sample_batch(i as u64));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_codec_round_trips_and_rejects_damage() {
        let batch = sample_batch(3);
        let bytes = encode_record(7, 41, 42, &batch);
        let (rec, used) = decode_record(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.parent_epoch, 41);
        assert_eq!(rec.epoch, 42);
        assert_eq!(rec.batch, batch);

        // Any truncation is a typed error — replication shipments must be
        // whole, unlike the lenient local recovery scan.
        for cut in 0..bytes.len() {
            assert!(decode_record(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = bytes.clone();
        flipped[12] ^= 0x01;
        assert!(matches!(
            decode_record(&flipped),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        // Concatenated records decode one at a time via the consumed count.
        let mut two = bytes.clone();
        two.extend_from_slice(&encode_record(8, 42, 43, &batch));
        let (first, consumed) = decode_record(&two).unwrap();
        assert_eq!(first.seq, 7);
        let (second, rest) = decode_record(&two[consumed..]).unwrap();
        assert_eq!(second.seq, 8);
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn missing_file_scans_empty() {
        let dir = tmp_dir("missing");
        let scan = scan_file(&dir.join("nope.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        for i in 0..3 {
            wal.append(i, i + 1, &sample_batch(i)).unwrap();
        }
        wal.sync().unwrap();
        let full = wal.bytes();
        drop(wal);
        // Tear the final record: chop 5 bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.records.len(), 2, "two intact records survive");
        assert!(scan.anomaly.is_some());
        assert!(scan.valid_bytes < full);

        // Re-open truncates the tear and appending resumes at seq 3.
        let mut wal = Wal::open_after_scan(&path, FsyncPolicy::Always, &scan).unwrap();
        assert_eq!(wal.records(), 2);
        let seq = wal.append(10, 11, &sample_batch(9)).unwrap();
        assert_eq!(seq, 3);
        let rescan = scan_file(&path).unwrap();
        assert!(rescan.anomaly.is_none());
        assert_eq!(rescan.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_flip() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        let mut first_end = 0;
        for i in 0..3 {
            wal.append(i, i + 1, &sample_batch(i)).unwrap();
            if i == 0 {
                first_end = wal.bytes();
            }
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the second record's payload.
        let target = first_end as usize + WAL_RECORD_HEADER_LEN + 2;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "only the record before the flip");
        assert!(scan.anomaly.unwrap().contains("checksum mismatch"));
        assert_eq!(scan.valid_bytes, first_end);

        assert!(matches!(
            read_strict(&path),
            Err(PersistError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_hard_errors() {
        let dir = tmp_dir("magic");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"NOTABANKSWALFILE").unwrap();
        assert!(matches!(
            scan_file(&path),
            Err(PersistError::BadMagic { .. })
        ));

        let mut h = header().to_vec();
        h[8] = 9; // future version
        let crc = crc32(&h[..12]);
        h[12..16].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &h).unwrap();
        assert!(matches!(
            scan_file(&path),
            Err(PersistError::UnsupportedVersion { found: 9, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmp_dir("reset");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(1, 2, &sample_batch(0)).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), WAL_HEADER_LEN as u64);
        let scan = scan_file(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.anomaly.is_none());
        // Appending after reset restarts the sequence.
        let seq = wal.append(5, 6, &sample_batch(1)).unwrap();
        assert_eq!(seq, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_batches_syncs() {
        let dir = tmp_dir("everyn");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..7 {
            wal.append(i, i + 1, &sample_batch(i)).unwrap();
        }
        // 7 appends with n=3 leaves one unsynced; sync() clears it.
        assert_eq!(wal.unsynced, 1);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
