//! Corruption-robustness suite: every way the disk can lie — torn tails,
//! bit flips, wrong magic, future format versions, total garbage — must
//! surface as a typed `PersistError` (or a tolerated scan anomaly), never
//! a panic, and recovery must fall back to the newest loadable state.

use std::path::PathBuf;

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_persist::{
    decode_snapshot, encode_snapshot, list_snapshots, read_snapshot, recover, scan_file,
    BootSource, FsyncPolicy, PersistError, PersistOptions, PersistentStore, FORMAT_VERSION,
};

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("banks-corrupt-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seed_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a1 = b.add_node("author", "Grace Hopper");
    let a2 = b.add_node("author", "Barbara Liskov");
    let p1 = b.add_node("paper", "Crash Recovery Considered Essential");
    let p2 = b.add_node("paper", "Logs All The Way Down");
    b.add_edge(p1, a1).unwrap();
    b.add_edge(p1, a2).unwrap();
    b.add_edge_weighted(p2, a2, 3.0).unwrap();
    b.build_default()
}

/// One node's identity: label plus out-edges as `(target, weight bits,
/// is-backward)`.
type NodeSignature = (String, Vec<(u32, u64, bool)>);

fn graph_signature(g: &DataGraph) -> Vec<NodeSignature> {
    g.nodes()
        .map(|u| {
            (
                g.node_label(u).to_string(),
                g.out_edges(u)
                    .map(|e| (e.to.0, e.weight.to_bits(), e.kind.is_backward()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn truncated_wal_tail_recovers_prefix() {
    let dir = tmp_dir("torn-wal");
    let expected;
    {
        let mut store = PersistentStore::open(&dir, seed_graph).unwrap();
        for i in 0..5 {
            store
                .apply(&MutationBatch::new().add_node("author", format!("N{i}")))
                .unwrap();
        }
        store.sync().unwrap();
        // The first four batches are what a torn fifth record leaves.
        expected = 4 + seed_graph().num_nodes();
    }
    // Tear the last record mid-payload.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 11]).unwrap();

    let store = PersistentStore::open(&dir, || panic!("must recover")).unwrap();
    match store.boot_source() {
        BootSource::Recovered {
            replayed,
            torn_tail,
            ..
        } => {
            assert_eq!(replayed, 4);
            assert!(torn_tail);
        }
        other => panic!("expected recovery, got {other:?}"),
    }
    assert_eq!(store.graph().num_nodes(), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_wal_record_stops_replay_at_flip() {
    let dir = tmp_dir("flip-wal");
    {
        let mut store = PersistentStore::open(&dir, seed_graph).unwrap();
        for i in 0..3 {
            store
                .apply(&MutationBatch::new().add_node("conference", format!("C{i}")))
                .unwrap();
        }
        store.sync().unwrap();
    }
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip a bit two thirds in — inside the second or third record.
    let target = bytes.len() * 2 / 3;
    bytes[target] ^= 0x01;
    std::fs::write(&wal, &bytes).unwrap();

    let scan = scan_file(&wal).unwrap();
    assert!(scan.anomaly.is_some(), "flip must be detected");
    assert!(scan.records.len() < 3, "replay stops before the flip");

    // Recovery still succeeds with the intact prefix.
    let store = PersistentStore::open(&dir, || panic!("must recover")).unwrap();
    assert_eq!(
        store.graph().num_nodes(),
        seed_graph().num_nodes() + scan.records.len()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_magic_snapshot_is_typed_and_skipped() {
    let dir = tmp_dir("magic");
    let sig;
    {
        let mut store = PersistentStore::open(&dir, seed_graph).unwrap();
        store
            .apply(&MutationBatch::new().set_label(NodeId(0), "Renamed"))
            .unwrap();
        store.checkpoint().unwrap();
        sig = graph_signature(store.graph());
    }
    let snaps = list_snapshots(&dir).unwrap();
    assert_eq!(snaps.len(), 2);

    // Overwrite the newest snapshot's magic.
    let newest = snaps[0].1.clone();
    let mut bytes = std::fs::read(&newest).unwrap();
    bytes[..8].copy_from_slice(b"NOTBANKS");
    std::fs::write(&newest, &bytes).unwrap();

    // Direct read gives the typed error…
    assert!(matches!(
        read_snapshot(&newest),
        Err(PersistError::BadMagic { .. })
    ));
    // …and recovery falls back to the older snapshot.  Its WAL is empty
    // (checkpoint truncated it), so the fallback state is the older epoch.
    let rec = recover(&dir).unwrap().expect("older snapshot usable");
    assert_eq!(rec.skipped_snapshots, 1);
    assert_eq!(rec.snapshot_epoch, snaps[1].0);
    // The pre-corruption signature differs from the fallback: data from
    // the lost checkpoint window is gone, but nothing panicked.
    assert_ne!(graph_signature(&rec.contents.graph), sig);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_format_version_is_unsupported() {
    let g = seed_graph();
    let mut bytes = encode_snapshot(&g, None, None);
    // Bump the version field and fix the header CRC so only the version
    // check can fire.
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    let crc = {
        // Recompute with the crate's own CRC via a decode round trip trick:
        // encode_snapshot always writes a valid header, so splice the new
        // version in and recompute using the public constant layout.
        banks_persist_crc(&bytes[..60])
    };
    bytes[60..64].copy_from_slice(&crc.to_le_bytes());
    match decode_snapshot(&bytes) {
        Err(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// CRC-32 (IEEE) reimplemented locally so the test can forge a valid
/// header checksum without reaching into crate internals.
fn banks_persist_crc(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[test]
fn garbage_files_never_panic() {
    let dir = tmp_dir("garbage");
    let patterns: &[&[u8]] = &[
        b"",
        b"x",
        b"BANKSDB0",
        b"BANKSWAL",
        &[0u8; 64],
        &[0xFF; 128],
        b"BANKSDB0\x01\x00\x00\x00\x00\x10\x00\x00 and then nonsense",
    ];
    for (i, p) in patterns.iter().enumerate() {
        let path = dir.join(format!("snapshot-{i:020}.banks"));
        std::fs::write(&path, p).unwrap();
    }
    // Every candidate fails with a typed error; none panics.
    match recover(&dir) {
        Err(PersistError::NoValidSnapshot { attempts, .. }) => {
            assert_eq!(attempts, patterns.len());
        }
        other => panic!("expected NoValidSnapshot, got {other:?}"),
    }
    // WAL garbage likewise.
    std::fs::write(dir.join("wal.log"), b"BANKSWALgarbage").unwrap();
    assert!(scan_file(&dir.join("wal.log")).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_bit_flip_sweep_never_panics_end_to_end() {
    let g = seed_graph();
    let bytes = encode_snapshot(&g, None, None);
    // Sparse sweep (every 13th byte) across the whole file, all 8 bits.
    for pos in (0..bytes.len()).step_by(13) {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << bit;
            let _ = decode_snapshot(&corrupted); // must not panic
        }
    }
}

#[test]
fn fsync_policies_all_round_trip() {
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(2),
        FsyncPolicy::Never,
    ] {
        let dir = tmp_dir("fsync");
        let options = PersistOptions {
            fsync: policy,
            ..PersistOptions::default()
        };
        {
            let mut store = PersistentStore::open_with(&dir, options, seed_graph).unwrap();
            store
                .apply(&MutationBatch::new().add_node("author", "Synced"))
                .unwrap();
            store.sync().unwrap();
        }
        let store = PersistentStore::open_with(&dir, options, || panic!("must recover")).unwrap();
        assert_eq!(store.graph().num_nodes(), seed_graph().num_nodes() + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
