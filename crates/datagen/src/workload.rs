//! Query-workload generation (Sections 5.4 and 5.6 of the paper).
//!
//! The paper generates its evaluation workloads by executing SQL join
//! networks of a fixed size over DBLP, selecting keywords at random from the
//! tuples of the result set, and classifying queries by how many tuples each
//! keyword matches ("origin size").  The ground-truth relevant answers are
//! the results of those SQL queries.
//!
//! [`WorkloadGenerator`] reproduces that procedure on a synthetic
//! [`DblpDataset`]: it plants co-authorship join networks (answer size 5:
//! `author – writes – paper – writes – author`) or citation networks
//! (answer size 3: `paper – cites – paper`), samples keywords from the
//! participating tuples, and derives ground truth by running the relational
//! [`SparseSearch`] oracle over the same keywords.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banks_graph::NodeId;
use banks_relational::{RowId, SparseSearch, TupleId};
use banks_textindex::Query;

use crate::dblp::DblpDataset;

/// Keyword frequency category (Section 5.6's tiny/small/medium/large).
///
/// The paper's absolute thresholds (1–500, 1000–2000, 2500–5000, >7000
/// tuples) assume the full 500k-paper DBLP; at configurable synthetic scale
/// the categories are defined as fractions of the corpus size instead, with
/// the same ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeywordCategory {
    /// Matches at most 0.1% of the corpus (e.g. a specific author name).
    Tiny,
    /// Matches 0.1%–1% of the corpus.
    Small,
    /// Matches 1%–6% of the corpus.
    Medium,
    /// Matches more than 6% of the corpus (e.g. `database`).
    Large,
}

impl KeywordCategory {
    /// Inclusive origin-size range for a corpus of `corpus` keyword-bearing
    /// tuples.
    pub fn range(&self, corpus: usize) -> (usize, usize) {
        let pct = |f: f64| ((corpus as f64 * f).round() as usize).max(1);
        match self {
            KeywordCategory::Tiny => (1, pct(0.001)),
            KeywordCategory::Small => (pct(0.001) + 1, pct(0.01)),
            KeywordCategory::Medium => (pct(0.01) + 1, pct(0.06)),
            KeywordCategory::Large => (pct(0.06) + 1, usize::MAX),
        }
    }

    /// Classifies an origin size.
    pub fn classify(origin_size: usize, corpus: usize) -> KeywordCategory {
        for category in [
            KeywordCategory::Tiny,
            KeywordCategory::Small,
            KeywordCategory::Medium,
            KeywordCategory::Large,
        ] {
            let (lo, hi) = category.range(corpus);
            if origin_size >= lo && origin_size <= hi {
                return category;
            }
        }
        KeywordCategory::Large
    }

    /// Short label used in benchmark tables ("T", "S", "M", "L").
    pub fn label(&self) -> &'static str {
        match self {
            KeywordCategory::Tiny => "T",
            KeywordCategory::Small => "S",
            KeywordCategory::Medium => "M",
            KeywordCategory::Large => "L",
        }
    }
}

/// Whether the non-author keywords of a generated query should be drawn from
/// the frequent or the rare end of the title vocabulary (the paper's
/// small-origin vs large-origin query classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OriginBias {
    /// Prefer rare title words (small origin sets).
    Rare,
    /// Prefer frequent title words (large origin sets).
    Frequent,
    /// No preference.
    Any,
}

/// Configuration of the workload generator.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Keywords per query (the paper sweeps 1–7).
    pub num_keywords: usize,
    /// Size (node count) of the planted most-relevant answer: 5 plants a
    /// co-authorship network, 3 plants a citation pair, 1 plants a single
    /// paper.
    pub answer_size: usize,
    /// Frequency bias of the title keywords.
    pub origin_bias: OriginBias,
    /// Whether to run the relational oracle to collect all relevant answers
    /// (in addition to the planted one).
    pub compute_ground_truth: bool,
    /// Maximum number of relevant answers collected per query.
    pub ground_truth_cap: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 20,
            num_keywords: 2,
            answer_size: 5,
            origin_bias: OriginBias::Any,
            compute_ground_truth: true,
            ground_truth_cap: 25,
            seed: 7,
        }
    }
}

/// One generated query with its ground truth.
#[derive(Clone, Debug)]
pub struct QueryCase {
    /// The query keywords (phrases allowed).
    pub keywords: Vec<String>,
    /// Node ids of the planted answer.
    pub planted_nodes: Vec<NodeId>,
    /// All relevant answers (node sets), including the planted one.
    pub relevant: Vec<Vec<NodeId>>,
    /// Origin-set size of every keyword (how many nodes match it).
    pub origin_sizes: Vec<usize>,
    /// Size of the planted answer.
    pub answer_size: usize,
}

impl QueryCase {
    /// The query in `banks-textindex` form.
    pub fn query(&self) -> Query {
        Query::from_keywords(self.keywords.clone())
    }

    /// Largest keyword origin size (the quantity the paper uses to classify
    /// small-origin vs large-origin queries).
    pub fn max_origin_size(&self) -> usize {
        self.origin_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Smallest keyword origin size.
    pub fn min_origin_size(&self) -> usize {
        self.origin_sizes.iter().copied().min().unwrap_or(0)
    }

    /// Number of keywords.
    pub fn num_keywords(&self) -> usize {
        self.keywords.len()
    }
}

/// Generates query workloads over a DBLP-like dataset.
pub struct WorkloadGenerator<'a> {
    data: &'a DblpDataset,
    rng: SmallRng,
}

impl<'a> WorkloadGenerator<'a> {
    /// Creates a generator with its own seeded RNG.
    pub fn new(data: &'a DblpDataset, seed: u64) -> Self {
        WorkloadGenerator {
            data,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of keyword-bearing tuples used as the corpus size for
    /// frequency classification (papers plus authors).
    pub fn corpus_size(&self) -> usize {
        let db = &self.data.dataset.db;
        db.num_rows(self.data.paper) + db.num_rows(self.data.author)
    }

    /// Generates a workload according to `config`.
    pub fn generate(&mut self, config: &WorkloadConfig) -> Vec<QueryCase> {
        let mut cases = Vec::with_capacity(config.num_queries);
        let mut attempts = 0usize;
        while cases.len() < config.num_queries && attempts < config.num_queries * 50 {
            attempts += 1;
            if let Some(case) = self.generate_one(config) {
                cases.push(case);
            }
        }
        cases
    }

    /// Generates queries whose keyword frequencies follow the requested
    /// categories (Figure 6(c)): the planted answer is a citation pair
    /// (answer size 3) and each keyword is a title word in the requested
    /// frequency band.
    pub fn generate_categorised(
        &mut self,
        categories: &[KeywordCategory],
        num_queries: usize,
    ) -> Vec<QueryCase> {
        let corpus = self.corpus_size();
        let mut cases = Vec::with_capacity(num_queries);
        let mut attempts = 0usize;
        while cases.len() < num_queries && attempts < num_queries * 200 {
            attempts += 1;
            if let Some(case) = self.generate_categorised_one(categories, corpus) {
                cases.push(case);
            }
        }
        cases
    }

    /// The paper's Section 5.5 anomaly query: two keywords that both match a
    /// single node with a large fan-in (two prolific authors).
    pub fn symmetric_rare_query(&mut self, ground_truth_cap: usize) -> Option<QueryCase> {
        let db = &self.data.dataset.db;
        let graph = self.data.dataset.graph();
        // Find the two authors with the largest fan-in (most papers).
        let mut ranked: Vec<(RowId, usize)> = db
            .rows(self.data.author)
            .map(|row| {
                let node = self
                    .data
                    .dataset
                    .extraction
                    .node_of(TupleId::new(self.data.author, row));
                (row, graph.forward_indegree(node))
            })
            .collect();
        ranked.sort_by_key(|r| std::cmp::Reverse(r.1));
        if ranked.len() < 2 {
            return None;
        }
        let (a, b) = (ranked[0].0, ranked[1].0);
        let keywords = vec![
            db.row_text(self.data.author, a).to_lowercase(),
            db.row_text(self.data.author, b).to_lowercase(),
        ];
        let planted = vec![
            self.data
                .dataset
                .extraction
                .node_of(TupleId::new(self.data.author, a)),
            self.data
                .dataset
                .extraction
                .node_of(TupleId::new(self.data.author, b)),
        ];
        Some(self.finish_case(keywords, planted, 5, true, ground_truth_cap))
    }

    // ------------------------------------------------------------ internals

    fn generate_one(&mut self, config: &WorkloadConfig) -> Option<QueryCase> {
        match config.answer_size {
            0 | 1 => self.plant_single_paper(config),
            2 | 3 => self.plant_citation_pair_query(config),
            _ => self.plant_coauthorship_query(config),
        }
    }

    /// Single-tuple answers: all keywords from one paper's title.
    fn plant_single_paper(&mut self, config: &WorkloadConfig) -> Option<QueryCase> {
        let db = &self.data.dataset.db;
        let paper_row = self.rng.gen_range(0..db.num_rows(self.data.paper)) as RowId;
        let words = self.title_words(paper_row);
        if words.len() < config.num_keywords {
            return None;
        }
        let keywords = self.pick_title_keywords(&words, config.num_keywords, config.origin_bias)?;
        let planted = vec![self
            .data
            .dataset
            .extraction
            .node_of(TupleId::new(self.data.paper, paper_row))];
        Some(self.finish_case(
            keywords,
            planted,
            1,
            config.compute_ground_truth,
            config.ground_truth_cap,
        ))
    }

    /// Answer size 3: paper A cites paper B; keywords split between the two
    /// titles.
    fn plant_citation_pair_query(&mut self, config: &WorkloadConfig) -> Option<QueryCase> {
        let db = &self.data.dataset.db;
        if db.num_rows(self.data.cites) == 0 {
            return None;
        }
        let cites_row = self.rng.gen_range(0..db.num_rows(self.data.cites)) as RowId;
        let citing = db.referenced_row(self.data.cites, cites_row, 0)?;
        let cited = db.referenced_row(self.data.cites, cites_row, 1)?;
        let words_a = self.title_words(citing);
        let words_b = self.title_words(cited);
        let half = config.num_keywords / 2;
        let from_a =
            self.pick_title_keywords(&words_a, config.num_keywords - half, config.origin_bias)?;
        let mut keywords = from_a;
        let from_b = self.pick_title_keywords(
            &words_b
                .into_iter()
                .filter(|w| !keywords.contains(w))
                .collect::<Vec<_>>(),
            half,
            config.origin_bias,
        )?;
        keywords.extend(from_b);
        let planted = vec![
            self.data
                .dataset
                .extraction
                .node_of(TupleId::new(self.data.paper, citing)),
            self.data
                .dataset
                .extraction
                .node_of(TupleId::new(self.data.cites, cites_row)),
            self.data
                .dataset
                .extraction
                .node_of(TupleId::new(self.data.paper, cited)),
        ];
        Some(self.finish_case(
            keywords,
            planted,
            3,
            config.compute_ground_truth,
            config.ground_truth_cap,
        ))
    }

    /// Answer size 5: a paper with two authors; keywords are the two author
    /// names plus title words.
    fn plant_coauthorship_query(&mut self, config: &WorkloadConfig) -> Option<QueryCase> {
        let (paper_row, writes_a, writes_b, author_a, author_b) = self.pick_coauthored_paper()?;
        let db = &self.data.dataset.db;

        let mut keywords = Vec::with_capacity(config.num_keywords);
        keywords.push(db.row_text(self.data.author, author_a).to_lowercase());
        if config.num_keywords >= 2 {
            keywords.push(db.row_text(self.data.author, author_b).to_lowercase());
        }
        if config.num_keywords > 2 {
            let words = self.title_words(paper_row);
            let extra =
                self.pick_title_keywords(&words, config.num_keywords - 2, config.origin_bias)?;
            keywords.extend(extra);
        }
        keywords.truncate(config.num_keywords);

        let ext = &self.data.dataset.extraction;
        let planted = vec![
            ext.node_of(TupleId::new(self.data.author, author_a)),
            ext.node_of(TupleId::new(self.data.writes, writes_a)),
            ext.node_of(TupleId::new(self.data.paper, paper_row)),
            ext.node_of(TupleId::new(self.data.writes, writes_b)),
            ext.node_of(TupleId::new(self.data.author, author_b)),
        ];
        let planted = if config.num_keywords == 1 {
            planted[..2].to_vec()
        } else {
            planted
        };
        Some(self.finish_case(
            keywords,
            planted,
            config.answer_size,
            config.compute_ground_truth,
            config.ground_truth_cap,
        ))
    }

    fn generate_categorised_one(
        &mut self,
        categories: &[KeywordCategory],
        corpus: usize,
    ) -> Option<QueryCase> {
        let db = &self.data.dataset.db;
        if db.num_rows(self.data.cites) == 0 {
            return None;
        }
        let cites_row = self.rng.gen_range(0..db.num_rows(self.data.cites)) as RowId;
        let citing = db.referenced_row(self.data.cites, cites_row, 0)?;
        let cited = db.referenced_row(self.data.cites, cites_row, 1)?;
        let mut pool: Vec<String> = self.title_words(citing);
        pool.extend(self.title_words(cited));
        pool.sort();
        pool.dedup();

        let mut keywords = Vec::with_capacity(categories.len());
        for category in categories {
            let (lo, hi) = category.range(corpus);
            let pick = pool
                .iter()
                .filter(|w| !keywords.contains(*w))
                .map(|w| (w.clone(), self.term_frequency(w)))
                .filter(|(_, f)| *f >= lo && *f <= hi)
                .min_by_key(|(_, f)| *f);
            match pick {
                Some((word, _)) => keywords.push(word),
                None => return None, // resample another citation pair
            }
        }

        let ext = &self.data.dataset.extraction;
        let planted = vec![
            ext.node_of(TupleId::new(self.data.paper, citing)),
            ext.node_of(TupleId::new(self.data.cites, cites_row)),
            ext.node_of(TupleId::new(self.data.paper, cited)),
        ];
        Some(self.finish_case(keywords, planted, 3, true, 25))
    }

    /// Picks a random paper with at least two distinct authors; returns the
    /// paper row, the two `writes` rows and the two author rows.
    fn pick_coauthored_paper(&mut self) -> Option<(RowId, RowId, RowId, RowId, RowId)> {
        let db = &self.data.dataset.db;
        let num_papers = db.num_rows(self.data.paper);
        for _ in 0..200 {
            let paper_row = self.rng.gen_range(0..num_papers) as RowId;
            let writes_rows = db.referencing_rows(self.data.writes, 1, paper_row);
            if writes_rows.len() < 2 {
                continue;
            }
            let wa = writes_rows[0];
            let wb = writes_rows[writes_rows.len() - 1];
            let author_a = db.referenced_row(self.data.writes, wa, 0)?;
            let author_b = db.referenced_row(self.data.writes, wb, 0)?;
            if author_a != author_b {
                return Some((paper_row, wa, wb, author_a, author_b));
            }
        }
        None
    }

    fn title_words(&self, paper_row: RowId) -> Vec<String> {
        let text = self
            .data
            .dataset
            .db
            .row_text(self.data.paper, paper_row)
            .to_lowercase();
        let mut words: Vec<String> = text.split_whitespace().map(|s| s.to_string()).collect();
        words.sort();
        words.dedup();
        words
    }

    fn term_frequency(&self, term: &str) -> usize {
        self.data
            .dataset
            .index()
            .term_stats(term)
            .map(|s| s.node_frequency)
            .unwrap_or(0)
    }

    /// Chooses `count` distinct title words, biased toward rare or frequent
    /// terms as requested.
    fn pick_title_keywords(
        &mut self,
        words: &[String],
        count: usize,
        bias: OriginBias,
    ) -> Option<Vec<String>> {
        if words.len() < count {
            return None;
        }
        let mut ranked: Vec<(String, usize)> = words
            .iter()
            .map(|w| (w.clone(), self.term_frequency(w)))
            .collect();
        match bias {
            OriginBias::Rare => ranked.sort_by_key(|(_, f)| *f),
            OriginBias::Frequent => ranked.sort_by_key(|(_, f)| std::cmp::Reverse(*f)),
            OriginBias::Any => {
                // deterministic shuffle via the generator's RNG
                for i in (1..ranked.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    ranked.swap(i, j);
                }
            }
        }
        Some(ranked.into_iter().take(count).map(|(w, _)| w).collect())
    }

    /// Computes origin sizes and ground truth, producing the final case.
    fn finish_case(
        &mut self,
        keywords: Vec<String>,
        planted_nodes: Vec<NodeId>,
        answer_size: usize,
        compute_ground_truth: bool,
        ground_truth_cap: usize,
    ) -> QueryCase {
        let graph = self.data.dataset.graph();
        let index = self.data.dataset.index();
        let origin_sizes: Vec<usize> = keywords
            .iter()
            .map(|k| index.matching_nodes(graph, k).len())
            .collect();

        // Relevant node sets are stored sorted so that the same answer
        // reached from the planted tree and from the relational oracle is
        // recognised as one relevant result.
        let mut planted_sorted = planted_nodes.clone();
        planted_sorted.sort_unstable();
        let mut relevant: Vec<Vec<NodeId>> = vec![planted_sorted];
        if compute_ground_truth {
            let keyword_refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
            let mut sparse = SparseSearch::with_max_size(answer_size.max(1));
            sparse.top_k = ground_truth_cap;
            let oracle = sparse.run(&self.data.dataset.db, &keyword_refs);
            for result in oracle.results {
                let mut nodes: Vec<NodeId> = result
                    .distinct_tuples()
                    .into_iter()
                    .map(|t| self.data.dataset.extraction.node_of(t))
                    .collect();
                nodes.sort_unstable();
                if !relevant.contains(&nodes) {
                    relevant.push(nodes);
                }
            }
            relevant.truncate(ground_truth_cap.max(1));
        }

        QueryCase {
            keywords,
            planted_nodes,
            relevant,
            origin_sizes,
            answer_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::DblpConfig;

    fn dataset() -> DblpDataset {
        DblpDataset::generate(DblpConfig::tiny())
    }

    #[test]
    fn category_ranges_partition_the_axis() {
        let corpus = 10_000;
        let (t_lo, t_hi) = KeywordCategory::Tiny.range(corpus);
        let (s_lo, s_hi) = KeywordCategory::Small.range(corpus);
        let (m_lo, m_hi) = KeywordCategory::Medium.range(corpus);
        let (l_lo, _) = KeywordCategory::Large.range(corpus);
        assert_eq!(t_lo, 1);
        assert_eq!(t_hi + 1, s_lo);
        assert_eq!(s_hi + 1, m_lo);
        assert_eq!(m_hi + 1, l_lo);
        assert_eq!(KeywordCategory::classify(1, corpus), KeywordCategory::Tiny);
        assert_eq!(
            KeywordCategory::classify(50, corpus),
            KeywordCategory::Small
        );
        assert_eq!(
            KeywordCategory::classify(300, corpus),
            KeywordCategory::Medium
        );
        assert_eq!(
            KeywordCategory::classify(5000, corpus),
            KeywordCategory::Large
        );
        assert_eq!(KeywordCategory::Tiny.label(), "T");
        assert_eq!(KeywordCategory::Large.label(), "L");
    }

    #[test]
    fn generates_coauthorship_queries_with_ground_truth() {
        let data = dataset();
        let mut generator = WorkloadGenerator::new(&data, 1);
        let config = WorkloadConfig {
            num_queries: 5,
            num_keywords: 2,
            ..Default::default()
        };
        let cases = generator.generate(&config);
        assert_eq!(cases.len(), 5);
        for case in &cases {
            assert_eq!(case.num_keywords(), 2);
            assert_eq!(case.planted_nodes.len(), 5);
            assert!(!case.relevant.is_empty());
            // the planted answer is always among the relevant sets
            let mut planted_sorted = case.planted_nodes.clone();
            planted_sorted.sort_unstable();
            assert!(case.relevant.contains(&planted_sorted));
            // author-name keywords must match at least one node
            assert!(case.origin_sizes.iter().all(|s| *s >= 1));
            assert!(case.max_origin_size() >= case.min_origin_size());
            assert_eq!(case.query().len(), 2);
        }
    }

    #[test]
    fn keyword_count_is_respected_up_to_seven() {
        let data = dataset();
        let mut generator = WorkloadGenerator::new(&data, 2);
        for n in 1..=7 {
            let config = WorkloadConfig {
                num_queries: 2,
                num_keywords: n,
                compute_ground_truth: false,
                ..Default::default()
            };
            let cases = generator.generate(&config);
            assert!(!cases.is_empty(), "no cases for {n} keywords");
            for case in cases {
                assert_eq!(case.num_keywords(), n);
            }
        }
    }

    #[test]
    fn origin_bias_changes_keyword_frequencies() {
        let data = dataset();
        let mut generator = WorkloadGenerator::new(&data, 3);
        let rare = generator.generate(&WorkloadConfig {
            num_queries: 10,
            num_keywords: 4,
            origin_bias: OriginBias::Rare,
            compute_ground_truth: false,
            ..Default::default()
        });
        let frequent = generator.generate(&WorkloadConfig {
            num_queries: 10,
            num_keywords: 4,
            origin_bias: OriginBias::Frequent,
            compute_ground_truth: false,
            ..Default::default()
        });
        let avg = |cases: &[QueryCase]| {
            cases.iter().map(|c| c.max_origin_size()).sum::<usize>() as f64 / cases.len() as f64
        };
        assert!(
            avg(&frequent) > avg(&rare),
            "frequent bias {} should exceed rare bias {}",
            avg(&frequent),
            avg(&rare)
        );
    }

    #[test]
    fn citation_pair_workload_has_answer_size_three() {
        let data = dataset();
        let mut generator = WorkloadGenerator::new(&data, 4);
        let cases = generator.generate(&WorkloadConfig {
            num_queries: 3,
            num_keywords: 4,
            answer_size: 3,
            compute_ground_truth: false,
            ..Default::default()
        });
        assert!(!cases.is_empty());
        for case in cases {
            assert_eq!(case.planted_nodes.len(), 3);
            assert_eq!(case.num_keywords(), 4);
        }
    }

    #[test]
    fn categorised_queries_fall_in_requested_bands() {
        let data = dataset();
        let mut generator = WorkloadGenerator::new(&data, 5);
        let corpus = generator.corpus_size();
        let categories = [KeywordCategory::Tiny, KeywordCategory::Large];
        let cases = generator.generate_categorised(&categories, 3);
        // tiny datasets may not always satisfy every band, but whenever a
        // case is produced it must respect the requested categories
        for case in &cases {
            assert_eq!(case.num_keywords(), 2);
            for (size, category) in case.origin_sizes.iter().zip(categories.iter()) {
                assert_eq!(KeywordCategory::classify(*size, corpus), *category);
            }
        }
    }

    #[test]
    fn symmetric_rare_query_targets_prolific_authors() {
        let data = dataset();
        let mut generator = WorkloadGenerator::new(&data, 6);
        let case = generator.symmetric_rare_query(10).expect("query");
        assert_eq!(case.num_keywords(), 2);
        // both keywords are author names matching very few nodes
        assert!(case.max_origin_size() <= 3);
    }
}
