//! The worked example of Figure 4 in the paper.
//!
//! The scenario: the user asks for "Database" papers co-authored by "James"
//! and "John".  `Database` matches a large set of paper nodes, `James` and
//! `John` match a single author node each, and John has authored many papers
//! (his author node has a large fan-in through the `writes` nodes).  The
//! paper argues that Backward expanding search explores on the order of 150
//! nodes before producing the answer rooted at the shared `writes`/paper
//! structure, whereas Bidirectional search explores only a handful.

use banks_graph::{DataGraph, GraphBuilder, NodeId};
use banks_textindex::KeywordMatches;

/// The Figure 4 example: a graph, the keyword origin sets for the query
/// `Database James John`, and the ids of the nodes that form the desired
/// answer (the database paper written by both James and John together with
/// its two `writes` tuples).
#[derive(Debug, Clone)]
pub struct Figure4Example {
    /// The example graph.
    pub graph: DataGraph,
    /// Origin sets for the three keywords (`Database`, `James`, `John`).
    pub matches: KeywordMatches,
    /// The paper node co-authored by James and John.
    pub target_paper: NodeId,
    /// The author node for James.
    pub james: NodeId,
    /// The author node for John.
    pub john: NodeId,
    /// All nodes of the expected best answer tree.
    pub expected_answer_nodes: Vec<NodeId>,
}

/// Builds the example with the paper's proportions: `num_database_papers`
/// papers match the frequent keyword (the paper uses 100) and John has
/// written `john_paper_count` of them (the paper uses 48).
pub fn figure4_example(num_database_papers: usize, john_paper_count: usize) -> Figure4Example {
    assert!(
        john_paper_count <= num_database_papers,
        "John cannot write more papers than exist"
    );
    assert!(num_database_papers >= 1);

    let mut builder = GraphBuilder::new();
    // Papers #1..=#100 in the paper's numbering.
    let papers: Vec<NodeId> = (0..num_database_papers)
        .map(|i| builder.add_node("paper", format!("Database paper {i}")))
        .collect();
    let james = builder.add_node("author", "James");
    let john = builder.add_node("author", "John");

    // John wrote the first `john_paper_count` papers (including paper 0,
    // which will be the shared one).
    let mut john_writes = Vec::new();
    for (i, paper) in papers.iter().take(john_paper_count).enumerate() {
        let w = builder.add_node("writes", format!("john-writes-{i}"));
        builder.add_edge(w, *paper).expect("edge");
        builder.add_edge(w, john).expect("edge");
        john_writes.push(w);
    }
    // James wrote only paper 0 (node #250 in the paper's numbering).
    let james_writes = builder.add_node("writes", "james-writes-0");
    builder.add_edge(james_writes, papers[0]).expect("edge");
    builder.add_edge(james_writes, james).expect("edge");

    let graph = builder.build_default();

    let matches = KeywordMatches::from_sets(vec![
        ("database", papers.clone()),
        ("james", vec![james]),
        ("john", vec![john]),
    ]);

    let expected_answer_nodes = vec![papers[0], james, john, john_writes[0], james_writes];

    Figure4Example {
        graph,
        matches,
        target_paper: papers[0],
        james,
        john,
        expected_answer_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_has_paper_proportions() {
        let ex = figure4_example(100, 48);
        // 100 papers + 2 authors + 48 + 1 writes = 151 nodes
        assert_eq!(ex.graph.num_nodes(), 151);
        assert_eq!(ex.matches.origin_set(0).len(), 100);
        assert_eq!(ex.matches.origin_set(1).len(), 1);
        assert_eq!(ex.matches.origin_set(2).len(), 1);
        // John's author node has fan-in 48
        assert_eq!(ex.graph.forward_indegree(ex.john), 48);
        assert_eq!(ex.graph.forward_indegree(ex.james), 1);
        assert_eq!(ex.expected_answer_nodes.len(), 5);
    }

    #[test]
    fn target_paper_is_connected_to_both_authors() {
        let ex = figure4_example(20, 10);
        // the target paper has two incoming writes edges
        assert_eq!(ex.graph.forward_indegree(ex.target_paper), 2);
        // every other database paper has at most one
        let others = ex
            .matches
            .origin_set(0)
            .iter()
            .filter(|p| **p != ex.target_paper);
        for p in others {
            assert!(ex.graph.forward_indegree(*p) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "cannot write more papers")]
    fn rejects_impossible_proportions() {
        let _ = figure4_example(5, 10);
    }
}
