//! # banks-datagen
//!
//! Synthetic dataset and workload generators for the BANKS-II reproduction.
//!
//! The paper evaluates on three real datasets — the complete DBLP
//! bibliography (~2M nodes / 9M edges), IMDB, and a subset of the US Patent
//! database (~4M nodes / 15M edges) — none of which can be shipped with the
//! reproduction.  The search algorithms, however, are sensitive only to
//! structural and statistical properties of those graphs:
//!
//! * hub nodes with very large fan-in (conference/metadata nodes, prolific
//!   authors, popular actors),
//! * heavily skewed (Zipfian) keyword frequencies, so that queries mix rare
//!   and frequent terms,
//! * small answer trees (2–7 nodes) embedded in a much larger graph.
//!
//! The generators in this crate reproduce exactly those properties at a
//! configurable scale, with seeded RNG so every experiment is
//! deterministic.  Each generator builds a *relational* database
//! ([`banks_relational::Database`]) first and then extracts the data graph
//! and keyword index from it, exercising the same pipeline the paper
//! describes.
//!
//! The [`workload`] module replays the paper's query-generation procedure
//! (Sections 5.4 and 5.6): it plants join networks of a chosen size, samples
//! keywords from the participating tuples, classifies queries by keyword
//! origin size, and derives ground-truth relevant answers by executing the
//! equivalent relational joins.

pub mod dblp;
pub mod figure4;
pub mod imdb;
pub mod patents;
pub mod vocab;
pub mod workload;
pub mod zipf;

pub use dblp::{DblpConfig, DblpDataset};
pub use figure4::figure4_example;
pub use imdb::{ImdbConfig, ImdbDataset};
pub use patents::{PatentsConfig, PatentsDataset};
pub use workload::{KeywordCategory, OriginBias, QueryCase, WorkloadConfig, WorkloadGenerator};
pub use zipf::Zipf;

use banks_graph::DataGraph;
use banks_relational::{Database, GraphExtraction};
use banks_textindex::InvertedIndex;

/// A generated dataset: the relational database plus its graph extraction.
#[derive(Debug)]
pub struct Dataset {
    /// The relational form (used by the Sparse baseline and the workload
    /// ground-truth oracle).
    pub db: Database,
    /// The graph form (used by the search engines).
    pub extraction: GraphExtraction,
}

impl Dataset {
    /// The data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.extraction.graph
    }

    /// The keyword index.
    pub fn index(&self) -> &InvertedIndex {
        &self.extraction.index
    }
}
