//! Synthetic DBLP-like bibliography generator.
//!
//! Reproduces the structural features the paper relies on:
//!
//! * a `conference-catalog` metadata tuple referenced by every conference —
//!   the "conference node with large degree" motivating edge directionality,
//! * papers referencing their conference (so conferences are hubs),
//! * Zipf-distributed author productivity (a few authors write very many
//!   papers — the "C. Mohan" effect of Section 5.5),
//! * Zipf-distributed citations (a few heavily cited papers),
//! * Zipf-distributed title vocabulary (a few words such as `database`
//!   match a large fraction of the papers).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banks_relational::{Database, DatabaseSchema, GraphExtraction, TableId};

use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use crate::Dataset;

/// Configuration of the DBLP-like generator.
#[derive(Clone, Copy, Debug)]
pub struct DblpConfig {
    /// Number of author tuples.
    pub num_authors: usize,
    /// Number of paper tuples.
    pub num_papers: usize,
    /// Number of conference tuples.
    pub num_conferences: usize,
    /// Maximum number of authors per paper (sampled 1..=max).
    pub max_authors_per_paper: usize,
    /// Average number of citations per paper.
    pub citations_per_paper: usize,
    /// Number of words per title.
    pub title_words: usize,
    /// Zipf exponent for author productivity and citation popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            num_authors: 3_000,
            num_papers: 5_000,
            num_conferences: 25,
            max_authors_per_paper: 3,
            citations_per_paper: 3,
            title_words: 8,
            skew: 0.9,
            seed: 42,
        }
    }
}

impl DblpConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        DblpConfig {
            num_authors: 60,
            num_papers: 120,
            num_conferences: 4,
            seed: 7,
            ..Default::default()
        }
    }

    /// Scales the entity counts by a factor (used by the benches to sweep
    /// graph sizes).
    pub fn scaled(factor: usize) -> Self {
        let base = Self::default();
        DblpConfig {
            num_authors: base.num_authors * factor,
            num_papers: base.num_papers * factor,
            num_conferences: base.num_conferences + factor,
            ..base
        }
    }
}

/// The generated DBLP-like dataset plus its table ids.
#[derive(Debug)]
pub struct DblpDataset {
    /// Relational + graph forms.
    pub dataset: Dataset,
    /// `catalog(name)` — the single metadata tuple.
    pub catalog: TableId,
    /// `conference(name, catalog)` table.
    pub conference: TableId,
    /// `author(name)` table.
    pub author: TableId,
    /// `paper(title, conference)` table.
    pub paper: TableId,
    /// `writes(author, paper)` table.
    pub writes: TableId,
    /// `cites(citing, cited)` table.
    pub cites: TableId,
}

impl DblpDataset {
    /// Generates a dataset.
    pub fn generate(config: DblpConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let vocab = Vocabulary::default();

        let mut schema = DatabaseSchema::new();
        let catalog = schema
            .add_simple_table("catalog", &["name"], &[])
            .expect("schema");
        let conference = schema
            .add_simple_table("conference", &["name"], &[("catalog", catalog)])
            .expect("schema");
        let author = schema
            .add_simple_table("author", &["name"], &[])
            .expect("schema");
        let paper = schema
            .add_simple_table("paper", &["title"], &[("conference", conference)])
            .expect("schema");
        let writes = schema
            .add_simple_table("writes", &[], &[("author", author), ("paper", paper)])
            .expect("schema");
        let cites = schema
            .add_simple_table("cites", &[], &[("citing", paper), ("cited", paper)])
            .expect("schema");
        let mut db = Database::new(schema);

        // Metadata hub and conferences.
        let catalog_row = db
            .insert(catalog, vec!["conference catalog".into()])
            .expect("insert");
        for c in 0..config.num_conferences {
            let name = vocab.org_name(&mut rng, "Conference", c);
            db.insert(conference, vec![name.into(), catalog_row.into()])
                .expect("insert");
        }

        // Authors.
        for a in 0..config.num_authors {
            let name = vocab.person_name(&mut rng, a);
            db.insert(author, vec![name.into()]).expect("insert");
        }

        // Papers.
        let author_zipf = Zipf::new(config.num_authors.max(1), config.skew);
        let conf_zipf = Zipf::new(config.num_conferences.max(1), config.skew);
        for _ in 0..config.num_papers {
            let title = vocab.title(&mut rng, config.title_words);
            let conf = conf_zipf.sample(&mut rng) as u32;
            let paper_row = db
                .insert(paper, vec![title.into(), conf.into()])
                .expect("insert");
            // authorship
            let num_authors = rng.gen_range(1..=config.max_authors_per_paper.max(1));
            let mut chosen: Vec<u32> = Vec::with_capacity(num_authors);
            while chosen.len() < num_authors {
                let candidate = author_zipf.sample(&mut rng) as u32;
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
            }
            for author_row in chosen {
                db.insert(writes, vec![author_row.into(), paper_row.into()])
                    .expect("insert");
            }
        }

        // Citations (papers cite earlier papers; popularity is skewed).
        for citing in 1..config.num_papers as u32 {
            let popularity = Zipf::new(citing as usize, config.skew + 0.2);
            let count = rng.gen_range(0..=config.citations_per_paper * 2);
            for _ in 0..count {
                let cited = popularity.sample(&mut rng) as u32;
                if cited != citing {
                    db.insert(cites, vec![citing.into(), cited.into()])
                        .expect("insert");
                }
            }
        }

        let extraction = GraphExtraction::extract(&db);
        DblpDataset {
            dataset: Dataset { db, extraction },
            catalog,
            conference,
            author,
            paper,
            writes,
            cites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::GraphStats;

    #[test]
    fn generates_consistent_dataset() {
        let d = DblpDataset::generate(DblpConfig::tiny());
        let db = &d.dataset.db;
        assert_eq!(db.num_rows(d.author), 60);
        assert_eq!(db.num_rows(d.paper), 120);
        assert_eq!(db.num_rows(d.catalog), 1);
        assert!(db.num_rows(d.writes) >= 120);
        assert!(db.check_integrity().is_ok());
        // graph extraction covers every tuple
        assert_eq!(d.dataset.graph().num_nodes(), db.total_rows());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DblpDataset::generate(DblpConfig::tiny());
        let b = DblpDataset::generate(DblpConfig::tiny());
        assert_eq!(a.dataset.graph().num_nodes(), b.dataset.graph().num_nodes());
        assert_eq!(
            a.dataset.graph().num_original_edges(),
            b.dataset.graph().num_original_edges()
        );
        let c = DblpDataset::generate(DblpConfig {
            seed: 99,
            ..DblpConfig::tiny()
        });
        // different seed, very likely different edge count (citations are random)
        assert!(
            c.dataset.graph().num_original_edges() != a.dataset.graph().num_original_edges()
                || c.dataset.db.row_text(c.author, 0) != a.dataset.db.row_text(a.author, 0)
        );
    }

    #[test]
    fn conference_hubs_exist() {
        let d = DblpDataset::generate(DblpConfig::tiny());
        let stats = GraphStats::compute(d.dataset.graph());
        // the catalog node and/or popular conferences should have large fan-in
        assert!(
            stats.max_forward_indegree >= 10,
            "max indegree {}",
            stats.max_forward_indegree
        );
    }

    #[test]
    fn frequent_keyword_matches_many_papers() {
        let d = DblpDataset::generate(DblpConfig::tiny());
        let matches = d
            .dataset
            .index()
            .matching_nodes(d.dataset.graph(), "database");
        assert!(
            matches.len() > 20,
            "expected the top topic word to match many papers, got {}",
            matches.len()
        );
        // relation name matches every paper tuple
        let papers = d.dataset.index().matching_nodes(d.dataset.graph(), "paper");
        assert_eq!(papers.len(), 120);
    }

    #[test]
    fn author_names_are_rare_keywords() {
        let d = DblpDataset::generate(DblpConfig::tiny());
        let name = d.dataset.db.row_text(d.author, 0).to_lowercase();
        let matches = d.dataset.index().matching_nodes(d.dataset.graph(), &name);
        assert!(!matches.is_empty());
        assert!(
            matches.len() <= 3,
            "author full name should be rare, matched {}",
            matches.len()
        );
    }
}
