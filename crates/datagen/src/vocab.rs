//! Synthetic vocabularies: person names, topic words and title generation.
//!
//! Names are assembled from syllables so that arbitrarily many distinct,
//! mostly-unique author/actor names exist (rare keywords), while titles are
//! drawn from a Zipf-distributed topic vocabulary so that a few topic words
//! ("database", "system", "query") are extremely frequent (the paper's
//! "frequently occurring terms").

use rand::Rng;

use crate::zipf::Zipf;

const FIRST_SYLLABLES: &[&str] = &[
    "jo", "ma", "an", "ka", "vi", "su", "ra", "de", "li", "ha", "mi", "ta", "pe", "sa", "ro", "be",
    "ni", "ga", "fe", "lu",
];
const LAST_SYLLABLES: &[&str] = &[
    "son", "nath", "gupta", "mura", "lez", "berg", "ström", "wicz", "moto", "poulos", "ishi",
    "mann", "dez", "veld", "kar", "shan", "rov", "etti", "ato", "field",
];

/// Core topic vocabulary used for titles; ordered from most to least
/// frequent rank in the Zipf draw, so `TOPIC_WORDS[0]` plays the role of the
/// paper's ubiquitous `database` keyword.
pub const TOPIC_WORDS: &[&str] = &[
    "database",
    "system",
    "query",
    "data",
    "distributed",
    "model",
    "analysis",
    "processing",
    "web",
    "performance",
    "transaction",
    "index",
    "parallel",
    "optimization",
    "stream",
    "storage",
    "graph",
    "learning",
    "semantic",
    "cache",
    "concurrency",
    "recovery",
    "parametric",
    "spatial",
    "temporal",
    "probabilistic",
    "keyword",
    "search",
    "join",
    "aggregation",
    "mining",
    "clustering",
    "replication",
    "scheduling",
    "compression",
    "encryption",
    "provenance",
    "workflow",
    "benchmark",
    "visualization",
    "crowdsourcing",
    "federated",
    "approximate",
    "adaptive",
    "incremental",
    "declarative",
    "transactional",
    "columnar",
    "versioning",
    "sampling",
    "sketching",
    "partitioning",
    "serialization",
    "deduplication",
    "normalization",
    "materialized",
    "heterogeneous",
    "multidimensional",
    "autonomic",
    "selectivity",
    "cardinality",
    "lineage",
    "entity",
    "resolution",
    "schema",
    "matching",
    "integration",
    "migration",
    "anonymization",
    "differential",
    "privacy",
    "consensus",
    "gossip",
    "quorum",
    "snapshot",
    "isolation",
    "logging",
    "checkpointing",
    "vectorized",
    "compilation",
    "codegen",
    "pushdown",
    "predicate",
    "bitmap",
    "inverted",
    "posting",
    "wavelet",
    "histogram",
    "bloom",
    "trie",
    "suffix",
    "prefix",
    "lattice",
    "tensor",
    "embedding",
    "similarity",
    "nearest",
    "neighbour",
    "locality",
    "hashing",
    "shingling",
];

/// Name and title generator.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    topic_zipf: Zipf,
    vocab_size: usize,
}

impl Default for Vocabulary {
    fn default() -> Self {
        Self::new(1.05)
    }
}

impl Vocabulary {
    /// Creates a vocabulary whose topic-word frequencies follow a Zipf
    /// distribution with the given exponent, using a long-tail vocabulary of
    /// 2000 words (the named words above plus synthetic `topicNNN` words) so
    /// that genuinely rare title terms exist at every scale.
    pub fn new(topic_exponent: f64) -> Self {
        Self::with_size(2000, topic_exponent)
    }

    /// Creates a vocabulary with an explicit vocabulary size.
    pub fn with_size(vocab_size: usize, topic_exponent: f64) -> Self {
        let vocab_size = vocab_size.max(TOPIC_WORDS.len());
        Vocabulary {
            topic_zipf: Zipf::new(vocab_size, topic_exponent),
            vocab_size,
        }
    }

    /// Number of distinct topic words.
    pub fn num_topic_words(&self) -> usize {
        self.vocab_size
    }

    /// The `rank`-th most frequent topic word.
    pub fn topic_word(&self, rank: usize) -> String {
        let rank = rank.min(self.vocab_size - 1);
        if rank < TOPIC_WORDS.len() {
            TOPIC_WORDS[rank].to_string()
        } else {
            format!("topic{rank}")
        }
    }

    /// Generates a person name; `index` makes names unique ("jomason-17
    /// kagupta"-style suffixes are avoided by embedding the index into the
    /// surname, keeping each full name a rare term).
    pub fn person_name<R: Rng + ?Sized>(&self, rng: &mut R, index: usize) -> String {
        let first = format!(
            "{}{}",
            FIRST_SYLLABLES[rng.gen_range(0..FIRST_SYLLABLES.len())],
            LAST_SYLLABLES[rng.gen_range(0..LAST_SYLLABLES.len())]
        );
        let last = format!(
            "{}{}{}",
            FIRST_SYLLABLES[rng.gen_range(0..FIRST_SYLLABLES.len())],
            LAST_SYLLABLES[rng.gen_range(0..LAST_SYLLABLES.len())],
            index
        );
        format!("{} {}", capitalize(&first), capitalize(&last))
    }

    /// Generates a title of `len` topic words drawn from the Zipf
    /// distribution (duplicates allowed, as in real titles).
    pub fn title<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> String {
        (0..len.max(1))
            .map(|_| self.topic_word(self.topic_zipf.sample(rng)))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Generates a venue/company/category name.
    pub fn org_name<R: Rng + ?Sized>(&self, rng: &mut R, kind: &str, index: usize) -> String {
        let word = self.topic_word(self.topic_zipf.sample(rng));
        format!("{} {} {}", capitalize(&word), kind, index)
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_distinct_across_indices() {
        let vocab = Vocabulary::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let a = vocab.person_name(&mut rng, 1);
        let b = vocab.person_name(&mut rng, 2);
        assert_ne!(a, b);
        assert!(a.contains('1'));
        assert!(b.contains('2'));
        assert!(a.split(' ').count() == 2);
    }

    #[test]
    fn titles_use_topic_words() {
        let vocab = Vocabulary::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let title = vocab.title(&mut rng, 6);
        assert_eq!(title.split(' ').count(), 6);
        for word in title.split(' ') {
            assert!(
                TOPIC_WORDS.contains(&word) || word.starts_with("topic"),
                "unexpected word {word}"
            );
        }
        // zero-length request still yields one word
        assert_eq!(vocab.title(&mut rng, 0).split(' ').count(), 1);
    }

    #[test]
    fn top_topic_words_dominate_titles() {
        let vocab = Vocabulary::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut count_top = 0usize;
        let mut count_rare = 0usize;
        for _ in 0..2000 {
            let title = vocab.title(&mut rng, 8);
            count_top += title.split(' ').filter(|w| *w == TOPIC_WORDS[0]).count();
            count_rare += title
                .split(' ')
                .filter(|w| *w == TOPIC_WORDS[TOPIC_WORDS.len() - 1])
                .count();
        }
        assert!(
            count_top > count_rare * 3,
            "top word {count_top} vs rare {count_rare}"
        );
    }

    #[test]
    fn org_names_and_helpers() {
        let vocab = Vocabulary::default();
        let mut rng = SmallRng::seed_from_u64(4);
        let org = vocab.org_name(&mut rng, "Conference", 3);
        assert!(org.contains("Conference 3"));
        assert_eq!(vocab.topic_word(0), "database");
        assert_eq!(vocab.topic_word(150), "topic150");
        assert_eq!(vocab.topic_word(10_000), "topic1999");
        assert!(vocab.num_topic_words() >= 2000);
        assert_eq!(
            Vocabulary::with_size(10, 1.0).num_topic_words(),
            TOPIC_WORDS.len()
        );
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("query"), "Query");
    }
}
