//! Synthetic IMDB-like dataset generator (movies, actors, directors,
//! genres), used by the paper's `IQ*` sample queries such as
//! "Keanu Matrix Thomas".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banks_relational::{Database, DatabaseSchema, GraphExtraction, TableId};

use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use crate::Dataset;

/// Configuration of the IMDB-like generator.
#[derive(Clone, Copy, Debug)]
pub struct ImdbConfig {
    /// Number of person tuples (actors and directors share the table).
    pub num_persons: usize,
    /// Number of movie tuples.
    pub num_movies: usize,
    /// Number of genre tuples.
    pub num_genres: usize,
    /// Maximum cast size per movie.
    pub max_cast: usize,
    /// Number of words per movie title.
    pub title_words: usize,
    /// Zipf exponent for actor popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            num_persons: 4_000,
            num_movies: 3_000,
            num_genres: 20,
            max_cast: 6,
            title_words: 4,
            skew: 0.9,
            seed: 43,
        }
    }
}

impl ImdbConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        ImdbConfig {
            num_persons: 80,
            num_movies: 60,
            num_genres: 5,
            seed: 11,
            ..Default::default()
        }
    }
}

/// The generated IMDB-like dataset plus its table ids.
#[derive(Debug)]
pub struct ImdbDataset {
    /// Relational + graph forms.
    pub dataset: Dataset,
    /// `person(name)` table.
    pub person: TableId,
    /// `movie(title)` table.
    pub movie: TableId,
    /// `casts(actor, movie, character)` table.
    pub casts: TableId,
    /// `directs(director, movie)` table.
    pub directs: TableId,
    /// `genre(name)` table.
    pub genre: TableId,
    /// `movie_genre(movie, genre)` table.
    pub movie_genre: TableId,
}

impl ImdbDataset {
    /// Generates a dataset.
    pub fn generate(config: ImdbConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let vocab = Vocabulary::default();

        let mut schema = DatabaseSchema::new();
        let person = schema
            .add_simple_table("person", &["name"], &[])
            .expect("schema");
        let movie = schema
            .add_simple_table("movie", &["title"], &[])
            .expect("schema");
        let casts = schema
            .add_simple_table(
                "casts",
                &["character"],
                &[("actor", person), ("movie", movie)],
            )
            .expect("schema");
        let directs = schema
            .add_simple_table("directs", &[], &[("director", person), ("movie", movie)])
            .expect("schema");
        let genre = schema
            .add_simple_table("genre", &["name"], &[])
            .expect("schema");
        let movie_genre = schema
            .add_simple_table("movie_genre", &[], &[("movie", movie), ("genre", genre)])
            .expect("schema");
        let mut db = Database::new(schema);

        for g in 0..config.num_genres {
            let name = vocab.org_name(&mut rng, "Genre", g);
            db.insert(genre, vec![name.into()]).expect("insert");
        }
        for p in 0..config.num_persons {
            let name = vocab.person_name(&mut rng, p);
            db.insert(person, vec![name.into()]).expect("insert");
        }

        let person_zipf = Zipf::new(config.num_persons.max(1), config.skew);
        for _ in 0..config.num_movies {
            let title = vocab.title(&mut rng, config.title_words);
            let movie_row = db.insert(movie, vec![title.into()]).expect("insert");
            // cast (popular actors appear in many movies)
            let cast_size = rng.gen_range(1..=config.max_cast.max(1));
            let mut cast: Vec<u32> = Vec::with_capacity(cast_size);
            while cast.len() < cast_size {
                let candidate = person_zipf.sample(&mut rng) as u32;
                if !cast.contains(&candidate) {
                    cast.push(candidate);
                }
            }
            for actor in &cast {
                let character = vocab.person_name(&mut rng, *actor as usize + 100_000);
                db.insert(
                    casts,
                    vec![character.into(), (*actor).into(), movie_row.into()],
                )
                .expect("insert");
            }
            // director
            let director = person_zipf.sample(&mut rng) as u32;
            db.insert(directs, vec![director.into(), movie_row.into()])
                .expect("insert");
            // genres
            let genre_row = rng.gen_range(0..config.num_genres as u32);
            db.insert(movie_genre, vec![movie_row.into(), genre_row.into()])
                .expect("insert");
        }

        let extraction = GraphExtraction::extract(&db);
        ImdbDataset {
            dataset: Dataset { db, extraction },
            person,
            movie,
            casts,
            directs,
            genre,
            movie_genre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_dataset() {
        let d = ImdbDataset::generate(ImdbConfig::tiny());
        let db = &d.dataset.db;
        assert_eq!(db.num_rows(d.person), 80);
        assert_eq!(db.num_rows(d.movie), 60);
        assert_eq!(db.num_rows(d.genre), 5);
        assert!(db.num_rows(d.casts) >= 60);
        assert_eq!(db.num_rows(d.directs), 60);
        assert!(db.check_integrity().is_ok());
        assert_eq!(d.dataset.graph().num_nodes(), db.total_rows());
    }

    #[test]
    fn popular_actor_has_large_fanin() {
        let d = ImdbDataset::generate(ImdbConfig::tiny());
        // person row 0 is the most popular under the Zipf draw
        let node = d
            .dataset
            .extraction
            .node_of(banks_relational::TupleId::new(d.person, 0));
        let fanin = d.dataset.graph().forward_indegree(node);
        assert!(
            fanin >= 5,
            "expected popular actor to have large fan-in, got {fanin}"
        );
    }

    #[test]
    fn actor_and_movie_queries_resolve() {
        let d = ImdbDataset::generate(ImdbConfig::tiny());
        let name = d.dataset.db.row_text(d.person, 3).to_lowercase();
        let matches = d.dataset.index().matching_nodes(d.dataset.graph(), &name);
        assert!(!matches.is_empty());
        // the relation name "movie" matches every movie tuple (and, because
        // "movie_genre" tokenises to the same word, every movie_genre tuple)
        let movies = d.dataset.index().matching_nodes(d.dataset.graph(), "movie");
        assert!(movies.len() >= 60);
        let movie_kind = d.dataset.graph().kind_by_name("movie").unwrap();
        let movie_only = movies
            .iter()
            .filter(|n| d.dataset.graph().node_kind(**n) == movie_kind)
            .count();
        assert_eq!(movie_only, 60);
    }
}
