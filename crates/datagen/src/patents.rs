//! Synthetic US-Patents-like dataset generator (patents, inventors,
//! assignee companies, categories, citations), used by the paper's `UQ*`
//! sample queries such as "Microsoft recovery".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banks_relational::{Database, DatabaseSchema, GraphExtraction, TableId};

use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use crate::Dataset;

/// Configuration of the patents generator.
#[derive(Clone, Copy, Debug)]
pub struct PatentsConfig {
    /// Number of inventor tuples.
    pub num_inventors: usize,
    /// Number of patent tuples.
    pub num_patents: usize,
    /// Number of assignee (company) tuples.
    pub num_assignees: usize,
    /// Number of category tuples.
    pub num_categories: usize,
    /// Maximum inventors per patent.
    pub max_inventors_per_patent: usize,
    /// Average citations per patent.
    pub citations_per_patent: usize,
    /// Words per patent title.
    pub title_words: usize,
    /// Zipf exponent for assignee / inventor popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PatentsConfig {
    fn default() -> Self {
        PatentsConfig {
            num_inventors: 4_000,
            num_patents: 6_000,
            num_assignees: 100,
            num_categories: 30,
            max_inventors_per_patent: 3,
            citations_per_patent: 4,
            title_words: 10,
            skew: 1.0,
            seed: 44,
        }
    }
}

impl PatentsConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        PatentsConfig {
            num_inventors: 60,
            num_patents: 100,
            num_assignees: 8,
            num_categories: 5,
            seed: 13,
            ..Default::default()
        }
    }
}

/// The generated patents dataset plus its table ids.
#[derive(Debug)]
pub struct PatentsDataset {
    /// Relational + graph forms.
    pub dataset: Dataset,
    /// `assignee(name)` table.
    pub assignee: TableId,
    /// `category(name)` table.
    pub category: TableId,
    /// `inventor(name)` table.
    pub inventor: TableId,
    /// `patent(title, assignee, category)` table.
    pub patent: TableId,
    /// `invented_by(inventor, patent)` table.
    pub invented_by: TableId,
    /// `patent_cites(citing, cited)` table.
    pub patent_cites: TableId,
}

impl PatentsDataset {
    /// Generates a dataset.
    pub fn generate(config: PatentsConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let vocab = Vocabulary::default();

        let mut schema = DatabaseSchema::new();
        let assignee = schema
            .add_simple_table("assignee", &["name"], &[])
            .expect("schema");
        let category = schema
            .add_simple_table("category", &["name"], &[])
            .expect("schema");
        let inventor = schema
            .add_simple_table("inventor", &["name"], &[])
            .expect("schema");
        let patent = schema
            .add_simple_table(
                "patent",
                &["title"],
                &[("assignee", assignee), ("category", category)],
            )
            .expect("schema");
        let invented_by = schema
            .add_simple_table(
                "invented_by",
                &[],
                &[("inventor", inventor), ("patent", patent)],
            )
            .expect("schema");
        let patent_cites = schema
            .add_simple_table(
                "patent_cites",
                &[],
                &[("citing", patent), ("cited", patent)],
            )
            .expect("schema");
        let mut db = Database::new(schema);

        for a in 0..config.num_assignees {
            let name = vocab.org_name(&mut rng, "Corporation", a);
            db.insert(assignee, vec![name.into()]).expect("insert");
        }
        for c in 0..config.num_categories {
            let name = vocab.org_name(&mut rng, "Class", c);
            db.insert(category, vec![name.into()]).expect("insert");
        }
        for i in 0..config.num_inventors {
            let name = vocab.person_name(&mut rng, i);
            db.insert(inventor, vec![name.into()]).expect("insert");
        }

        let inventor_zipf = Zipf::new(config.num_inventors.max(1), config.skew);
        let assignee_zipf = Zipf::new(config.num_assignees.max(1), config.skew);
        for _ in 0..config.num_patents {
            let title = vocab.title(&mut rng, config.title_words);
            let company = assignee_zipf.sample(&mut rng) as u32;
            let class = rng.gen_range(0..config.num_categories as u32);
            let patent_row = db
                .insert(patent, vec![title.into(), company.into(), class.into()])
                .expect("insert");
            let team = rng.gen_range(1..=config.max_inventors_per_patent.max(1));
            let mut chosen: Vec<u32> = Vec::with_capacity(team);
            while chosen.len() < team {
                let candidate = inventor_zipf.sample(&mut rng) as u32;
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
            }
            for inv in chosen {
                db.insert(invented_by, vec![inv.into(), patent_row.into()])
                    .expect("insert");
            }
        }
        for citing in 1..config.num_patents as u32 {
            let popularity = Zipf::new(citing as usize, config.skew + 0.2);
            let count = rng.gen_range(0..=config.citations_per_patent);
            for _ in 0..count {
                let cited = popularity.sample(&mut rng) as u32;
                if cited != citing {
                    db.insert(patent_cites, vec![citing.into(), cited.into()])
                        .expect("insert");
                }
            }
        }

        let extraction = GraphExtraction::extract(&db);
        PatentsDataset {
            dataset: Dataset { db, extraction },
            assignee,
            category,
            inventor,
            patent,
            invented_by,
            patent_cites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_dataset() {
        let d = PatentsDataset::generate(PatentsConfig::tiny());
        let db = &d.dataset.db;
        assert_eq!(db.num_rows(d.patent), 100);
        assert_eq!(db.num_rows(d.assignee), 8);
        assert!(db.num_rows(d.invented_by) >= 100);
        assert!(db.check_integrity().is_ok());
        assert_eq!(d.dataset.graph().num_nodes(), db.total_rows());
    }

    #[test]
    fn company_keyword_matches_assignee_and_connects_to_patents() {
        let d = PatentsDataset::generate(PatentsConfig::tiny());
        let name = d.dataset.db.row_text(d.assignee, 0).to_lowercase();
        let first_word = name.split(' ').next().unwrap();
        let matches = d
            .dataset
            .index()
            .matching_nodes(d.dataset.graph(), first_word);
        assert!(!matches.is_empty());
        // the most popular assignee is a hub
        let node = d
            .dataset
            .extraction
            .node_of(banks_relational::TupleId::new(d.assignee, 0));
        assert!(d.dataset.graph().forward_indegree(node) >= 5);
    }

    #[test]
    fn determinism_per_seed() {
        let a = PatentsDataset::generate(PatentsConfig::tiny());
        let b = PatentsDataset::generate(PatentsConfig::tiny());
        assert_eq!(
            a.dataset.graph().num_original_edges(),
            b.dataset.graph().num_original_edges()
        );
    }
}
