//! A small Zipf (power-law) sampler.
//!
//! Keyword frequencies in DBLP/IMDB titles are heavily skewed: a handful of
//! words (`database`, `system`, `john`) match tens of thousands of tuples
//! while most words match a few.  The generators use this sampler to draw
//! title words, author productivity, citation targets and cast sizes so the
//! synthetic graphs show the same skew.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n`; rank 0 is the most probable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[rank] - self.cumulative[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_are_more_frequent() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[50]);
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| zipf.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(zipf.pmf(99), 0.0);
        assert_eq!(zipf.len(), 50);
        assert!(!zipf.is_empty());
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((zipf.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let zipf = Zipf::new(30, 1.0);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..20).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_empty_distribution() {
        let _ = Zipf::new(0, 1.0);
    }
}
