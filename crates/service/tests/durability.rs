//! Service-level durability: WAL-first mutation acknowledgement, crash
//! recovery through `ServiceBuilder::persistence`, checkpointing, and the
//! durability surface in metrics.

use std::path::PathBuf;

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_service::{FsyncPolicy, PersistError, QuerySpec, Service};

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "banks-svc-durable-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dblp_like() -> DataGraph {
    let mut b = GraphBuilder::new();
    let soumen = b.add_node("author", "Soumen Chakrabarti");
    let shashank = b.add_node("author", "Shashank Pandit");
    let banks = b.add_node(
        "paper",
        "Keyword searching and browsing in databases using BANKS",
    );
    let bidir = b.add_node(
        "paper",
        "Bidirectional expansion for keyword search on graph databases",
    );
    let w0 = b.add_node("writes", "w0");
    let w1 = b.add_node("writes", "w1");
    let w2 = b.add_node("writes", "w2");
    b.add_edge(w0, soumen).unwrap();
    b.add_edge(w0, banks).unwrap();
    b.add_edge(w1, shashank).unwrap();
    b.add_edge(w1, bidir).unwrap();
    b.add_edge(w2, soumen).unwrap();
    b.add_edge(w2, bidir).unwrap();
    b.build_default()
}

fn decoy() -> DataGraph {
    let mut b = GraphBuilder::new();
    b.add_node("author", "Decoy Author");
    b.build_default()
}

/// Roots + scores of the top answers, engine by engine — the equivalence
/// fingerprint that must survive a crash.
fn answers(service: &Service, query: &str) -> Vec<(String, Vec<(u32, u64)>)> {
    let mut per_engine = Vec::new();
    for engine in service.engine_names() {
        let spec = QuerySpec::parse(query).engine(engine).top_k(5);
        let (outcome, _) = service.submit(spec).unwrap().wait();
        per_engine.push((
            engine.to_string(),
            outcome
                .answers
                .iter()
                .map(|a| (a.tree.root.0, a.tree.score.to_bits()))
                .collect(),
        ));
    }
    per_engine
}

#[test]
fn mutations_survive_a_crash_and_answers_match_on_all_engines() {
    let dir = tmp_dir("equiv");
    let pre_epoch;
    let pre_answers;
    let pre_wal_records;
    {
        let service = Service::builder(dblp_like())
            .workers(2)
            .persistence(&dir, FsyncPolicy::Always)
            .build();
        let report = service.apply_mutations(
            &MutationBatch::new()
                .add_node("author", "Rushi Desai")
                .add_node("writes", "w3")
                .add_edge(NodeId(8), NodeId(7))
                .add_edge(NodeId(8), NodeId(3)),
        );
        assert!(report.swapped);
        assert!(report.persist_error.is_none());
        let report = service
            .apply_mutations(&MutationBatch::new().set_label(NodeId(0), "Soumen Chakrabarti IITB"));
        assert!(report.swapped);
        pre_epoch = service.epoch();
        pre_answers = answers(&service, "soumen keyword");
        // Simulated crash: the service is dropped with a non-empty WAL.
        // (The first batch compacted the tiny graph and hence checkpointed;
        // the second batch is the WAL suffix recovery must replay.)
        pre_wal_records = service.durability().wal_records;
        assert!(pre_wal_records >= 1);
    }

    // Reboot with a decoy builder graph: recovery must ignore it.
    let service = Service::builder(decoy())
        .workers(2)
        .persistence(&dir, FsyncPolicy::Always)
        .build();
    assert_eq!(service.epoch(), pre_epoch, "recovered the pre-crash epoch");
    let status = service.durability();
    assert!(status.enabled);
    assert_eq!(
        status.replayed_records, pre_wal_records,
        "exactly the WAL suffix replayed"
    );
    let post_answers = answers(&service, "soumen keyword");
    assert_eq!(
        post_answers, pre_answers,
        "every engine answers identically after recovery"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_truncates_wal_and_restarts_replay_free() {
    let dir = tmp_dir("ckpt");
    {
        let service = Service::builder(dblp_like())
            .persistence(&dir, FsyncPolicy::Always)
            .build();
        service.apply_mutations(&MutationBatch::new().add_node("author", "Extra"));
        assert_eq!(service.durability().wal_records, 1);
        let epoch = service.checkpoint().unwrap();
        assert_eq!(epoch, service.epoch());
        let status = service.durability();
        assert_eq!(status.wal_records, 0, "checkpoint truncates the WAL");
        assert_eq!(status.last_checkpoint_epoch, epoch);
    }
    let service = Service::builder(decoy())
        .persistence(&dir, FsyncPolicy::Always)
        .build();
    assert_eq!(service.durability().replayed_records, 0, "clean shutdown");
    assert_eq!(service.snapshot().graph().num_nodes(), 8);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_without_persistence_is_disabled() {
    let service = Service::builder(dblp_like()).build();
    assert!(matches!(service.checkpoint(), Err(PersistError::Disabled)));
    let status = service.durability();
    assert!(!status.enabled);
    assert_eq!(status.wal_records, 0);
    let metrics = service.metrics();
    assert!(!metrics.persistence_enabled);
    assert_eq!(metrics.wal_bytes, 0);
}

#[test]
fn swap_graph_checkpoints_immediately() {
    let dir = tmp_dir("swap");
    let swapped_epoch;
    {
        let service = Service::builder(dblp_like())
            .persistence(&dir, FsyncPolicy::Always)
            .build();
        swapped_epoch = service.swap_graph(decoy());
        let status = service.durability();
        assert_eq!(
            status.last_checkpoint_epoch, swapped_epoch,
            "wholesale swap is made durable by a checkpoint"
        );
    }
    let service = Service::builder(dblp_like())
        .persistence(&dir, FsyncPolicy::Always)
        .build();
    assert_eq!(service.epoch(), swapped_epoch);
    assert_eq!(service.snapshot().graph().num_nodes(), 1, "decoy recovered");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_surface_durability_and_log_occupancy() {
    let dir = tmp_dir("metrics");
    let service = Service::builder(dblp_like())
        .persistence(&dir, FsyncPolicy::EveryN(8))
        .mutation_log_capacity(2)
        .build();
    for i in 0..5 {
        service.apply_mutations(&MutationBatch::new().add_node("author", format!("M{i}")));
    }
    let metrics = service.metrics();
    assert!(metrics.persistence_enabled);
    assert_eq!(metrics.wal_records, 5);
    assert!(metrics.wal_bytes > 0);
    assert!(metrics.checkpoints >= 1, "boot checkpoint counted");
    assert_eq!(metrics.mutation_log_entries, 2, "ring capped at 2");
    assert_eq!(metrics.mutation_log_dropped, 3);
    assert_eq!(metrics.mutation_batches, 5);
    drop(service);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejected_batches_touch_neither_wal_nor_epoch() {
    let dir = tmp_dir("reject");
    let service = Service::builder(dblp_like())
        .persistence(&dir, FsyncPolicy::Always)
        .build();
    let before = service.epoch();
    // Every op invalid: edge endpoints that do not exist.
    let report = service.apply_mutations(&MutationBatch::new().add_edge(NodeId(900), NodeId(901)));
    assert!(!report.swapped);
    assert_eq!(service.epoch(), before);
    assert_eq!(service.durability().wal_records, 0, "nothing logged");
    drop(service);
    std::fs::remove_dir_all(&dir).unwrap();
}
