//! Concurrency stress tests for the query service.
//!
//! The acceptance bar: N queries executed concurrently on the worker pool
//! return **byte-identical** answers to serial execution for all three
//! engines; cancellation halts a query mid-stream; identical queries
//! against the same graph epoch hit the cache with zero engine work; and a
//! graph-epoch bump invalidates the cache.
//!
//! Race bugs rarely reproduce in debug builds — CI runs this file under
//! `--release` as well.

use std::sync::Arc;

use banks_core::{
    AnswerTree, Banks, EmissionPolicy, RankedAnswer, ResultCache, SearchParams, SearchStats,
};
use banks_datagen::{DblpConfig, DblpDataset, WorkloadConfig, WorkloadGenerator};
use banks_graph::{DataGraph, GraphBuilder};
use banks_service::{QuerySpec, Service, SubmitError};

const ENGINES: [&str; 3] = ["bidirectional", "si-backward", "mi-backward"];

fn dblp() -> DblpDataset {
    DblpDataset::generate(DblpConfig {
        num_authors: 120,
        num_papers: 240,
        num_conferences: 4,
        seed: 99,
        ..DblpConfig::default()
    })
}

/// The comparable portion of an answer: rank and the full tree (root,
/// paths, score) — everything except wall-clock timings.
fn comparable(answers: &[RankedAnswer]) -> Vec<(usize, AnswerTree)> {
    answers.iter().map(|a| (a.rank, a.tree.clone())).collect()
}

#[test]
fn concurrent_answers_are_byte_identical_to_serial_for_all_engines() {
    let data = dblp();
    let graph = data.dataset.graph();
    let index = data.dataset.index().clone();

    let mut generator = WorkloadGenerator::new(&data, 5);
    let cases = generator.generate(&WorkloadConfig {
        num_queries: 6,
        num_keywords: 2,
        compute_ground_truth: false,
        ..WorkloadConfig::default()
    });
    assert!(!cases.is_empty());

    // Serial ground truth through the facade (no cache).
    let banks = Banks::open(graph).with_index(index.clone());
    let mut expected = Vec::new();
    for case in &cases {
        for engine in ENGINES {
            let outcome = banks
                .query_parsed(&case.query())
                .engine(engine)
                .top_k(25)
                .run();
            expected.push(comparable(&outcome.answers));
        }
    }

    // The same (query, engine) matrix, all in flight at once on the pool.
    // Cache capacity 0: every submission must genuinely execute.
    let service = Service::builder(graph.clone())
        .workers(4)
        .queue_capacity(256)
        .cache_capacity(0)
        .index(index)
        .build();
    let mut handles = Vec::new();
    for case in &cases {
        for engine in ENGINES {
            let spec = QuerySpec::new(case.query())
                .params(SearchParams::with_top_k(25))
                .engine(engine);
            handles.push(service.submit(spec).expect("submit"));
        }
    }
    for (i, handle) in handles.into_iter().enumerate() {
        let (outcome, result) = handle.wait();
        assert!(!result.cache_hit);
        assert!(!outcome.stats.cancelled);
        assert_eq!(
            comparable(&outcome.answers),
            expected[i],
            "concurrent answers differ from serial (submission {i})"
        );
    }

    let metrics = service.metrics();
    assert_eq!(metrics.submitted as usize, cases.len() * ENGINES.len());
    assert_eq!(metrics.executed, metrics.submitted);
    assert_eq!(metrics.completed, metrics.submitted);
    assert_eq!(metrics.cache_hits, 0);
    assert_eq!(metrics.cancelled, 0);
}

/// A wide forest of `root -> {alpha leaf, beta leaf}` stars: the query
/// `alpha beta` has one answer per star, emitted incrementally as the
/// expansion reaches each root — plenty of mid-stream surface.
fn star_forest(n: usize) -> DataGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        let a = b.add_node("alpha", format!("alpha {i}"));
        let z = b.add_node("beta", format!("beta {i}"));
        let root = b.add_node("writes", format!("w{i}"));
        b.add_edge(root, a).unwrap();
        b.add_edge(root, z).unwrap();
    }
    b.build_default()
}

#[test]
fn cancellation_halts_a_query_mid_stream() {
    let n = 20_000;
    let graph = star_forest(n);
    let spec = || {
        QuerySpec::keywords(["alpha", "beta"])
            .params(SearchParams::with_top_k(n + 10).emission(EmissionPolicy::Immediate))
    };

    let service = Service::builder(graph).workers(2).cache_capacity(0).build();

    // Cancel right after the first answer arrives: the bulk of the stream
    // is still unexplored, so the abort lands mid-flight.
    let handle = service.submit(spec()).expect("submit");
    let first = handle.next_answer().expect("first answer");
    assert_eq!(first.rank, 0);
    handle.cancel();
    let (outcome, result) = handle.wait();
    assert!(
        outcome.stats.cancelled,
        "worker must record the cooperative abort"
    );
    assert!(!result.cache_hit);
    assert!(
        outcome.answers.len() < n,
        "cancellation must stop the stream well short of all {n} answers \
         (got {})",
        outcome.answers.len()
    );

    // A cancelled run is never cached: resubmitting executes afresh and,
    // undisturbed, produces every answer.
    let (full, result) = service.submit(spec()).expect("submit").wait();
    assert!(!result.cache_hit);
    assert!(!full.stats.cancelled);
    assert_eq!(full.answers.len(), n);

    let metrics = service.metrics();
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.executed, 2);
}

#[test]
fn identical_queries_hit_the_cache_with_zero_engine_work() {
    let data = dblp();
    let graph = data.dataset.graph().clone();
    let index = data.dataset.index().clone();
    let service = Service::builder(graph)
        .workers(2)
        .cache_capacity(64)
        .index(index)
        .build();

    let spec = || QuerySpec::parse("database systems").top_k(10);

    let (first, first_result) = service.submit(spec()).expect("submit").wait();
    assert!(!first_result.cache_hit);
    assert_eq!(service.metrics().executed, 1);

    // Same keywords (modulo case — normalization is shared), same params,
    // same epoch: served from the cache without touching a worker.
    let (second, second_result) = service
        .submit(QuerySpec::parse("DATABASE   Systems").top_k(10))
        .expect("submit")
        .wait();
    assert!(
        second_result.cache_hit,
        "identical query must hit the cache"
    );
    assert_eq!(
        service.metrics().executed,
        1,
        "a cache hit performs zero engine work"
    );
    assert_eq!(comparable(&first.answers), comparable(&second.answers));
    assert_eq!(first.stats, second.stats);

    // Different params or engine: distinct key, fresh execution.
    let (_, third_result) = service
        .submit(spec().engine("mi-backward"))
        .expect("submit")
        .wait();
    assert!(!third_result.cache_hit);
    assert_eq!(service.metrics().executed, 2);

    let metrics = service.metrics();
    assert_eq!(metrics.cache_hits, 1);
    assert!((metrics.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
}

#[test]
fn epoch_bump_invalidates_the_shared_cache() {
    let data = dblp();
    let index = data.dataset.index().clone();
    let cache = Arc::new(ResultCache::new(64));
    let spec = || QuerySpec::parse("database").top_k(5);

    let graph_v1 = data.dataset.graph().clone();
    {
        let service = Service::builder(graph_v1)
            .workers(1)
            .shared_cache(Arc::clone(&cache))
            .index(index.clone())
            .build();
        let (_, r1) = service.submit(spec()).expect("submit").wait();
        assert!(!r1.cache_hit);
        let (_, r2) = service.submit(spec()).expect("submit").wait();
        assert!(r2.cache_hit);
    }

    // Same data, same shared cache — but the graph was bumped to a new
    // epoch, so the old entry must not be served.
    let mut graph_v2 = data.dataset.graph().clone();
    graph_v2.bump_epoch();
    {
        let service = Service::builder(graph_v2)
            .workers(1)
            .shared_cache(Arc::clone(&cache))
            .index(index)
            .build();
        let (_, r3) = service.submit(spec()).expect("submit").wait();
        assert!(
            !r3.cache_hit,
            "a bumped epoch must invalidate cached results"
        );
        assert_eq!(service.metrics().executed, 1);
    }
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 2);
}

#[test]
fn bounded_queue_rejects_when_full() {
    let n = 20_000;
    let graph = star_forest(n);
    let slow = || {
        QuerySpec::keywords(["alpha", "beta"])
            .params(SearchParams::with_top_k(n + 10).emission(EmissionPolicy::Immediate))
    };

    // One worker, queue bound 1: the first query occupies the worker, the
    // second waits, the third must be rejected.
    let service = Service::builder(graph)
        .workers(1)
        .queue_capacity(1)
        .cache_capacity(0)
        .build();
    let running = service.submit(slow()).expect("first accepted");
    // Ensure the worker picked the first job up before filling the queue.
    let _ = running.next_answer();
    let queued = service.submit(slow()).expect("second accepted (queued)");
    let rejected = service.submit(slow());
    match rejected.err() {
        Some(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 1),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.metrics().rejected, 1);

    // Unblock everything so shutdown is quick.
    running.cancel();
    queued.cancel();
    let (a, _) = running.wait();
    let (b, _) = queued.wait();
    assert!(a.stats.cancelled);
    assert!(b.stats.cancelled);
}

#[test]
fn wait_after_draining_answers_reports_the_real_result() {
    let graph = star_forest(8);
    let service = Service::builder(graph).workers(1).cache_capacity(0).build();
    let handle = service
        .submit(QuerySpec::keywords(["alpha", "beta"]).top_k(8))
        .expect("submit");

    // Drain every answer through next_answer (which consumes the Finished
    // event on the way out)...
    let mut drained = 0usize;
    while handle.next_answer().is_some() {
        drained += 1;
    }
    assert!(drained > 0);
    // ...the terminal result must still be the real one, not a fabricated
    // "cancelled" placeholder.
    let stashed = handle.result().expect("terminal result observed");
    assert!(!stashed.stats.cancelled);
    let (outcome, result) = handle.wait();
    assert!(!result.stats.cancelled, "completed query misreported");
    assert_eq!(result.stats.answers_output, drained);
    assert!(outcome.answers.is_empty(), "answers were already drained");
}

#[test]
fn unknown_engine_is_rejected_with_suggestions() {
    let graph = star_forest(4);
    let service = Service::builder(graph).workers(1).build();
    let err = service
        .submit(QuerySpec::parse("alpha beta").engine("bidirectonal"))
        .err()
        .expect("unknown engine must be rejected");
    match &err {
        SubmitError::UnknownEngine(unknown) => {
            assert_eq!(unknown.suggestion, Some("bidirectional"));
            assert!(unknown.known.contains(&"mi-backward"));
        }
        other => panic!("expected UnknownEngine, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(rendered.contains("unknown engine"));
    assert!(rendered.contains("did you mean"));
}

#[test]
fn live_stats_are_observable_and_monotone_while_running() {
    let n = 20_000;
    let graph = star_forest(n);
    let service = Service::builder(graph).workers(1).cache_capacity(0).build();
    let handle = service
        .submit(
            QuerySpec::keywords(["alpha", "beta"])
                .params(SearchParams::with_top_k(n + 10).emission(EmissionPolicy::Immediate)),
        )
        .expect("submit");

    let mut previous = SearchStats::default();
    let mut observed = 0usize;
    let mut finished = None;
    while let Some(event) = handle.recv() {
        match event {
            banks_service::QueryEvent::Answer(_) => {
                let live = handle.live_stats();
                assert!(live.nodes_explored >= previous.nodes_explored);
                assert!(live.answers_output >= previous.answers_output);
                previous = live;
                observed += 1;
                if observed == 500 {
                    handle.cancel();
                }
            }
            banks_service::QueryEvent::Finished(result) => {
                finished = Some(result);
                break;
            }
        }
    }
    let result = finished.expect("terminal event");
    assert!(result.stats.cancelled);
    assert!(result.stats.nodes_explored >= previous.nodes_explored);
    assert!(observed >= 500);
    assert!(observed < n, "cancel must land before all answers stream");
}

#[test]
fn work_budget_deadlines_are_deterministic_under_concurrency() {
    let n = 2_000;
    let graph = star_forest(n);
    let service = Service::builder(graph).workers(4).cache_capacity(0).build();
    let spec = || {
        QuerySpec::keywords(["alpha", "beta"]).params(
            SearchParams::with_top_k(n + 10)
                .emission(EmissionPolicy::Immediate)
                .answer_work_budget(5),
        )
    };

    // Fire the same budgeted query many times concurrently: the budget is
    // counted in nodes, not milliseconds, so every run truncates at the
    // same point no matter how loaded the pool is.
    let handles: Vec<_> = (0..16)
        .map(|_| service.submit(spec()).expect("submit"))
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait().0).collect();
    let first = &outcomes[0];
    assert!(first.stats.truncated, "budget must truncate the search");
    for outcome in &outcomes[1..] {
        assert_eq!(outcome.stats.nodes_explored, first.stats.nodes_explored);
        assert_eq!(outcome.answers.len(), first.answers.len());
        assert_eq!(comparable(&outcome.answers), comparable(&first.answers));
    }
}
