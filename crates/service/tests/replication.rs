//! Follower-side replication through the service API: WAL record apply
//! (`Service::apply_replicated`), snapshot bootstrap
//! (`Service::install_replicated_snapshot`), idempotent stream resume,
//! epoch-gap detection, local durability of replicated state, and the
//! runtime SLO configuration surface.

use std::path::PathBuf;

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_persist::read_snapshot;
use banks_service::{
    parse_slo_specs, FsyncPolicy, GraphSnapshot, QuerySpec, ReplicationApplyError, ReplicationRole,
    Service, SloSpec,
};

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "banks-svc-replica-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A DBLP-style core plus enough filler nodes that the small batches
/// below never push the copy-on-write overlay over the service's 0.25
/// compaction threshold — compaction would checkpoint and truncate the
/// leader WAL mid-test, making the streamed record set nondeterministic.
fn dblp_like() -> DataGraph {
    let mut b = GraphBuilder::new();
    let soumen = b.add_node("author", "Soumen Chakrabarti");
    let shashank = b.add_node("author", "Shashank Pandit");
    let banks = b.add_node("paper", "Keyword searching in databases using BANKS");
    let bidir = b.add_node("paper", "Bidirectional expansion for keyword search");
    let w0 = b.add_node("writes", "w0");
    let w1 = b.add_node("writes", "w1");
    let w2 = b.add_node("writes", "w2");
    b.add_edge(w0, soumen).unwrap();
    b.add_edge(w0, banks).unwrap();
    b.add_edge(w1, shashank).unwrap();
    b.add_edge(w1, bidir).unwrap();
    b.add_edge(w2, soumen).unwrap();
    b.add_edge(w2, bidir).unwrap();
    for i in 0..40 {
        b.add_node("filler", format!("filler {i}"));
    }
    b.build_default()
}

fn decoy() -> DataGraph {
    let mut b = GraphBuilder::new();
    b.add_node("author", "Decoy Author");
    b.build_default()
}

/// Roots + scores of the top answers, engine by engine — the fingerprint
/// a follower must reproduce exactly at a shared epoch.
fn answers(service: &Service, query: &str) -> Vec<(String, Vec<(u32, u64)>)> {
    let mut per_engine = Vec::new();
    for engine in service.engine_names() {
        let spec = QuerySpec::parse(query).engine(engine).top_k(5);
        let (outcome, _) = service.submit(spec).unwrap().wait();
        per_engine.push((
            engine.to_string(),
            outcome
                .answers
                .iter()
                .map(|a| (a.tree.root.0, a.tree.score.to_bits()))
                .collect(),
        ));
    }
    per_engine
}

/// Bootstraps a follower from the leader's newest on-disk snapshot, the
/// way the replication client does: decode the snapshot file, rebuild the
/// serving version with the default derivations, install it wholesale.
fn bootstrap_follower(leader: &Service, follower: &Service) -> u64 {
    let (epoch, path) = leader
        .newest_snapshot_file()
        .unwrap()
        .expect("leader has a snapshot");
    let contents = read_snapshot(&path).unwrap();
    assert_eq!(contents.graph.epoch(), epoch);
    let installed =
        follower.install_replicated_snapshot(GraphSnapshot::with_defaults(contents.graph));
    assert_eq!(installed, epoch);
    installed
}

fn leader_batches() -> Vec<MutationBatch> {
    // The base graph has 47 nodes (7 core + 40 filler), so the two nodes
    // the first batch adds get ids 47 and 48.
    vec![
        MutationBatch::new()
            .add_node("paper", "Efficient IR-style keyword search")
            .add_node("writes", "w3")
            .add_edge(NodeId(48), NodeId(0))
            .add_edge(NodeId(48), NodeId(47)),
        MutationBatch::new()
            .set_label(NodeId(3), "Bidirectional search on graph databases")
            .set_weight(NodeId(4), NodeId(0), 2.5),
        MutationBatch::new().remove_node(NodeId(1)),
    ]
}

#[test]
fn follower_replays_the_leader_wal_to_the_same_epoch_and_answers() {
    let leader_dir = tmp_dir("leader");
    let leader = Service::builder(dblp_like())
        .workers(2)
        .persistence(&leader_dir, FsyncPolicy::Always)
        .build();
    let follower = Service::builder(decoy()).workers(2).build();
    follower.set_replication_role(ReplicationRole::Follower);

    bootstrap_follower(&leader, &follower);
    for batch in leader_batches() {
        assert!(leader.apply_mutations(&batch).swapped);
    }

    let records = leader.replication_records_after(0).unwrap();
    assert_eq!(records.len(), 3, "one WAL record per applied batch");
    for record in &records {
        let applied = follower.apply_replicated(record).unwrap();
        assert!(applied.applied);
        assert_eq!(applied.epoch, record.epoch);
    }
    assert_eq!(follower.epoch(), leader.epoch(), "shared serving epoch");
    assert_eq!(
        answers(&follower, "soumen search"),
        answers(&leader, "soumen search"),
        "every engine answers identically at the shared epoch"
    );

    let status = follower.replication_status();
    assert_eq!(status.role, ReplicationRole::Follower);
    assert_eq!(status.applied_epoch, leader.epoch());
    assert_eq!(status.lag_records, 0);
    assert_eq!(status.lag_ms, 0);
    assert_eq!(follower.metrics().replication, status);
}

#[test]
fn resumed_streams_are_idempotent() {
    let leader_dir = tmp_dir("resume");
    let leader = Service::builder(dblp_like())
        .workers(1)
        .persistence(&leader_dir, FsyncPolicy::Always)
        .build();
    let follower = Service::builder(decoy()).workers(1).build();
    bootstrap_follower(&leader, &follower);
    for batch in leader_batches() {
        leader.apply_mutations(&batch);
    }
    let records = leader.replication_records_after(0).unwrap();
    for record in &records {
        follower.apply_replicated(record).unwrap();
    }
    let epoch = follower.epoch();
    // A reconnect replays the whole tail: every record is skipped.
    for record in &records {
        let applied = follower.apply_replicated(record).unwrap();
        assert!(!applied.applied, "already-applied records are skipped");
        assert_eq!(applied.epoch, epoch);
    }
    assert_eq!(follower.epoch(), epoch);
}

#[test]
fn a_record_past_the_serving_epoch_is_an_epoch_gap() {
    let leader_dir = tmp_dir("gap");
    let leader = Service::builder(dblp_like())
        .workers(1)
        .persistence(&leader_dir, FsyncPolicy::Always)
        .build();
    let follower = Service::builder(decoy()).workers(1).build();
    bootstrap_follower(&leader, &follower);
    for batch in leader_batches() {
        leader.apply_mutations(&batch);
    }
    let records = leader.replication_records_after(0).unwrap();
    // Skip the first record: the second builds on an epoch the follower
    // never saw, which must not be silently applied.
    let err = follower.apply_replicated(&records[1]).unwrap_err();
    match err {
        ReplicationApplyError::EpochGap {
            serving_epoch,
            parent_epoch,
            record_epoch,
        } => {
            assert_eq!(serving_epoch, follower.epoch());
            assert_eq!(parent_epoch, records[1].parent_epoch);
            assert_eq!(record_epoch, records[1].epoch);
        }
        other => panic!("expected EpochGap, got {other:?}"),
    }
    // The gap is recoverable: re-bootstrap from the leader's newest
    // snapshot, then the stream tail applies cleanly.
    leader.checkpoint().unwrap();
    bootstrap_follower(&leader, &follower);
    assert_eq!(follower.epoch(), leader.epoch());
    assert!(leader
        .replication_records_after(follower.epoch())
        .unwrap()
        .is_empty());
}

#[test]
fn replicated_state_is_durable_in_the_follower_wal() {
    let leader_dir = tmp_dir("durable-leader");
    let follower_dir = tmp_dir("durable-follower");
    let leader = Service::builder(dblp_like())
        .workers(1)
        .persistence(&leader_dir, FsyncPolicy::Always)
        .build();
    let expected = {
        let follower = Service::builder(decoy())
            .workers(1)
            .persistence(&follower_dir, FsyncPolicy::Always)
            .build();
        bootstrap_follower(&leader, &follower);
        for batch in leader_batches() {
            leader.apply_mutations(&batch);
        }
        for record in &leader.replication_records_after(0).unwrap() {
            follower.apply_replicated(record).unwrap();
        }
        assert_eq!(follower.epoch(), leader.epoch());
        answers(&follower, "soumen search")
        // follower dropped here — the restart below must replay its own
        // WAL back to the same state
    };
    let reborn = Service::builder(decoy())
        .workers(1)
        .persistence(&follower_dir, FsyncPolicy::Always)
        .build();
    assert_eq!(
        reborn.epoch(),
        leader.epoch(),
        "recovery reaches the leader epoch"
    );
    assert_eq!(answers(&reborn, "soumen search"), expected);
}

#[test]
fn bootstrap_installs_checkpoint_and_preserves_the_leader_epoch() {
    let leader_dir = tmp_dir("boot-leader");
    let follower_dir = tmp_dir("boot-follower");
    let leader = Service::builder(dblp_like())
        .workers(1)
        .persistence(&leader_dir, FsyncPolicy::Always)
        .build();
    for batch in leader_batches() {
        leader.apply_mutations(&batch);
    }
    leader.checkpoint().unwrap();

    let follower = Service::builder(decoy())
        .workers(1)
        .persistence(&follower_dir, FsyncPolicy::Always)
        .build();
    let installed = bootstrap_follower(&leader, &follower);
    assert_eq!(installed, leader.epoch());
    assert_eq!(follower.epoch(), leader.epoch());
    let durability = follower.durability();
    assert_eq!(
        durability.last_checkpoint_epoch, installed,
        "bootstrap checkpoints locally at the installed epoch"
    );
    assert_eq!(durability.wal_records, 0, "stale local WAL is truncated");
    // Installing the same epoch again is a harmless no-op.
    assert_eq!(bootstrap_follower(&leader, &follower), installed);
}

#[test]
fn head_announcements_feed_lag_and_metrics() {
    let service = Service::builder(dblp_like()).workers(1).build();
    service.set_replication_role(ReplicationRole::Follower);
    // Behind: the leader announces three records past anything applied.
    let head = service.epoch() + 3;
    service.note_replication_head(head, 3);
    std::thread::sleep(std::time::Duration::from_millis(20));
    let status = service.replication_status();
    assert_eq!(status.role, ReplicationRole::Follower);
    assert_eq!(status.leader_epoch, head);
    assert_eq!(status.lag_records, 3);
    assert!(status.lag_ms >= 10, "lag clock runs while behind");
    // The same status rides on the metrics snapshot (the lag clock keeps
    // ticking between the two reads, so compare the stable fields).
    let metrics = service.metrics().replication;
    assert_eq!(metrics.role, ReplicationRole::Follower);
    assert_eq!(metrics.leader_epoch, head);
    assert_eq!(metrics.lag_records, 3);
    assert!(metrics.lag_ms >= status.lag_ms);
}

#[test]
fn slo_specs_parse_from_json_and_swap_at_runtime() {
    let specs = parse_slo_specs(
        r#"{"slos":[
            {"name":"replication_lag","metric":"replication_lag_ms","threshold":5000},
            {"name":"ttfa_p99","metric":"ttfa_p99_us","threshold":100000,
             "budget":0.05,"fast_window_ms":60000,"slow_window_ms":600000,
             "fire_burn":5,"resolve_burn":0.5}
        ]}"#,
    )
    .unwrap();
    assert_eq!(specs.len(), 2);
    assert_eq!(
        specs[0],
        SloSpec::upper_bound("replication_lag", "replication_lag_ms", 5000.0)
    );
    assert_eq!(specs[1].budget, 0.05);
    assert_eq!(specs[1].fast_window_ms, 60_000);
    assert_eq!(specs[1].fire_burn, 5.0);

    // A bare array works too; malformed documents fail loudly.
    assert_eq!(
        parse_slo_specs(r#"[{"name":"a","metric":"queued","threshold":1}]"#)
            .unwrap()
            .len(),
        1
    );
    for bad in [
        r#"{"slos":{}}"#,
        r#"[{"metric":"queued","threshold":1}]"#,
        r#"[{"name":"a","metric":"queued"}]"#,
        r#"[{"name":"a","metric":"queued","threshold":1,"typo_key":2}]"#,
        r#"[{"name":"a","metric":"queued","threshold":1,"budget":0}]"#,
        r#"[{"name":"a","metric":"queued","threshold":1,
            "fast_window_ms":600000,"slow_window_ms":60000}]"#,
        r#"[{"name":"a","metric":"queued","threshold":1},
            {"name":"a","metric":"queued","threshold":2}]"#,
    ] {
        assert!(parse_slo_specs(bad).is_err(), "should reject {bad}");
    }

    // Boot from a config file, then swap and upsert at runtime.
    let dir = tmp_dir("slo");
    let path = dir.join("slo.json");
    std::fs::write(
        &path,
        r#"[{"name":"queued","metric":"queued","threshold":10}]"#,
    )
    .unwrap();
    let service = Service::builder(dblp_like())
        .workers(1)
        .slos_from_path(&path)
        .unwrap()
        .build();
    assert_eq!(
        service.slo_specs(),
        vec![SloSpec::upper_bound("queued", "queued", 10.0)]
    );
    service.upsert_slo(SloSpec::replication_lag());
    assert_eq!(service.slo_specs().len(), 2);
    service.replace_slos(SloSpec::defaults());
    assert_eq!(service.slo_specs(), SloSpec::defaults());

    let missing = Service::builder(decoy()).slos_from_path(dir.join("absent.json"));
    assert!(missing.is_err());
}
