//! Integration tests for per-tenant admission quotas, graceful drain and
//! the bounded-wait receive path.

use std::time::Duration;

use banks_graph::{DataGraph, GraphBuilder};
use banks_service::{QueryEvent, QuerySpec, RecvTimeout, Service, SubmitError};

fn tiny() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w0");
    b.add_edge(w, a).unwrap();
    b.add_edge(w, p).unwrap();
    b.build_default()
}

fn spec(tenant: &str) -> QuerySpec {
    QuerySpec::parse("gray locks").top_k(3).tenant(tenant)
}

#[test]
fn quota_rejects_burst_overflow_per_tenant() {
    // 2-token burst, glacial refill: the third submission must bounce.
    // Cache disabled so every admitted query executes and gets a per-tenant
    // metrics row (a cache hit never reaches a worker).
    let service = Service::builder(tiny())
        .workers(1)
        .cache_capacity(0)
        .tenant_quota(0.001, 2)
        .build();

    for _ in 0..2 {
        let handle = service.submit(spec("free")).expect("within burst");
        let (outcome, _) = handle.wait();
        assert_eq!(outcome.answers.len(), 1);
    }
    let err = match service.submit(spec("free")) {
        Ok(_) => panic!("third submission must be over quota"),
        Err(err) => err,
    };
    match err {
        SubmitError::QuotaExceeded {
            tenant,
            retry_after,
        } => {
            assert_eq!(tenant, "free");
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // Another tenant's bucket is untouched.
    let handle = service.submit(spec("paid")).expect("other tenant admitted");
    let (outcome, _) = handle.wait();
    assert_eq!(outcome.answers.len(), 1);

    let metrics = service.metrics();
    assert_eq!(metrics.quota_rejected, 1);
    let free = metrics.tenant("free").expect("free tenant row");
    assert_eq!(free.quota_rejected, 1);
    let paid = metrics.tenant("paid").expect("paid tenant row");
    assert_eq!(paid.quota_rejected, 0);
}

#[test]
fn quota_charges_cache_hits_too() {
    let service = Service::builder(tiny())
        .workers(1)
        .cache_capacity(16)
        .tenant_quota(0.001, 2)
        .build();
    // First submission executes, second replays from the cache — both cost
    // a token, so the third bounces even though it would be free work.
    let (_, r1) = service.submit(spec("t")).expect("1st").wait();
    assert!(!r1.cache_hit);
    let (_, r2) = service.submit(spec("t")).expect("2nd").wait();
    assert!(r2.cache_hit);
    assert!(matches!(
        service.submit(spec("t")),
        Err(SubmitError::QuotaExceeded { .. })
    ));
}

#[test]
fn quota_refills_over_time() {
    // 50 tokens/s: an emptied bucket recovers within a few hundred ms.
    let service = Service::builder(tiny())
        .workers(1)
        .tenant_quota(50.0, 1)
        .build();
    service.submit(spec("t")).expect("burst").wait();
    // Depending on timing the immediate resubmit may or may not bounce;
    // after a generous sleep it must succeed again.
    std::thread::sleep(Duration::from_millis(100));
    service.submit(spec("t")).expect("bucket refilled").wait();
}

#[test]
fn no_quota_configured_admits_everything() {
    let service = Service::builder(tiny()).workers(1).build();
    for _ in 0..50 {
        service.submit(spec("t")).expect("no quota").wait();
    }
    assert_eq!(service.metrics().quota_rejected, 0);
}

#[test]
fn drain_waits_for_queued_and_executing_work() {
    let service = Service::builder(tiny()).workers(2).build();
    let handles: Vec<_> = (0..16)
        .map(|i| {
            service
                .submit(
                    QuerySpec::parse("gray locks")
                        .top_k(3)
                        .tenant(format!("t{i}")),
                )
                .expect("submit")
        })
        .collect();
    service.drain();
    // After drain, every submitted query has fully finished: its terminal
    // event is already in the channel.
    for handle in handles {
        let (outcome, _) = handle.wait();
        assert_eq!(outcome.answers.len(), 1);
    }
    let metrics = service.metrics();
    assert_eq!(metrics.queued, 0);
    assert_eq!(metrics.completed, 16);
}

#[test]
fn drain_on_idle_service_returns_immediately() {
    let service = Service::builder(tiny()).workers(1).build();
    service.drain(); // must not deadlock
}

#[test]
fn recv_timeout_distinguishes_timeout_from_closed() {
    let service = Service::builder(tiny()).workers(1).build();
    let handle = service.submit(spec("t")).expect("submit");
    // Events must arrive within a generous bound; collect until Finished.
    let mut answers = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match handle.recv_timeout(Duration::from_millis(50)) {
            Ok(QueryEvent::Answer(_)) => answers += 1,
            Ok(QueryEvent::Finished(_)) => break,
            Err(RecvTimeout::TimedOut) => {
                assert!(std::time::Instant::now() < deadline, "query never finished");
            }
            Err(RecvTimeout::Closed) => panic!("stream closed before Finished"),
        }
    }
    assert_eq!(answers, 1);
    // After the terminal event, the channel is closed — not a timeout.
    assert!(matches!(
        handle.recv_timeout(Duration::from_millis(10)),
        Err(RecvTimeout::Closed)
    ));
}

/// A panicking engine must not wedge `drain`: the executing counter is
/// decremented on unwind, so shutdown paths (Server::drop calls drain
/// unconditionally) still terminate.
#[test]
fn drain_survives_a_panicking_engine() {
    struct PanicEngine;
    impl banks_core::SearchEngine for PanicEngine {
        fn name(&self) -> &'static str {
            "panic"
        }
        fn start<'a>(
            &self,
            _ctx: banks_core::QueryContext<'a>,
        ) -> Box<dyn banks_core::AnswerStream + 'a> {
            panic!("engine blew up");
        }
    }
    let mut registry = banks_core::EngineRegistry::with_default_engines();
    registry.register("panic", Box::new(|| Box::new(PanicEngine)));
    let service = Service::builder(tiny())
        .workers(2)
        .registry(registry)
        .build();
    let handle = service
        .submit(spec("t").engine("panic"))
        .expect("submit panicking query");
    // The worker dies; the handle's channel closes without a Finished
    // event, and drain must still return.
    service.drain();
    let (outcome, result) = handle.wait();
    assert!(outcome.answers.is_empty());
    assert!(result.stats.cancelled, "dropped query reports cancelled");
    // The surviving worker still serves queries.
    let (outcome, _) = service.submit(spec("t")).expect("submit").wait();
    assert_eq!(outcome.answers.len(), 1);
}
