//! The retention-and-judgment layer end to end: the collector thread
//! populating the time-series ring, SLO burn-rate health, the structured
//! event log, and the watchdog counters — all at a fast test cadence.

use std::time::{Duration, Instant};

use banks_graph::{DataGraph, GraphBuilder, MutationBatch};
use banks_service::{EventLevel, Health, QuerySpec, Service, SloSpec};

fn dblp_like() -> DataGraph {
    let mut b = GraphBuilder::new();
    let soumen = b.add_node("author", "Soumen Chakrabarti");
    let shashank = b.add_node("author", "Shashank Pandit");
    let banks = b.add_node(
        "paper",
        "Keyword searching and browsing in databases using BANKS",
    );
    let bidir = b.add_node(
        "paper",
        "Bidirectional expansion for keyword search on graph databases",
    );
    let w0 = b.add_node("writes", "w0");
    let w1 = b.add_node("writes", "w1");
    let w2 = b.add_node("writes", "w2");
    b.add_edge(w0, soumen).unwrap();
    b.add_edge(w0, banks).unwrap();
    b.add_edge(w1, shashank).unwrap();
    b.add_edge(w1, bidir).unwrap();
    b.add_edge(w2, soumen).unwrap();
    b.add_edge(w2, bidir).unwrap();
    b.build_default()
}

/// Spin until `pred` holds or the deadline passes; returns whether it held.
fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

#[test]
fn collector_populates_the_time_series_ring() {
    let service = Service::builder(dblp_like())
        .workers(2)
        .collector_cadence(Duration::from_millis(10))
        .build();
    for _ in 0..3 {
        let (outcome, _) = service
            .submit(QuerySpec::parse("soumen banks"))
            .unwrap()
            .wait();
        assert!(!outcome.answers.is_empty());
    }
    assert!(
        wait_for(Duration::from_secs(5), || service.time_series().len() >= 3),
        "collector never recorded 3 ticks"
    );
    let series = service.time_series();
    let idx = series.index_of("submitted").expect("schema entry");
    let latest = series.latest().expect("at least one tick");
    assert_eq!(latest.values[idx], 3.0, "cumulative submitted snapshot");
    assert!(series.index_of("queue_saturation").is_some());
    assert_eq!(series.schema().len(), latest.values.len());
    // Health defaults to ok: nothing in a healthy run fires the SLOs.
    assert_eq!(service.health(), Health::Ok);
}

#[test]
fn an_induced_regression_flips_health_and_emits_paired_alerts() {
    // An absurd objective (TTFA over a zero-microsecond bound) turns every
    // executed query into a violation, so the burn rate saturates within a
    // couple of collector ticks; once traffic stops, the windowed
    // percentile goes NaN, the fast window cools, and the alert resolves.
    let slo = SloSpec::upper_bound("ttfa_p99", "ttfa_p99_us", 0.0)
        .with_windows(100, 10_000)
        .with_burns(10.0, 1.0);
    let service = Service::builder(dblp_like())
        .workers(2)
        .collector_cadence(Duration::from_millis(10))
        .slos(vec![slo])
        .build();

    let fired = wait_for(Duration::from_secs(10), || {
        let (outcome, _) = service
            .submit(QuerySpec::parse("soumen banks"))
            .unwrap()
            .wait();
        assert!(!outcome.answers.is_empty());
        service.health() != Health::Ok
    });
    assert!(fired, "health never left ok under a 0us TTFA objective");
    let report = service.slo_report();
    assert_ne!(report.health, Health::Ok);
    assert_eq!(report.rows.len(), 1);
    assert_eq!(report.rows[0].name, "ttfa_p99");
    assert!(report.rows[0].burn_fast >= 10.0);

    // Stop submitting: the 100 ms fast window empties of finite samples
    // and the alert resolves.
    let resolved = wait_for(Duration::from_secs(10), || service.health() == Health::Ok);
    assert!(resolved, "alert never resolved after traffic stopped");

    let events = service.events().since(0, 10_000);
    let fires: Vec<_> = events.iter().filter(|e| e.kind == "alert-fire").collect();
    let resolves: Vec<_> = events
        .iter()
        .filter(|e| e.kind == "alert-resolve")
        .collect();
    assert!(!fires.is_empty(), "no alert-fire event");
    assert!(!resolves.is_empty(), "no alert-resolve event");
    assert_eq!(fires[0].level, EventLevel::Warn);
    assert_eq!(resolves[0].level, EventLevel::Info);
    assert!(
        fires[0].id < resolves[resolves.len() - 1].id,
        "fire precedes resolve"
    );
    assert!(fires[0].message.contains("ttfa_p99"));

    // The metrics snapshot carries the judgment surface.
    let metrics = service.metrics();
    assert_eq!(metrics.health, service.health());
    assert_eq!(metrics.slo.len(), 1);
    assert!(metrics.event_log_last_id >= fires[0].id);
}

#[test]
fn operational_paths_emit_structured_events() {
    let service = Service::builder(dblp_like()).workers(2).build();
    // Mutations: an applied batch logs mutation-batch.
    let batch = MutationBatch::new().add_node("author", "Gaurav Bhalotia");
    let report = service.apply_mutations(&batch);
    assert!(report.swapped);
    // Swap: a wholesale graph swap logs swap.
    service.swap_graph(dblp_like());

    let events = service.events().since(0, 1000);
    let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"mutation-batch"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"swap"), "kinds: {kinds:?}");
    // Ids are strictly increasing and paging by id works.
    let ids: Vec<u64> = events.iter().map(|e| e.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ids, sorted, "monotone ids");
    let mid = ids[ids.len() / 2];
    let tail = service.events().since(mid, 1000);
    assert!(tail.iter().all(|e| e.id > mid));
    assert_eq!(tail.len(), ids.iter().filter(|&&i| i > mid).count());

    // Quota rejection: a drained bucket logs quota-reject.
    drop(service);
    let service = Service::builder(dblp_like())
        .workers(1)
        .tenant_quota(0.001, 1)
        .build();
    let _ = service.submit(QuerySpec::parse("soumen").tenant("t"));
    let denied = service.submit(QuerySpec::parse("banks").tenant("t"));
    assert!(denied.is_err());
    let events = service.events().since(0, 1000);
    assert!(
        events.iter().any(|e| e.kind == "quota-reject"),
        "kinds: {:?}",
        events.iter().map(|e| e.kind).collect::<Vec<_>>()
    );
}

#[test]
fn watchdog_flags_queries_that_blow_past_their_estimate() {
    // Two keywords 300 hops apart: the origin sets are single nodes, so the
    // a priori estimate is tiny (2 × (1 + top_k × 16)), but connecting them
    // forces the engine down the whole chain — hundreds of explored nodes,
    // comfortably past 2× the estimate.
    let mut b = GraphBuilder::new();
    let start = b.add_node("endpoint", "alphastart");
    let mut prev = start;
    for i in 0..300 {
        let link = b.add_node("link", format!("hop {i}"));
        b.add_edge(prev, link).unwrap();
        prev = link;
    }
    let end = b.add_node("endpoint", "omegaend");
    b.add_edge(prev, end).unwrap();

    let service = Service::builder(b.build_default())
        .workers(1)
        .watchdog_overrun_factor(2)
        .build();
    let (outcome, _) = service
        .submit(
            QuerySpec::parse("alphastart omegaend")
                .params(banks_core::SearchParams::with_top_k(1).dmax(400)),
        )
        .unwrap()
        .wait();
    assert!(!outcome.answers.is_empty(), "chain query found no answer");
    assert!(
        outcome.stats.nodes_explored >= 200,
        "expected a long exploration, got {}",
        outcome.stats.nodes_explored
    );
    let overran = wait_for(Duration::from_secs(5), || {
        service.metrics().watchdog_overruns >= 1
    });
    assert!(overran, "watchdog never tripped on a 300-hop exploration");
    let events = service.events().since(0, 1000);
    assert!(events.iter().any(|e| e.kind == "watchdog-overrun"));
}
