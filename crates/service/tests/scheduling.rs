//! Integration tests for the priority scheduler.
//!
//! The exact pop order of the scheduler is proved deterministically by the
//! unit tests in `src/sched.rs` (pure push/pop sequences, no threads).
//! These tests drive the full service instead: one worker is parked on a
//! long-running blocker query so subsequent submissions pile up in the
//! scheduler, then the blocker is released and the recorded
//! [`QueryResult::queue_wait`] values reveal the order the worker picked
//! the queued jobs up in.

use banks_core::{EmissionPolicy, SearchParams};
use banks_graph::{DataGraph, GraphBuilder};
use banks_service::{Priority, QueryResult, QuerySpec, Service};

/// A wide forest of `root -> {alpha, beta}` stars (expensive to exhaust)
/// plus a single `root -> {gamma, delta}` star (cheap to answer).
fn forest(n: usize) -> DataGraph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        let a = b.add_node("alpha", format!("alpha {i}"));
        let z = b.add_node("beta", format!("beta {i}"));
        let root = b.add_node("writes", format!("w{i}"));
        b.add_edge(root, a).unwrap();
        b.add_edge(root, z).unwrap();
    }
    let g = b.add_node("gamma", "gamma solo");
    let d = b.add_node("delta", "delta solo");
    let root = b.add_node("writes", "gd");
    b.add_edge(root, g).unwrap();
    b.add_edge(root, d).unwrap();
    b.build_default()
}

/// The blocker: exhaustive scan over every star — a worker that picks this
/// up is busy until cancelled.
fn expensive_spec(n: usize) -> QuerySpec {
    QuerySpec::keywords(["alpha", "beta"])
        .params(SearchParams::with_top_k(n + 10).emission(EmissionPolicy::Immediate))
}

/// Two origin nodes, one answer: the estimator prices this near zero.
fn cheap_spec() -> QuerySpec {
    QuerySpec::keywords(["gamma", "delta"]).top_k(1)
}

/// Parks the single worker on a blocker and returns its handle once the
/// worker has demonstrably picked it up (first answer received) — every
/// submission after this point queues in the scheduler.
fn park_worker(service: &Service, n: usize) -> banks_service::QueryHandle {
    let blocker = service.submit(expensive_spec(n)).expect("submit blocker");
    let first = blocker.next_answer();
    assert!(first.is_some(), "blocker must stream at least one answer");
    blocker
}

#[test]
fn cheap_query_admitted_behind_expensive_one_completes_first() {
    let n = 20_000;
    let service = Service::builder(forest(n))
        .workers(1)
        .queue_capacity(256)
        .cache_capacity(0)
        .build();
    let blocker = park_worker(&service, n);

    // FIFO would run these in submission order; the scheduler must not.
    let expensive = service.submit(expensive_spec(n)).expect("submit");
    let cheap = service.submit(cheap_spec()).expect("submit");
    assert_eq!(service.metrics().queued, 2);

    // Cancel the queued expensive query now: when the worker eventually
    // pops it, it aborts within one step — queue_wait is still recorded at
    // pickup, which is all this test needs.
    expensive.cancel();
    blocker.cancel();
    let (_, _) = blocker.wait();

    let (cheap_outcome, cheap_result) = cheap.wait();
    let (_, expensive_result) = expensive.wait();
    assert_eq!(cheap_outcome.answers.len(), 1);
    assert!(!cheap_result.stats.cancelled);
    assert!(
        cheap_result.queue_wait < expensive_result.queue_wait,
        "the worker must pick the cheap query up first \
         (cheap waited {:?}, expensive waited {:?})",
        cheap_result.queue_wait,
        expensive_result.queue_wait
    );
}

#[test]
fn interactive_priority_overtakes_normal_at_equal_cost() {
    let n = 20_000;
    let service = Service::builder(forest(n))
        .workers(1)
        .queue_capacity(256)
        .cache_capacity(0)
        .build();
    let blocker = park_worker(&service, n);

    // Identical queries, identical estimates — the later submission wins
    // purely on its priority class (charged a quarter of the estimate).
    let normal = service.submit(cheap_spec()).expect("submit");
    let interactive = service
        .submit(cheap_spec().priority(Priority::Interactive))
        .expect("submit");

    blocker.cancel();
    let (_, _) = blocker.wait();
    let (_, normal_result) = normal.wait();
    let (_, interactive_result) = interactive.wait();
    assert!(
        interactive_result.queue_wait < normal_result.queue_wait,
        "interactive (waited {:?}) must overtake normal (waited {:?})",
        interactive_result.queue_wait,
        normal_result.queue_wait
    );
}

#[test]
fn tenant_fair_share_shields_a_solo_tenant_from_a_flood() {
    let n = 20_000;
    let flood_size = 30usize;
    let service = Service::builder(forest(n))
        .workers(1)
        .queue_capacity(256)
        .cache_capacity(0)
        .build();
    let blocker = park_worker(&service, n);

    // One tenant floods the queue; another submits a single query last.
    let flood: Vec<_> = (0..flood_size)
        .map(|_| {
            service
                .submit(cheap_spec().tenant("flood"))
                .expect("submit flood")
        })
        .collect();
    let solo = service
        .submit(cheap_spec().tenant("solo"))
        .expect("submit solo");

    blocker.cancel();
    let (_, _) = blocker.wait();
    let (_, solo_result) = solo.wait();
    let flood_results: Vec<QueryResult> = flood.into_iter().map(|h| h.wait().1).collect();

    // Fair share: at most one flood job may precede the solo tenant's —
    // FIFO would have put all thirty ahead of it.
    let ahead = flood_results
        .iter()
        .filter(|r| r.queue_wait < solo_result.queue_wait)
        .count();
    assert!(
        ahead <= 1,
        "{ahead} flood jobs ran before the solo tenant's single query"
    );

    // Per-tenant metrics observed the same story.
    let metrics = service.metrics();
    let flood_row = metrics.tenant("flood").expect("flood tenant row");
    let solo_row = metrics.tenant("solo").expect("solo tenant row");
    assert_eq!(flood_row.executed, flood_size as u64);
    assert_eq!(solo_row.executed, 1);
    assert!(solo_row.max_queue_wait < flood_row.max_queue_wait);
    // the blocker ran under the anonymous tenant
    assert_eq!(metrics.tenant("").expect("anonymous row").executed, 1);
    assert_eq!(metrics.queue_wait.count, 2 + flood_size as u64);
    assert!(metrics.queue_wait.max >= metrics.queue_wait.p99);
}

#[test]
fn cache_admission_threshold_keeps_tiny_queries_out() {
    let n = 50; // small graph: the cheap query measures well under the bar
    let service = Service::builder(forest(n))
        .workers(1)
        .cache_capacity(64)
        .cache_min_work(1_000_000)
        .build();

    let (_, first) = service.submit(cheap_spec()).expect("submit").wait();
    assert!(!first.cache_hit);
    // The outcome measured below the admission threshold: not cached, so
    // the resubmission executes again instead of hitting.
    let (_, second) = service.submit(cheap_spec()).expect("submit").wait();
    assert!(
        !second.cache_hit,
        "sub-threshold outcome must not be cached"
    );
    assert_eq!(service.metrics().executed, 2);
    assert!(service.cache().is_empty());
    assert!(service.cache().admission_rejected() >= 1);
    assert_eq!(service.cache().admission_threshold(), 1_000_000);
}
