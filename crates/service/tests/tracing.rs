//! End-to-end query tracing: span consistency, trace retrieval, the
//! slow-query ring, and online cost calibration surfaced through metrics.

use std::time::Duration;

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_service::{FsyncPolicy, QueryId, QuerySpec, QueryTrace, Service};

fn dblp_like() -> DataGraph {
    let mut b = GraphBuilder::new();
    let soumen = b.add_node("author", "Soumen Chakrabarti");
    let shashank = b.add_node("author", "Shashank Pandit");
    let banks = b.add_node(
        "paper",
        "Keyword searching and browsing in databases using BANKS",
    );
    let bidir = b.add_node(
        "paper",
        "Bidirectional expansion for keyword search on graph databases",
    );
    let w0 = b.add_node("writes", "w0");
    let w1 = b.add_node("writes", "w1");
    let w2 = b.add_node("writes", "w2");
    b.add_edge(w0, soumen).unwrap();
    b.add_edge(w0, banks).unwrap();
    b.add_edge(w1, shashank).unwrap();
    b.add_edge(w1, bidir).unwrap();
    b.add_edge(w2, soumen).unwrap();
    b.add_edge(w2, bidir).unwrap();
    b.build_default()
}

/// A trace's spans must be mutually consistent: every span inside
/// `[0, total_us]`, queue + expand no longer than the total, and the
/// first-answer span's duration exactly the reported TTFA.
fn assert_spans_consistent(trace: &QueryTrace, ttfa: Option<Duration>) {
    for span in &trace.spans {
        assert!(
            span.start_us <= span.end_us,
            "span {} runs backwards: {span:?}",
            span.name
        );
        assert!(
            span.end_us <= trace.total_us,
            "span {} exceeds total_us={}: {span:?}",
            span.name,
            trace.total_us
        );
    }
    let finish = trace.span("finish").expect("finish span");
    assert_eq!(finish.start_us, 0);
    assert_eq!(finish.end_us, trace.total_us);
    if let (Some(queue), Some(expand)) = (trace.span("queue"), trace.span("expand")) {
        assert!(queue.end_us <= expand.start_us + 1, "queue ends at pickup");
        assert!(
            queue.duration_us() + expand.duration_us() <= trace.total_us,
            "queue ({}) + expand ({}) exceed total ({})",
            queue.duration_us(),
            expand.duration_us(),
            trace.total_us
        );
    }
    match (ttfa, trace.span("first-answer")) {
        (Some(ttfa), Some(span)) => assert_eq!(
            span.duration_us(),
            ttfa.as_micros() as u64,
            "first-answer span must equal time_to_first_answer"
        ),
        (None, Some(span)) => panic!("first-answer span {span:?} without a TTFA"),
        (Some(ttfa), None) => panic!("TTFA {ttfa:?} without a first-answer span"),
        (None, None) => {}
    }
}

#[test]
fn requested_traces_ride_the_result_and_the_ring() {
    let service = Service::builder(dblp_like()).workers(2).build();
    let spec = QuerySpec::parse("soumen bidirectional")
        .top_k(3)
        .tenant("ui")
        .trace("req-42");
    let handle = service.submit(spec).unwrap();
    let id = handle.id();
    let (outcome, result) = handle.wait();
    assert!(!outcome.answers.is_empty(), "the query answers");

    let trace = result.trace.as_ref().expect("trace was requested");
    assert_eq!(trace.id, id.0);
    assert_eq!(trace.client_ref.as_deref(), Some("req-42"));
    assert_eq!(trace.tenant.as_deref(), Some("ui"));
    assert!(!trace.cache_hit);
    assert!(trace.span("queue").is_some(), "executed queries queue");
    assert!(trace.span("expand").is_some());
    assert_spans_consistent(trace, result.time_to_first_answer);
    assert!(
        trace.counter("nodes_touched").is_some(),
        "work counters sampled: {:?}",
        trace.counters
    );

    // The same trace is retrievable by id afterwards (the debug endpoint's
    // contract), and by reference equality — the ring shares the Arc.
    let from_ring = service.trace(id).expect("trace retained in the ring");
    assert!(std::sync::Arc::ptr_eq(trace, &from_ring));
}

#[test]
fn untraced_fast_queries_attach_and_retain_nothing() {
    let service = Service::builder(dblp_like()).workers(1).build();
    let handle = service.submit(QuerySpec::parse("soumen").top_k(2)).unwrap();
    let id = handle.id();
    let (_, result) = handle.wait();
    assert!(result.trace.is_none(), "no trace unless requested");
    assert!(service.trace(id).is_none(), "nothing retained either");
    assert!(service.recent_traces(10).is_empty());
}

#[test]
fn cache_hits_trace_without_queueing() {
    let service = Service::builder(dblp_like()).workers(1).build();
    // Prime the cache, then replay the identical query with tracing on.
    let (_, first) = service
        .submit(QuerySpec::parse("soumen bidirectional").top_k(3))
        .unwrap()
        .wait();
    assert!(!first.cache_hit);
    let (_, replay) = service
        .submit(QuerySpec::parse("soumen bidirectional").top_k(3).trace(""))
        .unwrap()
        .wait();
    assert!(replay.cache_hit);
    let trace = replay.trace.as_ref().expect("empty reference still traces");
    assert!(trace.cache_hit);
    assert_eq!(trace.client_ref.as_deref(), Some(""));
    assert!(trace.span("queue").is_none(), "cache hits never queue");
    assert!(trace.span("expand").is_none());
    assert_spans_consistent(trace, replay.time_to_first_answer);
}

#[test]
fn slow_queries_are_retained_unrequested() {
    // A zero threshold makes every query "slow".
    let service = Service::builder(dblp_like())
        .workers(1)
        .slow_query_threshold(Duration::ZERO)
        .build();
    let handle = service.submit(QuerySpec::parse("soumen").top_k(2)).unwrap();
    let id = handle.id();
    let (_, result) = handle.wait();
    assert!(
        result.trace.is_none(),
        "slow retention does not leak a trace onto an untraced result"
    );
    let trace = service.trace(id).expect("slow trace retained");
    assert!(trace.slow);
    let slow = service.slow_traces(10);
    assert!(slow.iter().any(|t| t.id == id.0));
    assert!(service.metrics().slow_queries >= 1);
}

#[test]
fn a_high_threshold_marks_nothing_slow() {
    let service = Service::builder(dblp_like())
        .workers(1)
        .slow_query_threshold(Duration::from_secs(3600))
        .build();
    for _ in 0..3 {
        let (_, result) = service
            .submit(QuerySpec::parse("soumen bidirectional").top_k(3).trace("r"))
            .unwrap()
            .wait();
        assert!(!result.trace.unwrap().slow);
    }
    assert!(service.slow_traces(10).is_empty());
    assert_eq!(service.metrics().slow_queries, 0);
}

/// A wide forest whose shared keywords fan hundreds of Dijkstra origins
/// across every shard, so the scatter-gather refill rounds do measurable
/// per-shard work.
fn wide_forest(chains: usize) -> DataGraph {
    let mut b = GraphBuilder::new();
    let hub = b.add_node("conference", "hub venue");
    for i in 0..chains {
        let a = b.add_node("author", format!("alpha author{i}"));
        let p = b.add_node("paper", format!("beta paper{i}"));
        let w = b.add_node("writes", format!("w{i}"));
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
        b.add_edge(p, hub).unwrap();
    }
    b.build_default()
}

/// The tentpole trace contract: a traced scatter-gather query on a
/// sharded service carries per-shard `shard-N` expand spans, nested
/// inside the expand span, whose durations sum to **at most** the total
/// expand time — the parallel refill rounds charge wall time, never the
/// (overlapping) per-worker busy sums.
#[test]
fn sharded_queries_attribute_per_shard_expand_spans() {
    let service = Service::builder(wide_forest(400))
        .workers(1)
        .cache_capacity(0)
        .shards(4)
        .build();
    let spec = QuerySpec::parse("alpha beta")
        .top_k(20)
        .engine("scatter-gather")
        .trace("shard-spans");
    let (outcome, result) = service.submit(spec).unwrap().wait();
    assert!(!outcome.answers.is_empty());
    let trace = result.trace.as_ref().expect("trace was requested");
    assert_spans_consistent(trace, result.time_to_first_answer);

    let expand = trace.span("expand").expect("executed queries expand");
    let shard_spans: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("shard-"))
        .collect();
    assert!(
        !shard_spans.is_empty(),
        "a sharded query attributes per-shard spans: {:?}",
        trace.spans
    );
    let mut sum = 0u64;
    for span in &shard_spans {
        assert!(
            span.start_us >= expand.start_us && span.end_us <= expand.end_us,
            "shard span {span:?} must nest inside expand {expand:?}"
        );
        sum += span.duration_us();
    }
    assert!(
        sum <= expand.duration_us(),
        "shard spans sum to {sum}µs, exceeding the {}µs expand span",
        expand.duration_us()
    );
}

/// Unsharded services never emit shard spans — K=1 is the plain code path.
#[test]
fn unsharded_queries_carry_no_shard_spans() {
    let service = Service::builder(wide_forest(50)).workers(1).build();
    let (_, result) = service
        .submit(QuerySpec::parse("alpha beta").top_k(5).trace("flat"))
        .unwrap()
        .wait();
    let trace = result.trace.expect("trace was requested");
    assert!(trace.spans.iter().all(|s| !s.name.starts_with("shard-")));
}

/// The ROADMAP trace gap: checkpoint and WAL-fsync work must be
/// attributed to the mutation that triggered it.  An applied batch on a
/// durable sharded service reports a `mutation` trace with the apply /
/// wal-append / shard-fanout / swap phases, lands it in the ring (so
/// `/debug/trace/<id>` can serve it), and charges any fsync inside the
/// wal-append span.
#[test]
fn mutations_trace_their_phases_and_land_in_the_ring() {
    let dir = std::env::temp_dir().join(format!(
        "banks-trace-mutation-{}-{}",
        std::process::id(),
        line!()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let service = Service::builder(dblp_like())
        .workers(1)
        .shards(2)
        .persistence(&dir, FsyncPolicy::Always)
        .build();
    let report = service.apply_mutations(
        &MutationBatch::new()
            .add_node("author", "Rushi Desai")
            .add_node("writes", "w3")
            .add_edge(NodeId(8), NodeId(7))
            .add_edge(NodeId(8), NodeId(3))
            .remove_edge(NodeId(0), NodeId(1)), // invalid: counted rejected
    );
    assert!(report.swapped);
    let trace = report.trace.as_ref().expect("applied batches trace");
    assert_eq!(trace.engine, "mutation");
    assert_eq!(trace.epoch, report.epoch);
    assert_eq!(trace.counter("ops"), Some(5));
    assert_eq!(trace.counter("accepted"), Some(4));
    assert_eq!(trace.counter("rejected"), Some(1));
    for phase in ["apply", "wal-append", "shard-fanout", "swap", "finish"] {
        assert!(trace.span(phase).is_some(), "missing {phase} span");
    }
    // FsyncPolicy::Always: the append fsynced, and the fsync span sits at
    // the tail of the wal-append span.
    let append = trace.span("wal-append").unwrap();
    let fsync = trace.span("wal-fsync").expect("Always policy fsyncs");
    assert!(fsync.start_us >= append.start_us && fsync.end_us <= append.end_us + 1);
    assert_spans_consistent(trace, None);

    let from_ring = service
        .trace(QueryId(trace.id))
        .expect("mutation trace retained in the ring");
    assert!(std::sync::Arc::ptr_eq(trace, &from_ring));

    // Fully-rejected batches swap nothing and trace nothing.
    let report = service.apply_mutations(&MutationBatch::new().remove_edge(NodeId(0), NodeId(1)));
    assert!(!report.swapped);
    assert!(report.trace.is_none());
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without persistence there is no WAL; the mutation trace still covers
/// apply and swap, and an unsharded service skips the fanout span.
#[test]
fn undurable_unsharded_mutations_trace_apply_and_swap_only() {
    let service = Service::builder(dblp_like()).workers(1).build();
    let report = service.apply_mutations(&MutationBatch::new().add_node("paper", "Fresh result"));
    assert!(report.swapped);
    let trace = report.trace.as_ref().expect("applied batches trace");
    assert!(trace.span("apply").is_some());
    assert!(trace.span("swap").is_some());
    assert!(trace.span("wal-append").is_none());
    assert!(trace.span("wal-fsync").is_none());
    assert!(trace.span("shard-fanout").is_none());
    assert_spans_consistent(trace, None);
}

#[test]
fn calibration_rows_appear_after_executed_queries() {
    let service = Service::builder(dblp_like()).workers(1).build();
    for engine in ["bidirectional", "mi"] {
        for _ in 0..3 {
            // distinct top_k values dodge the result cache — calibration
            // samples only real executions
            for k in [1, 2, 3] {
                let spec = QuerySpec::parse("soumen bidirectional")
                    .top_k(k)
                    .engine(engine);
                service.submit(spec).unwrap().wait();
            }
        }
    }
    let rows = service.metrics().calibration;
    assert!(!rows.is_empty(), "executions feed the calibration table");
    for row in &rows {
        assert!(row.samples > 0);
        assert!(row.correction > 0.0);
        assert!(
            row.origin_lo <= row.origin_hi,
            "bucket bounds ordered: {row:?}"
        );
    }
    let engines: Vec<&str> = rows.iter().map(|r| r.engine.as_str()).collect();
    assert!(engines.contains(&"bidirectional"));
    assert!(engines.contains(&"mi"));
}

#[test]
fn latency_histograms_fill_in_metrics() {
    let service = Service::builder(dblp_like()).workers(1).build();
    for k in [1, 2, 3] {
        service
            .submit(QuerySpec::parse("soumen bidirectional").top_k(k))
            .unwrap()
            .wait();
    }
    let m = service.metrics();
    assert!(m.ttfa.count >= 1, "answering queries record TTFA");
    assert!(m.ttfa.p50 <= m.ttfa.max);
    // No mutations ran, so that histogram stays empty — distributions are
    // independent.
    assert_eq!(m.mutation_apply.count, 0);
}
