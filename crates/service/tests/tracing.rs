//! End-to-end query tracing: span consistency, trace retrieval, the
//! slow-query ring, and online cost calibration surfaced through metrics.

use std::time::Duration;

use banks_graph::{DataGraph, GraphBuilder};
use banks_service::{QuerySpec, QueryTrace, Service};

fn dblp_like() -> DataGraph {
    let mut b = GraphBuilder::new();
    let soumen = b.add_node("author", "Soumen Chakrabarti");
    let shashank = b.add_node("author", "Shashank Pandit");
    let banks = b.add_node(
        "paper",
        "Keyword searching and browsing in databases using BANKS",
    );
    let bidir = b.add_node(
        "paper",
        "Bidirectional expansion for keyword search on graph databases",
    );
    let w0 = b.add_node("writes", "w0");
    let w1 = b.add_node("writes", "w1");
    let w2 = b.add_node("writes", "w2");
    b.add_edge(w0, soumen).unwrap();
    b.add_edge(w0, banks).unwrap();
    b.add_edge(w1, shashank).unwrap();
    b.add_edge(w1, bidir).unwrap();
    b.add_edge(w2, soumen).unwrap();
    b.add_edge(w2, bidir).unwrap();
    b.build_default()
}

/// A trace's spans must be mutually consistent: every span inside
/// `[0, total_us]`, queue + expand no longer than the total, and the
/// first-answer span's duration exactly the reported TTFA.
fn assert_spans_consistent(trace: &QueryTrace, ttfa: Option<Duration>) {
    for span in &trace.spans {
        assert!(
            span.start_us <= span.end_us,
            "span {} runs backwards: {span:?}",
            span.name
        );
        assert!(
            span.end_us <= trace.total_us,
            "span {} exceeds total_us={}: {span:?}",
            span.name,
            trace.total_us
        );
    }
    let finish = trace.span("finish").expect("finish span");
    assert_eq!(finish.start_us, 0);
    assert_eq!(finish.end_us, trace.total_us);
    if let (Some(queue), Some(expand)) = (trace.span("queue"), trace.span("expand")) {
        assert!(queue.end_us <= expand.start_us + 1, "queue ends at pickup");
        assert!(
            queue.duration_us() + expand.duration_us() <= trace.total_us,
            "queue ({}) + expand ({}) exceed total ({})",
            queue.duration_us(),
            expand.duration_us(),
            trace.total_us
        );
    }
    match (ttfa, trace.span("first-answer")) {
        (Some(ttfa), Some(span)) => assert_eq!(
            span.duration_us(),
            ttfa.as_micros() as u64,
            "first-answer span must equal time_to_first_answer"
        ),
        (None, Some(span)) => panic!("first-answer span {span:?} without a TTFA"),
        (Some(ttfa), None) => panic!("TTFA {ttfa:?} without a first-answer span"),
        (None, None) => {}
    }
}

#[test]
fn requested_traces_ride_the_result_and_the_ring() {
    let service = Service::builder(dblp_like()).workers(2).build();
    let spec = QuerySpec::parse("soumen bidirectional")
        .top_k(3)
        .tenant("ui")
        .trace("req-42");
    let handle = service.submit(spec).unwrap();
    let id = handle.id();
    let (outcome, result) = handle.wait();
    assert!(!outcome.answers.is_empty(), "the query answers");

    let trace = result.trace.as_ref().expect("trace was requested");
    assert_eq!(trace.id, id.0);
    assert_eq!(trace.client_ref.as_deref(), Some("req-42"));
    assert_eq!(trace.tenant.as_deref(), Some("ui"));
    assert!(!trace.cache_hit);
    assert!(trace.span("queue").is_some(), "executed queries queue");
    assert!(trace.span("expand").is_some());
    assert_spans_consistent(trace, result.time_to_first_answer);
    assert!(
        trace.counter("nodes_touched").is_some(),
        "work counters sampled: {:?}",
        trace.counters
    );

    // The same trace is retrievable by id afterwards (the debug endpoint's
    // contract), and by reference equality — the ring shares the Arc.
    let from_ring = service.trace(id).expect("trace retained in the ring");
    assert!(std::sync::Arc::ptr_eq(trace, &from_ring));
}

#[test]
fn untraced_fast_queries_attach_and_retain_nothing() {
    let service = Service::builder(dblp_like()).workers(1).build();
    let handle = service.submit(QuerySpec::parse("soumen").top_k(2)).unwrap();
    let id = handle.id();
    let (_, result) = handle.wait();
    assert!(result.trace.is_none(), "no trace unless requested");
    assert!(service.trace(id).is_none(), "nothing retained either");
    assert!(service.recent_traces(10).is_empty());
}

#[test]
fn cache_hits_trace_without_queueing() {
    let service = Service::builder(dblp_like()).workers(1).build();
    // Prime the cache, then replay the identical query with tracing on.
    let (_, first) = service
        .submit(QuerySpec::parse("soumen bidirectional").top_k(3))
        .unwrap()
        .wait();
    assert!(!first.cache_hit);
    let (_, replay) = service
        .submit(QuerySpec::parse("soumen bidirectional").top_k(3).trace(""))
        .unwrap()
        .wait();
    assert!(replay.cache_hit);
    let trace = replay.trace.as_ref().expect("empty reference still traces");
    assert!(trace.cache_hit);
    assert_eq!(trace.client_ref.as_deref(), Some(""));
    assert!(trace.span("queue").is_none(), "cache hits never queue");
    assert!(trace.span("expand").is_none());
    assert_spans_consistent(trace, replay.time_to_first_answer);
}

#[test]
fn slow_queries_are_retained_unrequested() {
    // A zero threshold makes every query "slow".
    let service = Service::builder(dblp_like())
        .workers(1)
        .slow_query_threshold(Duration::ZERO)
        .build();
    let handle = service.submit(QuerySpec::parse("soumen").top_k(2)).unwrap();
    let id = handle.id();
    let (_, result) = handle.wait();
    assert!(
        result.trace.is_none(),
        "slow retention does not leak a trace onto an untraced result"
    );
    let trace = service.trace(id).expect("slow trace retained");
    assert!(trace.slow);
    let slow = service.slow_traces(10);
    assert!(slow.iter().any(|t| t.id == id.0));
    assert!(service.metrics().slow_queries >= 1);
}

#[test]
fn a_high_threshold_marks_nothing_slow() {
    let service = Service::builder(dblp_like())
        .workers(1)
        .slow_query_threshold(Duration::from_secs(3600))
        .build();
    for _ in 0..3 {
        let (_, result) = service
            .submit(QuerySpec::parse("soumen bidirectional").top_k(3).trace("r"))
            .unwrap()
            .wait();
        assert!(!result.trace.unwrap().slow);
    }
    assert!(service.slow_traces(10).is_empty());
    assert_eq!(service.metrics().slow_queries, 0);
}

#[test]
fn calibration_rows_appear_after_executed_queries() {
    let service = Service::builder(dblp_like()).workers(1).build();
    for engine in ["bidirectional", "mi"] {
        for _ in 0..3 {
            // distinct top_k values dodge the result cache — calibration
            // samples only real executions
            for k in [1, 2, 3] {
                let spec = QuerySpec::parse("soumen bidirectional")
                    .top_k(k)
                    .engine(engine);
                service.submit(spec).unwrap().wait();
            }
        }
    }
    let rows = service.metrics().calibration;
    assert!(!rows.is_empty(), "executions feed the calibration table");
    for row in &rows {
        assert!(row.samples > 0);
        assert!(row.correction > 0.0);
        assert!(
            row.origin_lo <= row.origin_hi,
            "bucket bounds ordered: {row:?}"
        );
    }
    let engines: Vec<&str> = rows.iter().map(|r| r.engine.as_str()).collect();
    assert!(engines.contains(&"bidirectional"));
    assert!(engines.contains(&"mi"));
}

#[test]
fn latency_histograms_fill_in_metrics() {
    let service = Service::builder(dblp_like()).workers(1).build();
    for k in [1, 2, 3] {
        service
            .submit(QuerySpec::parse("soumen bidirectional").top_k(k))
            .unwrap()
            .wait();
    }
    let m = service.metrics();
    assert!(m.ttfa.count >= 1, "answering queries record TTFA");
    assert!(m.ttfa.p50 <= m.ttfa.max);
    // No mutations ran, so that histogram stays empty — distributions are
    // independent.
    assert_eq!(m.mutation_apply.count, 0);
}
