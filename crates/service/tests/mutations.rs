//! Integration tests for the mutation-first update path:
//! [`Service::apply_mutations`] end-to-end (epoch advance, index/prestige
//! deltas, cache behaviour), mutations landing under live query load, and
//! the configured / cost-weighted quota variants.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use banks_graph::{DataGraph, GraphBuilder, MutationBatch, NodeId};
use banks_service::{QuerySpec, Service, SubmitError};

fn tiny() -> DataGraph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w0");
    b.add_edge(w, a).unwrap();
    b.add_edge(w, p).unwrap();
    b.build_default()
}

/// A bigger corpus for the under-load test: `chains` three-node
/// author–writes–paper clusters sharing a conference hub.
fn corpus(chains: usize) -> DataGraph {
    let mut b = GraphBuilder::new();
    let conf = b.add_node("conference", "VLDB");
    for i in 0..chains {
        let a = b.add_node("author", format!("author{i} keyword"));
        let p = b.add_node("paper", format!("paper{i} search"));
        let w = b.add_node("writes", format!("w{i}"));
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
        b.add_edge(p, conf).unwrap();
    }
    b.build_default()
}

#[test]
fn apply_mutations_advances_epoch_and_serves_new_data() {
    let service = Service::builder(tiny()).workers(2).build();
    let epoch0 = service.epoch();

    // Warm the cache with the original query.
    let (outcome, result) = service
        .submit(QuerySpec::parse("gray locks"))
        .unwrap()
        .wait();
    assert_eq!(outcome.answers.len(), 1);
    assert!(!result.cache_hit);
    let (_, result) = service
        .submit(QuerySpec::parse("gray locks"))
        .unwrap()
        .wait();
    assert!(result.cache_hit, "second ask hits the cache");

    // Mutate: a new paper by Gray, plus a relabel.
    let batch = MutationBatch::new()
        .add_node("paper", "Transaction recovery")
        .add_node("writes", "w1")
        .add_edge(NodeId(4), NodeId(0))
        .add_edge(NodeId(4), NodeId(3))
        .set_label(NodeId(1), "Granularity of locking");
    let report = service.apply_mutations(&batch);
    assert!(report.swapped);
    assert_eq!(report.previous_epoch, epoch0);
    assert_ne!(report.epoch, epoch0);
    assert_eq!(report.outcome.accepted(), 5);
    assert_eq!(service.epoch(), report.epoch);

    // The new node's text is searchable through the delta'd index.
    let (outcome, result) = service
        .submit(QuerySpec::parse("gray recovery"))
        .unwrap()
        .wait();
    assert_eq!(result.epoch, report.epoch);
    assert_eq!(outcome.answers.len(), 1);
    assert_eq!(outcome.answers[0].tree.root, NodeId(4));

    // The old cached entry is keyed to the dead epoch: same query misses,
    // and the relabel is visible.
    let (_, result) = service
        .submit(QuerySpec::parse("gray locking"))
        .unwrap()
        .wait();
    assert!(!result.cache_hit, "new epoch starts cold");

    let metrics = service.metrics();
    assert_eq!(metrics.mutation_batches, 1);
    assert_eq!(metrics.mutation_ops_accepted, 5);
    assert_eq!(metrics.mutation_ops_rejected, 0);
    assert_eq!(metrics.swaps, 1, "a mutation batch is a swap");
}

#[test]
fn fully_rejected_batches_swap_nothing() {
    let service = Service::builder(tiny()).workers(1).build();
    let epoch0 = service.epoch();
    let batch = MutationBatch::new()
        .remove_edge(NodeId(0), NodeId(1)) // no such forward edge
        .add_edge(NodeId(0), NodeId(99)); // out of bounds
    let report = service.apply_mutations(&batch);
    assert!(!report.swapped);
    assert_eq!(report.epoch, epoch0);
    assert_eq!(report.outcome.accepted(), 0);
    assert_eq!(report.outcome.rejected(), 2);
    assert_eq!(service.epoch(), epoch0, "serving snapshot untouched");
    let metrics = service.metrics();
    assert_eq!(metrics.mutation_batches, 0);
    assert_eq!(metrics.mutation_ops_rejected, 2);
    assert_eq!(metrics.swaps, 0);
}

/// Queries stream concurrently while mutation batches land: every query
/// completes, every reported epoch is a real serving epoch, and data added
/// mid-flight becomes searchable.
#[test]
fn mutations_land_under_live_query_load() {
    let chains = 60;
    let service = Arc::new(
        Service::builder(corpus(chains))
            .workers(4)
            .queue_capacity(512)
            .cache_capacity(64)
            .build(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    let mut query_threads = Vec::new();
    for t in 0..3 {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        query_threads.push(std::thread::spawn(move || {
            let mut completed = 0usize;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let q = match i % 3 {
                    0 => format!("author{} keyword", (i * 7 + t) % chains),
                    1 => format!("paper{} search", (i * 5 + t) % chains),
                    _ => "keyword search".to_string(),
                };
                match service.submit(QuerySpec::parse(&q).top_k(3)) {
                    Ok(handle) => {
                        let (_, result) = handle.wait();
                        assert!(result.epoch > 0);
                        completed += 1;
                    }
                    Err(SubmitError::QueueFull { .. }) => {
                        std::thread::sleep(Duration::from_millis(1))
                    }
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
                i += 1;
            }
            completed
        }));
    }

    // Land a stream of batches while the queries fly.
    let mut epochs = vec![service.epoch()];
    let base_nodes = service.snapshot().graph().num_nodes() as u32;
    for (round, new_node) in (base_nodes..base_nodes + 8).enumerate() {
        let batch = MutationBatch::new()
            .add_node("paper", format!("fresh{round} mutation"))
            .add_edge(NodeId(new_node), NodeId(0))
            .set_label(NodeId(1), format!("author0 keyword r{round}"));
        let report = service.apply_mutations(&batch);
        assert!(report.swapped, "round {round} must accept");
        assert_eq!(report.outcome.accepted(), 3);
        epochs.push(report.epoch);
        std::thread::sleep(Duration::from_millis(10));
    }

    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    for thread in query_threads {
        total += thread.join().expect("query thread");
    }
    assert!(total > 0, "queries must have completed under mutation load");

    // Post-mutation data is fully searchable.
    let (outcome, result) = service
        .submit(QuerySpec::parse("\"fresh7 mutation\""))
        .unwrap()
        .wait();
    assert_eq!(outcome.answers.len(), 1);
    assert_eq!(result.epoch, *epochs.last().unwrap());

    let metrics = service.metrics();
    assert_eq!(metrics.mutation_batches, 8);
    assert_eq!(metrics.epoch, *epochs.last().unwrap());
    // every epoch in the sequence was distinct
    let mut unique = epochs.clone();
    unique.dedup();
    assert_eq!(unique.len(), epochs.len());
}

/// Long mutation chains must not accumulate overlay indirection forever:
/// once enough rows are overlaid, `apply_mutations` flattens the successor
/// (same epoch, same contents) before swapping it in.
#[test]
fn apply_mutations_compacts_long_overlay_chains() {
    let service = Service::builder(tiny()).workers(1).build();
    // touching 2 of 3 nodes overlays >25% of the rows: the swapped-in
    // snapshot must already be flattened
    let report = service.apply_mutations(&MutationBatch::new().add_edge(NodeId(0), NodeId(1)));
    assert!(report.swapped);
    let snap = service.snapshot();
    assert!(
        !snap.graph().has_overlay(),
        "successor past the overlay threshold must be compacted"
    );
    assert_eq!(snap.epoch(), report.epoch, "compaction keeps the epoch");
    // contents survived the flattening: the new edge answers queries
    let (outcome, result) = service
        .submit(QuerySpec::parse("gray locks"))
        .unwrap()
        .wait();
    assert!(!outcome.answers.is_empty());
    assert_eq!(result.epoch, report.epoch);

    // many chained batches never leave the graph above the threshold
    for i in 0..10u32 {
        let n = service.snapshot().graph().num_nodes() as u32;
        let report = service.apply_mutations(
            &MutationBatch::new()
                .add_node("paper", format!("chain paper {i}"))
                .add_edge(NodeId(n), NodeId(0)),
        );
        assert!(report.swapped);
    }
    assert!(service.snapshot().graph().overlay_ratio() <= 0.25);
}

#[test]
fn tenant_quota_overrides_give_named_tenants_their_own_rate() {
    let service = Service::builder(tiny())
        .workers(1)
        .cache_capacity(0)
        .tenant_quota(0.001, 2)
        .tenant_quota_for("vip", 0.001, 50)
        .tenant_quota_for("crawler", 0.001, 1)
        .build();

    let spec = |tenant: &str| QuerySpec::parse("gray locks").top_k(3).tenant(tenant);

    // default tenants: burst 2
    assert!(service.submit(spec("free")).is_ok());
    assert!(service.submit(spec("free")).is_ok());
    assert!(matches!(
        service.submit(spec("free")),
        Err(SubmitError::QuotaExceeded { .. })
    ));
    // the crawler override pins it to burst 1
    assert!(service.submit(spec("crawler")).is_ok());
    assert!(matches!(
        service.submit(spec("crawler")),
        Err(SubmitError::QuotaExceeded { .. })
    ));
    // the vip override bursts far beyond the default
    for _ in 0..10 {
        service.submit(spec("vip")).expect("vip within burst");
    }

    // configured rates surface in the per-tenant metrics
    let metrics = service.metrics();
    let vip = metrics.tenant("vip").expect("vip row");
    assert_eq!(vip.quota_burst, Some(50));
    assert_eq!(vip.quota_rate_per_sec, Some(0.001));
    let free = metrics.tenant("free").expect("free row");
    assert_eq!(free.quota_burst, Some(2), "default config surfaced");
    let crawler = metrics.tenant("crawler").expect("crawler row");
    assert_eq!(crawler.quota_burst, Some(1));
    assert_eq!(crawler.quota_rejected, 1);
}

#[test]
fn cost_weighted_quota_charges_estimated_work() {
    // burst 10 tokens, one token per unit of estimated work: a single
    // multi-keyword top-5 query estimates far beyond 10 and drains the
    // whole bucket (clamped), so the very next submission bounces.
    let service = Service::builder(tiny())
        .workers(1)
        .cache_capacity(0)
        .tenant_quota(0.001, 10)
        .quota_work_per_token(1)
        .build();

    let heavy = || QuerySpec::parse("gray locks").top_k(5).tenant("t");
    let handle = service.submit(heavy()).expect("first query admitted");
    handle.wait();
    match service.submit(heavy()) {
        Err(SubmitError::QuotaExceeded { tenant, .. }) => assert_eq!(tenant, "t"),
        Err(other) => panic!("expected cost-weighted rejection, got {other:?}"),
        Ok(_) => panic!("expected cost-weighted rejection, got admission"),
    }

    // An override with a deep bucket absorbs the same work.
    let service = Service::builder(tiny())
        .workers(1)
        .cache_capacity(0)
        .tenant_quota(0.001, 10)
        .tenant_quota_for("vip", 0.001, 100_000)
        .quota_work_per_token(1)
        .build();
    for _ in 0..5 {
        let handle = service
            .submit(QuerySpec::parse("gray locks").top_k(5).tenant("vip"))
            .expect("vip bucket absorbs the work");
        handle.wait();
    }
}

#[test]
fn cost_weighted_quota_charges_cache_hits_the_floor() {
    // "gray locks" top_k 5 estimates 2 origins × (1 + 5×16) = 162 units of
    // work.  A burst of 165 covers the miss (162 tokens) plus a couple of
    // one-token hits — but not two misses: hits must be charged the floor,
    // not the estimate.
    let service = Service::builder(tiny())
        .workers(1)
        .cache_capacity(64)
        .tenant_quota(0.001, 165)
        .quota_work_per_token(1)
        .build();
    let spec = || QuerySpec::parse("gray locks").top_k(5).tenant("t");

    let (_, r) = service.submit(spec()).expect("miss admitted").wait();
    assert!(!r.cache_hit);
    for _ in 0..2 {
        let (_, r) = service
            .submit(spec())
            .expect("hit charged one token")
            .wait();
        assert!(r.cache_hit);
    }
}
