//! Integration tests for online graph swapping.
//!
//! The contract under test: queries admitted before a swap — running *or
//! still queued* — finish on the snapshot they were pinned to at admission;
//! queries admitted after the swap resolve and execute against the new
//! version and find a cold cache (epoch-keyed, so stale hits are
//! structurally impossible).

use std::sync::Arc;

use banks_core::{EmissionPolicy, ResultCache, SearchParams};
use banks_graph::{DataGraph, GraphBuilder};
use banks_service::{QuerySpec, Service};

/// A graph with `stars` copies of the `gray -> locks` answer pattern: the
/// query `gray locks` returns exactly `stars` answers, so two versions with
/// different `stars` are distinguishable from answers alone.
fn version(stars: usize) -> DataGraph {
    let mut b = GraphBuilder::new();
    for i in 0..stars {
        let a = b.add_node("author", format!("Jim Gray {i}"));
        let p = b.add_node("paper", format!("Granularity of locks {i}"));
        let w = b.add_node("writes", format!("w{i}"));
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
    }
    b.build_default()
}

fn spec() -> QuerySpec {
    QuerySpec::parse("gray locks").top_k(10)
}

#[test]
fn post_swap_queries_see_the_new_graph_and_a_cold_cache() {
    let service = Service::builder(version(1)).workers(2).build();
    let epoch_v1 = service.epoch();

    // Warm the cache on v1.
    let (out1, r1) = service.submit(spec()).expect("submit").wait();
    assert_eq!(out1.answers.len(), 1);
    assert_eq!(r1.epoch, epoch_v1);
    let (_, r1_again) = service.submit(spec()).expect("submit").wait();
    assert!(r1_again.cache_hit);
    assert_eq!(r1_again.epoch, epoch_v1);

    // Swap in v2 (two answer stars instead of one).
    let epoch_v2 = service.swap_graph(version(2));
    assert_ne!(epoch_v2, epoch_v1);
    assert_eq!(service.epoch(), epoch_v2);
    assert_eq!(service.snapshot().epoch(), epoch_v2);

    // The same keywords now resolve against v2: two answers, new epoch,
    // and — critically — no cache hit from the v1 entry.
    let (out2, r2) = service.submit(spec()).expect("submit").wait();
    assert!(!r2.cache_hit, "the new epoch must start cold");
    assert_eq!(r2.epoch, epoch_v2);
    assert_eq!(out2.answers.len(), 2);

    // v2 results cache under the v2 epoch as usual.
    let (_, r2_again) = service.submit(spec()).expect("submit").wait();
    assert!(r2_again.cache_hit);
    assert_eq!(r2_again.epoch, epoch_v2);

    let metrics = service.metrics();
    assert_eq!(metrics.swaps, 1);
    assert_eq!(metrics.epoch, epoch_v2);
    assert_eq!(metrics.executed, 2, "one real execution per version");
}

#[test]
fn queued_queries_finish_on_their_pinned_snapshot() {
    // One worker, parked on a blocker: the probe query sits in the
    // scheduler across the swap, and must still answer from v1.
    let n = 20_000;
    let mut b = GraphBuilder::new();
    for i in 0..n {
        let a = b.add_node("alpha", format!("alpha {i}"));
        let z = b.add_node("beta", format!("beta {i}"));
        let root = b.add_node("writes", format!("w{i}"));
        b.add_edge(root, a).unwrap();
        b.add_edge(root, z).unwrap();
    }
    let g = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w");
    b.add_edge(w, g).unwrap();
    b.add_edge(w, p).unwrap();
    let v1 = b.build_default();

    let service = Service::builder(v1).workers(1).cache_capacity(0).build();
    let epoch_v1 = service.epoch();

    let blocker = service
        .submit(
            QuerySpec::keywords(["alpha", "beta"])
                .params(SearchParams::with_top_k(n + 10).emission(EmissionPolicy::Immediate)),
        )
        .expect("submit blocker");
    assert!(blocker.next_answer().is_some(), "worker parked on blocker");

    // Admitted (and resolved) under v1, then left waiting in the queue.
    let pinned = service.submit(spec()).expect("submit probe");

    // Swap to v2 while the probe is still queued.
    let epoch_v2 = service.swap_graph(version(2));
    assert_ne!(epoch_v2, epoch_v1);

    blocker.cancel();
    let (_, blocker_result) = blocker.wait();
    assert_eq!(blocker_result.epoch, epoch_v1);

    // The queued probe ran *after* the swap, but on its pinned v1
    // snapshot: one answer (v2 would give two), old epoch.
    let (pinned_outcome, pinned_result) = pinned.wait();
    assert_eq!(pinned_result.epoch, epoch_v1, "pinned to admission epoch");
    assert_eq!(pinned_outcome.answers.len(), 1, "answered from v1 data");

    // A fresh submission is admitted under v2.
    let (fresh_outcome, fresh_result) = service.submit(spec()).expect("submit").wait();
    assert_eq!(fresh_result.epoch, epoch_v2);
    assert_eq!(fresh_outcome.answers.len(), 2);
}

#[test]
fn swapping_a_clone_of_the_served_graph_still_changes_epoch() {
    let service = Service::builder(version(1)).workers(1).build();
    let before = service.epoch();
    let (_, first) = service.submit(spec()).expect("submit").wait();
    assert!(!first.cache_hit);

    // Same bytes, same epoch — the swap contract still promises a cold
    // cache, so the service must assign a fresh epoch itself.
    let clone = service.snapshot().graph().clone();
    assert_eq!(clone.epoch(), before);
    let after = service.swap_graph(clone);
    assert_ne!(after, before);
    assert_eq!(service.epoch(), after);

    let (_, second) = service.submit(spec()).expect("submit").wait();
    assert!(!second.cache_hit, "cold cache even for identical data");
    assert_eq!(second.epoch, after);
}

#[test]
fn swap_evicts_a_private_cache_but_never_a_shared_one() {
    // Private cache: the superseded epoch's entries are reclaimed eagerly.
    let service = Service::builder(version(1)).workers(1).build();
    let (_, r) = service.submit(spec()).expect("submit").wait();
    assert!(!r.cache_hit);
    assert_eq!(service.cache().len(), 1);
    service.swap_graph(version(2));
    assert_eq!(
        service.cache().len(),
        0,
        "private cache must drop the dead epoch's entries"
    );

    // Shared cache: another service may still serve the old epoch — the
    // swap must leave its entries alone (they age out via LRU).
    let cache = Arc::new(ResultCache::new(64));
    let sharer = Service::builder(version(1))
        .workers(1)
        .shared_cache(Arc::clone(&cache))
        .build();
    let (_, r) = sharer.submit(spec()).expect("submit").wait();
    assert!(!r.cache_hit);
    assert_eq!(cache.len(), 1);
    sharer.swap_graph(version(2));
    assert_eq!(cache.len(), 1, "shared cache must survive the swap");
    let (_, r2) = sharer.submit(spec()).expect("submit").wait();
    assert!(!r2.cache_hit);
    assert_eq!(cache.len(), 2, "new epoch caches alongside the old entry");
}

#[test]
fn pinned_queries_completing_after_a_swap_do_not_repopulate_a_private_cache() {
    // One worker parked on a blocker; a probe queued behind it is pinned
    // to v1 and completes only after the swap evicted v1 from the private
    // cache.  Its outcome must not be re-inserted: the entry could never
    // be hit again (all future lookups carry newer epochs) and would only
    // waste a slot.
    let n = 20_000;
    let mut b = GraphBuilder::new();
    for i in 0..n {
        let a = b.add_node("alpha", format!("alpha {i}"));
        let z = b.add_node("beta", format!("beta {i}"));
        let root = b.add_node("writes", format!("w{i}"));
        b.add_edge(root, a).unwrap();
        b.add_edge(root, z).unwrap();
    }
    let g = b.add_node("author", "Jim Gray");
    let p = b.add_node("paper", "Granularity of locks");
    let w = b.add_node("writes", "w");
    b.add_edge(w, g).unwrap();
    b.add_edge(w, p).unwrap();

    let service = Service::builder(b.build_default())
        .workers(1)
        .cache_capacity(64)
        .build();

    let blocker = service
        .submit(
            QuerySpec::keywords(["alpha", "beta"])
                .params(SearchParams::with_top_k(n + 10).emission(EmissionPolicy::Immediate)),
        )
        .expect("submit blocker");
    assert!(blocker.next_answer().is_some(), "worker parked on blocker");

    let pinned = service.submit(spec()).expect("submit probe");
    service.swap_graph(version(2));
    assert!(service.cache().is_empty(), "swap evicted the old epoch");

    blocker.cancel();
    let (_, _) = blocker.wait();
    let (_, pinned_result) = pinned.wait();
    assert!(!pinned_result.stats.cancelled);
    assert!(
        service.cache().is_empty(),
        "a stale-epoch outcome must not occupy a private cache slot"
    );

    // Current-epoch outcomes still cache normally.
    let (_, fresh) = service.submit(spec()).expect("submit").wait();
    assert!(!fresh.cache_hit);
    assert_eq!(service.cache().len(), 1);
}

#[test]
fn old_snapshot_stays_usable_for_holders_across_a_swap() {
    let service = Service::builder(version(1)).workers(1).build();
    let held = service.snapshot();
    let epoch_v1 = held.epoch();
    service.swap_graph(version(3));
    // The Arc taken before the swap still points at intact v1 state.
    assert_eq!(held.epoch(), epoch_v1);
    assert_eq!(held.graph().num_nodes(), 3);
    assert!(!held.index().matching_nodes(held.graph(), "gray").is_empty());
    assert_eq!(service.snapshot().graph().num_nodes(), 9);
}
