//! # banks-service
//!
//! A concurrent query **serving tier** over the BANKS search engines: the
//! layering move the OLAP literature makes between the query engine and the
//! tier that fields traffic.  `banks-core` executes one search on the
//! caller's thread; this crate owns a serving [`GraphSnapshot`] (graph +
//! prestige + keyword index) plus an engine registry, and executes many
//! queries concurrently on a pool of `std` worker threads — channels and
//! mutexes only, no external runtime.
//!
//! ## The moving parts
//!
//! * **[`Service`]** — built with
//!   `Service::builder(graph).workers(4).cache_capacity(256).build()`;
//!   owns the shared read-only search state and the worker pool.
//! * **[`QuerySpec`]** — keywords + [`banks_core::SearchParams`] + optional
//!   engine name, plus the scheduling identity: [`QuerySpec::tenant`] and
//!   [`QuerySpec::priority`].  Normalized by the same single function the
//!   `Banks` facade uses, so cache keys agree byte for byte.
//! * **Priority scheduling** — admission is not FIFO: queries are ordered
//!   shortest-expected-work-first from an a priori cost estimate
//!   ([`banks_core::QueryCost`]), with per-tenant fair share and built-in
//!   aging so an expensive query is delayed but never starved.  Interactive
//!   traffic stops queueing behind batch trawls.
//! * **Online graph swapping** — [`Service::swap_graph`] atomically
//!   replaces the served snapshot.  Every query is pinned at admission to
//!   the snapshot it resolved against: in-flight work finishes on the old
//!   version, new admissions see the new epoch, and the epoch-keyed result
//!   cache can never serve stale answers.
//! * **Sharded scatter-gather execution** — [`ServiceBuilder::shards`]
//!   partitions the served graph into `K` hash-assigned shards behind a
//!   [`ShardSet`] (union snapshot + [`banks_graph::GraphPartition`], one
//!   logical epoch).  The `scatter-gather` engine family refills per-shard
//!   frontiers in parallel and merges them through a single output heap,
//!   so the answer stream is **byte-identical** to the unsharded run;
//!   mutations fan their accepted ops out to the owning shards inside the
//!   same epoch swap.  `K = 1` degenerates to the plain snapshot path.
//! * **Incremental mutations** — [`Service::apply_mutations`] applies a
//!   [`banks_graph::MutationBatch`] to the served snapshot as a *delta*:
//!   copy-on-write adjacency, index delta (only touched labels
//!   re-tokenized), incremental prestige refresh — built outside the
//!   serving lock and swapped in through the same epoch-pinning machinery
//!   as a wholesale swap, at O(touched rows) instead of O(V + E).
//! * **[`QueryHandle`]** — returned by [`Service::submit`]: stream answers
//!   as the engine emits them ([`QueryHandle::recv`] /
//!   [`QueryHandle::next_answer`]), watch live
//!   [`banks_core::SearchStats`], [`QueryHandle::cancel`] at any time, or
//!   [`QueryHandle::wait`] for the batch outcome.
//! * **Cancellation** — every query carries a [`banks_core::CancelToken`]
//!   checked before each expansion step, so aborts land within one step
//!   without tearing down the worker.
//! * **Admission control** — a bounded queue; a full queue rejects with
//!   [`SubmitError::QueueFull`] instead of buffering without limit.
//! * **Per-tenant quotas** — optional token buckets
//!   ([`ServiceBuilder::tenant_quota`]): each tenant may burst up to the
//!   bucket capacity, then is limited to the refill rate; an empty bucket
//!   rejects with [`SubmitError::QuotaExceeded`] (carrying a retry-after
//!   hint), counted per tenant in [`TenantMetrics::quota_rejected`].
//!   Named tenants get their own configured rates
//!   ([`ServiceBuilder::tenant_quota_for`], surfaced in
//!   [`TenantMetrics::quota_rate_per_sec`]), and
//!   [`ServiceBuilder::quota_work_per_token`] switches charging from one
//!   token per request to the query's estimated work.
//! * **Graceful drain** — [`Service::drain`] blocks until the queue is
//!   empty and no worker is mid-query, the hook a network front-end uses
//!   to finish in-flight streams before shutting down.
//! * **Result cache** — a shared [`banks_core::ResultCache`] keyed by
//!   `(graph epoch, normalized keywords, params/engine fingerprint)`; hits
//!   complete at submit time with zero engine work.  An admission
//!   threshold ([`ServiceBuilder::cache_min_work`]) keeps tiny queries
//!   from evicting expensive outcomes.
//! * **Deterministic deadlines** — per-answer budgets are *work-based*
//!   ([`banks_core::SearchParams::answer_work_budget`], nodes explored per
//!   answer), so they cut at the same node whether the pool is idle or
//!   saturated.
//! * **[`ServiceMetrics`]** — aggregate counters (submitted / rejected /
//!   executed / cancelled / cache hits / swaps), queue-wait percentiles
//!   ([`QueueWaitSummary`]) and per-tenant outcomes ([`TenantMetrics`]).
//!
//! ## Example
//!
//! ```
//! use banks_graph::GraphBuilder;
//! use banks_service::{Priority, QueryEvent, QuerySpec, Service};
//!
//! let mut b = GraphBuilder::new();
//! let author = b.add_node("author", "Jim Gray");
//! let paper = b.add_node("paper", "Granularity of locks");
//! let writes = b.add_node("writes", "w0");
//! b.add_edge(writes, author).unwrap();
//! b.add_edge(writes, paper).unwrap();
//!
//! let service = Service::builder(b.build_default())
//!     .workers(2)
//!     .cache_capacity(64)
//!     .build();
//!
//! // Stream answers as they arrive; interactive traffic can say so.
//! let spec = QuerySpec::parse("gray locks")
//!     .top_k(3)
//!     .tenant("ui")
//!     .priority(Priority::Interactive);
//! let handle = service.submit(spec).unwrap();
//! while let Some(event) = handle.recv() {
//!     match event {
//!         QueryEvent::Answer(answer) => assert_eq!(answer.tree.root, writes),
//!         QueryEvent::Finished(result) => assert!(!result.cache_hit),
//!     }
//! }
//!
//! // The identical query now hits the cache: zero engine work.
//! let spec = QuerySpec::parse("gray locks").top_k(3);
//! let (outcome, result) = service.submit(spec).unwrap().wait();
//! assert!(result.cache_hit);
//! assert_eq!(outcome.answers.len(), 1);
//!
//! // Swap in a new graph version online: the epoch changes, the cache is
//! // cold for it, and new submissions run against the new data.
//! let mut b2 = GraphBuilder::new();
//! let author2 = b2.add_node("author", "Jim Gray");
//! let paper2 = b2.add_node("paper", "Granularity of locks, 2nd ed");
//! let writes2 = b2.add_node("writes", "w0");
//! b2.add_edge(writes2, author2).unwrap();
//! b2.add_edge(writes2, paper2).unwrap();
//! let new_epoch = service.swap_graph(b2.build_default());
//! assert_eq!(service.epoch(), new_epoch);
//! let (_, result) = service
//!     .submit(QuerySpec::parse("gray locks").top_k(3))
//!     .unwrap()
//!     .wait();
//! assert!(!result.cache_hit, "new epoch starts cold");
//! assert_eq!(result.epoch, new_epoch);
//! ```

#![deny(missing_docs)]

pub mod handle;
pub mod metrics;
pub mod persistence;
mod quota;
pub mod replication;
mod sched;
pub mod service;
pub mod shardset;
pub mod snapshot;
pub mod spec;

pub use banks_graph::{ShardSpec, ShardStats};
pub use banks_obs::{
    CalibrationRow, Event, EventLevel, EventLog, Health, LatencySummary, QueryTrace, SloReport,
    SloRow, SloSpec, TimeSample, TimeSeriesRing, TraceSpan,
};
pub use banks_persist::{
    decode_record, encode_record, FsyncPolicy, PersistError, PersistOptions, WalRecord,
};
pub use handle::{QueryEvent, QueryHandle, QueryId, QueryResult, RecvTimeout};
pub use metrics::{QueueWaitSummary, ServiceMetrics, TenantMetrics, OVERFLOW_TENANT};
pub use persistence::DurabilityStatus;
pub use replication::{ReplicatedApply, ReplicationApplyError, ReplicationRole, ReplicationStatus};
pub use service::{parse_slo_specs, MutationReport, Service, ServiceBuilder, SubmitError};
pub use shardset::ShardSet;
pub use snapshot::GraphSnapshot;
pub use spec::{Priority, QuerySpec};
