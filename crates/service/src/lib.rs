//! # banks-service
//!
//! A concurrent query **serving tier** over the BANKS search engines: the
//! layering move the OLAP literature makes between the query engine and the
//! tier that fields traffic.  `banks-core` executes one search on the
//! caller's thread; this crate owns a [`banks_graph::DataGraph`] (plus
//! prestige, keyword index and engine registry) and executes many queries
//! concurrently on a pool of `std` worker threads — channels and mutexes
//! only, no external runtime.
//!
//! ## The moving parts
//!
//! * **[`Service`]** — built with
//!   `Service::builder(graph).workers(4).cache_capacity(256).build()`;
//!   owns the shared read-only search state and the worker pool.
//! * **[`QuerySpec`]** — keywords + [`banks_core::SearchParams`] +
//!   optional engine name; normalized by the same single function the
//!   `Banks` facade uses, so cache keys agree byte for byte.
//! * **[`QueryHandle`]** — returned by [`Service::submit`]: stream answers
//!   as the engine emits them ([`QueryHandle::recv`] /
//!   [`QueryHandle::next_answer`]), watch live
//!   [`banks_core::SearchStats`], [`QueryHandle::cancel`] at any time, or
//!   [`QueryHandle::wait`] for the batch outcome.
//! * **Cancellation** — every query carries a [`banks_core::CancelToken`]
//!   checked before each expansion step, so aborts land within one step
//!   without tearing down the worker.
//! * **Admission control** — a bounded queue; a full queue rejects with
//!   [`SubmitError::QueueFull`] instead of buffering without limit.
//! * **Result cache** — a shared [`banks_core::ResultCache`] keyed by
//!   `(graph epoch, normalized keywords, params/engine fingerprint)`;
//!   hits complete at submit time with zero engine work.
//! * **Deterministic deadlines** — per-answer budgets are *work-based*
//!   ([`banks_core::SearchParams::answer_work_budget`], nodes explored per
//!   answer), so they cut at the same node whether the pool is idle or
//!   saturated.
//! * **[`ServiceMetrics`]** — aggregate counters (submitted / rejected /
//!   executed / cancelled / cache hits / answers delivered).
//!
//! ## Example
//!
//! ```
//! use banks_graph::GraphBuilder;
//! use banks_service::{QueryEvent, QuerySpec, Service};
//!
//! let mut b = GraphBuilder::new();
//! let author = b.add_node("author", "Jim Gray");
//! let paper = b.add_node("paper", "Granularity of locks");
//! let writes = b.add_node("writes", "w0");
//! b.add_edge(writes, author).unwrap();
//! b.add_edge(writes, paper).unwrap();
//!
//! let service = Service::builder(b.build_default())
//!     .workers(2)
//!     .cache_capacity(64)
//!     .build();
//!
//! // Stream answers as they arrive.
//! let handle = service.submit(QuerySpec::parse("gray locks").top_k(3)).unwrap();
//! while let Some(event) = handle.recv() {
//!     match event {
//!         QueryEvent::Answer(answer) => assert_eq!(answer.tree.root, writes),
//!         QueryEvent::Finished(result) => assert!(!result.cache_hit),
//!     }
//! }
//!
//! // The identical query now hits the cache: zero engine work.
//! let spec = QuerySpec::parse("gray locks").top_k(3);
//! let (outcome, result) = service.submit(spec).unwrap().wait();
//! assert!(result.cache_hit);
//! assert_eq!(outcome.answers.len(), 1);
//! ```

pub mod handle;
pub mod metrics;
pub mod service;
pub mod spec;

pub use handle::{QueryEvent, QueryHandle, QueryId, QueryResult};
pub use metrics::ServiceMetrics;
pub use service::{Service, ServiceBuilder, SubmitError};
pub use spec::QuerySpec;
