//! Replication roles and follower progress tracking.
//!
//! A service is **standalone** until told otherwise.  A server that ships
//! its WAL to read replicas marks itself **leader**; a replica that
//! bootstraps from a leader snapshot and tails the leader's WAL stream
//! marks itself **follower** ([`crate::Service::set_replication_role`]).
//! The follower's apply loop reports its progress here —
//! [`crate::Service::note_replication_head`] each time the leader
//! announces its newest epoch, implicitly on every
//! [`crate::Service::apply_replicated`] — and the resulting
//! [`ReplicationStatus`] is surfaced on [`crate::ServiceMetrics`], the
//! `/healthz` document, and the `replication_lag_ms` time series the
//! `replication_lag` SLO judges.

/// Which role this service plays in a replication pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplicationRole {
    /// Not replicating (the default).
    #[default]
    Standalone,
    /// Serving its WAL to followers over `GET /replication/stream`.
    Leader,
    /// Tailing a leader's WAL stream; local mutations are rejected.
    Follower,
}

impl ReplicationRole {
    /// The lowercase wire name (`"standalone"` / `"leader"` /
    /// `"follower"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplicationRole::Standalone => "standalone",
            ReplicationRole::Leader => "leader",
            ReplicationRole::Follower => "follower",
        }
    }
}

/// Point-in-time replication progress, as reported by
/// [`crate::Service::replication_status`] and carried on
/// [`crate::ServiceMetrics::replication`].
///
/// On a standalone service (and on a leader, which by definition is never
/// behind itself) every numeric field reads zero except `applied_epoch`,
/// which mirrors the serving epoch once any progress was noted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplicationStatus {
    /// This service's role.
    pub role: ReplicationRole,
    /// Newest epoch the leader has announced (head or keepalive events;
    /// 0 until the first announcement).
    pub leader_epoch: u64,
    /// Newest leader epoch this service has applied locally.
    pub applied_epoch: u64,
    /// Records the leader has announced beyond `applied_epoch` — the
    /// apply backlog as of the last head announcement.
    pub lag_records: u64,
    /// How long this service has continuously known about unapplied
    /// leader epochs, in milliseconds (0 when caught up).  This is the
    /// staleness signal the `replication_lag` SLO bounds.
    pub lag_ms: u64,
}

/// The mutable replication bookkeeping guarded by `Inner::replication`.
#[derive(Debug, Default)]
pub(crate) struct ReplicationState {
    role: ReplicationRole,
    leader_epoch: u64,
    applied_epoch: u64,
    lag_records: u64,
    /// Wall-clock ms at which the service first observed the current
    /// stretch of `applied_epoch < leader_epoch`; `None` while caught up.
    behind_since_ms: Option<u64>,
}

impl ReplicationState {
    pub(crate) fn set_role(&mut self, role: ReplicationRole) {
        self.role = role;
    }

    pub(crate) fn role(&self) -> ReplicationRole {
        self.role
    }

    /// Records a leader head announcement at `now_ms`.
    pub(crate) fn note_head(&mut self, leader_epoch: u64, lag_records: u64, now_ms: u64) {
        self.leader_epoch = self.leader_epoch.max(leader_epoch);
        self.lag_records = lag_records;
        self.refresh_behind(now_ms);
    }

    /// Records local apply progress at `now_ms`.
    pub(crate) fn note_applied(&mut self, applied_epoch: u64, now_ms: u64) {
        self.applied_epoch = self.applied_epoch.max(applied_epoch);
        // Applying an epoch proves the leader reached it too.
        self.leader_epoch = self.leader_epoch.max(applied_epoch);
        if self.applied_epoch >= self.leader_epoch {
            self.lag_records = 0;
        } else {
            self.lag_records = self.lag_records.saturating_sub(1);
        }
        self.refresh_behind(now_ms);
    }

    fn refresh_behind(&mut self, now_ms: u64) {
        if self.applied_epoch >= self.leader_epoch {
            self.behind_since_ms = None;
        } else if self.behind_since_ms.is_none() {
            self.behind_since_ms = Some(now_ms);
        }
    }

    /// The status snapshot as of `now_ms`.
    pub(crate) fn status(&self, now_ms: u64) -> ReplicationStatus {
        ReplicationStatus {
            role: self.role,
            leader_epoch: self.leader_epoch,
            applied_epoch: self.applied_epoch,
            lag_records: self.lag_records,
            lag_ms: self
                .behind_since_ms
                .map(|since| now_ms.saturating_sub(since))
                .unwrap_or(0),
        }
    }
}

/// Outcome of [`crate::Service::apply_replicated`] when the record was
/// accepted (or was already reflected in the serving graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicatedApply {
    /// The serving epoch after the call.
    pub epoch: u64,
    /// Whether the record actually advanced the graph (`false`: its epoch
    /// was at or behind the serving epoch — a resumed stream replaying
    /// records the follower already holds).
    pub applied: bool,
}

/// Why [`crate::Service::apply_replicated`] refused a record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicationApplyError {
    /// The record's parent epoch does not match the serving epoch: the
    /// stream skipped ahead of this follower (typically because the
    /// leader checkpointed and truncated the WAL past the follower's
    /// position).  The follower must re-bootstrap from a leader snapshot.
    EpochGap {
        /// The follower's serving epoch (the parent it can accept).
        serving_epoch: u64,
        /// The record's parent epoch.
        parent_epoch: u64,
        /// The record's own epoch.
        record_epoch: u64,
    },
    /// The local WAL append failed; the record was not applied, so the
    /// serving graph and the local disk state remain consistent and the
    /// caller can retry the same record.
    Persist(String),
}

impl std::fmt::Display for ReplicationApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationApplyError::EpochGap {
                serving_epoch,
                parent_epoch,
                record_epoch,
            } => write!(
                f,
                "replication gap: record for epoch {record_epoch} builds on parent \
                 {parent_epoch}, but the serving epoch is {serving_epoch}; re-bootstrap required"
            ),
            ReplicationApplyError::Persist(e) => {
                write!(f, "local WAL append failed: {e}")
            }
        }
    }
}

impl std::error::Error for ReplicationApplyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caught_up_state_reports_zero_lag() {
        let mut state = ReplicationState::default();
        state.set_role(ReplicationRole::Follower);
        state.note_head(5, 0, 1_000);
        state.note_applied(5, 1_100);
        let status = state.status(9_000);
        assert_eq!(status.role, ReplicationRole::Follower);
        assert_eq!(status.leader_epoch, 5);
        assert_eq!(status.applied_epoch, 5);
        assert_eq!(status.lag_records, 0);
        assert_eq!(status.lag_ms, 0);
    }

    #[test]
    fn lag_accrues_from_the_moment_the_gap_was_learned() {
        let mut state = ReplicationState::default();
        state.note_applied(3, 500);
        state.note_head(7, 4, 1_000);
        // a later head announcement does not restart the clock
        state.note_head(8, 5, 2_000);
        let status = state.status(4_500);
        assert_eq!(status.leader_epoch, 8);
        assert_eq!(status.lag_records, 5);
        assert_eq!(status.lag_ms, 3_500);
        // catching up clears both the backlog and the clock
        state.note_applied(8, 5_000);
        let status = state.status(9_999);
        assert_eq!(status.lag_records, 0);
        assert_eq!(status.lag_ms, 0);
    }

    #[test]
    fn applying_an_epoch_implies_the_leader_reached_it() {
        let mut state = ReplicationState::default();
        state.note_applied(12, 100);
        let status = state.status(100);
        assert_eq!(status.leader_epoch, 12);
        assert_eq!(status.applied_epoch, 12);
        assert_eq!(status.lag_ms, 0);
    }

    #[test]
    fn roles_have_stable_wire_names() {
        assert_eq!(ReplicationRole::Standalone.as_str(), "standalone");
        assert_eq!(ReplicationRole::Leader.as_str(), "leader");
        assert_eq!(ReplicationRole::Follower.as_str(), "follower");
        assert_eq!(ReplicationRole::default(), ReplicationRole::Standalone);
    }
}
