//! The caller's side of a submitted query.

use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use banks_core::{CancelToken, RankedAnswer, SearchOutcome, SearchStats};

/// Identifier of a submitted query, unique within one service instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Why [`QueryHandle::recv_timeout`] returned without an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeout {
    /// No event arrived within the timeout; the query is still running (or
    /// still queued).  Call again.
    TimedOut,
    /// The stream is over: the terminal event was already consumed, or the
    /// service dropped the query during shutdown.  No further events will
    /// ever arrive.
    Closed,
}

/// Progress events delivered to a [`QueryHandle`], in order: zero or more
/// [`QueryEvent::Answer`]s followed by exactly one [`QueryEvent::Finished`].
#[derive(Clone, Debug)]
pub enum QueryEvent {
    /// One ranked answer, streamed as soon as the engine emits it.
    Answer(RankedAnswer),
    /// The query ended (completed, truncated, cancelled, or served from the
    /// cache).  No further events follow.
    Finished(QueryResult),
}

/// Terminal summary of a query.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    /// Final engine statistics (for a cache hit: the stats of the original
    /// execution).
    pub stats: SearchStats,
    /// Whether the answers were replayed from the result cache (zero engine
    /// work happened).
    pub cache_hit: bool,
    /// Time from submission to the first answer leaving the worker (`None`
    /// when no answer was produced; approximately zero for cache hits).
    pub time_to_first_answer: Option<Duration>,
    /// Time the query waited in the admission scheduler before a worker
    /// picked it up — the scheduler-induced share of the latency (zero for
    /// cache hits, which never queue).
    pub queue_wait: Duration,
    /// Epoch of the graph version this query ran against (for a cache hit:
    /// the epoch the entry was cached under).  After a
    /// [`crate::Service::swap_graph`], in-flight queries report the old
    /// epoch and new admissions the new one.
    pub epoch: u64,
    /// The phase trace, present only when the submission requested one
    /// ([`crate::QuerySpec::trace`]).  Shared with the service's trace
    /// ring, hence the `Arc`.
    pub trace: Option<Arc<banks_obs::QueryTrace>>,
}

/// State shared between the executing worker and the handle, so live
/// statistics are observable while the query runs.
#[derive(Debug, Default)]
pub(crate) struct HandleState {
    pub(crate) live_stats: Mutex<SearchStats>,
    /// The terminal result, stashed when a `Finished` event passes through
    /// `recv` so that `wait` can report it even after `next_answer`
    /// consumed (and discarded) the event.
    pub(crate) finished: Mutex<Option<QueryResult>>,
}

impl HandleState {
    pub(crate) fn publish(&self, stats: SearchStats) {
        *self.live_stats.lock().expect("stats lock") = stats;
    }
}

/// A submitted query: poll or block for answers, watch live statistics,
/// cancel at any time.
///
/// Dropping the handle cancels the query: the worker notices the closed
/// channel (or the cancelled token) and stops expanding.
pub struct QueryHandle {
    pub(crate) id: QueryId,
    pub(crate) token: CancelToken,
    pub(crate) events: Receiver<QueryEvent>,
    pub(crate) state: Arc<HandleState>,
}

impl QueryHandle {
    /// The query's service-unique id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// A clone of the query's cancellation token (usable from any thread).
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Requests cooperative cancellation: the executing engine stops within
    /// one expansion step.  Already-produced answers remain receivable.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Snapshot of the work counters published by the worker so far (zeros
    /// while the query waits in the admission queue).
    pub fn live_stats(&self) -> SearchStats {
        self.state.live_stats.lock().expect("stats lock").clone()
    }

    /// Blocks until the next event.  Returns `None` once the stream is over
    /// (after [`QueryEvent::Finished`], or if the service dropped the query
    /// during shutdown).
    pub fn recv(&self) -> Option<QueryEvent> {
        let event = self.events.recv().ok()?;
        self.stash_if_finished(&event);
        Some(event)
    }

    /// Blocks for at most `timeout` waiting for the next event.
    ///
    /// The bounded-wait receive loop a network front-end needs: between
    /// events it can time out, probe its client for liveness, and call
    /// again — instead of blocking indefinitely on a query that may emit
    /// nothing for a long stretch.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<QueryEvent, RecvTimeout> {
        match self.events.recv_timeout(timeout) {
            Ok(event) => {
                self.stash_if_finished(&event);
                Ok(event)
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvTimeout::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(RecvTimeout::Closed),
        }
    }

    /// Non-blocking poll for the next event.
    pub fn try_recv(&self) -> Option<QueryEvent> {
        match self.events.try_recv() {
            Ok(event) => {
                self.stash_if_finished(&event);
                Some(event)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Records the terminal result so it stays observable (via
    /// [`QueryHandle::result`] and [`QueryHandle::wait`]) no matter which
    /// receive path consumed the event.
    fn stash_if_finished(&self, event: &QueryEvent) {
        if let QueryEvent::Finished(result) = event {
            *self.state.finished.lock().expect("result lock") = Some(result.clone());
        }
    }

    /// The terminal [`QueryResult`], once any receive path has seen the
    /// `Finished` event.
    pub fn result(&self) -> Option<QueryResult> {
        self.state.finished.lock().expect("result lock").clone()
    }

    /// Blocks until the next *answer*: returns `None` once the query
    /// finished (the terminal [`QueryResult`] then remains available via
    /// [`QueryHandle::result`] or [`QueryHandle::wait`]).
    pub fn next_answer(&self) -> Option<RankedAnswer> {
        match self.recv()? {
            QueryEvent::Answer(answer) => Some(answer),
            QueryEvent::Finished(_) => None,
        }
    }

    /// Drains the query to completion and packages the batch outcome.
    ///
    /// Works regardless of how much was already consumed: a `Finished`
    /// event seen earlier (e.g. through [`QueryHandle::next_answer`]) is
    /// reused.  Only when the service dropped the query before it ran —
    /// shutdown — does the result fall back to `cancelled` stats.
    pub fn wait(self) -> (SearchOutcome, QueryResult) {
        let mut answers = Vec::new();
        let mut result = None;
        while let Some(event) = self.recv() {
            match event {
                QueryEvent::Answer(answer) => answers.push(answer),
                QueryEvent::Finished(r) => {
                    result = Some(r);
                    break;
                }
            }
        }
        let result = result
            .or_else(|| self.result())
            .unwrap_or_else(|| QueryResult {
                stats: SearchStats {
                    cancelled: true,
                    ..SearchStats::default()
                },
                ..QueryResult::default()
            });
        (
            SearchOutcome {
                answers,
                stats: result.stats.clone(),
            },
            result,
        )
    }
}
