//! Service-side durability plumbing: the WAL + checkpoint lifecycle run
//! around the serving snapshot.
//!
//! The [`crate::Service`] write path is WAL-first: inside the mutation
//! mutex, an accepted batch is appended (and fsynced per policy) *before*
//! the successor snapshot is swapped in.  Checkpoints — a full snapshot of
//! graph, prestige **and** keyword index, then WAL truncation and stale
//! snapshot pruning — happen on demand ([`crate::Service::checkpoint`]),
//! when a mutation chain triggers compaction, when the WAL crosses its
//! rotation threshold, and after a wholesale
//! [`crate::Service::swap_graph`] (which bypasses the WAL and therefore
//! must be made durable by a snapshot).

use std::path::{Path, PathBuf};

use banks_obs::{Histogram, LatencySummary};
use banks_persist::{
    list_snapshots, snapshot_file_name, write_snapshot, PersistError, PersistOptions, Wal, WalScan,
};

use crate::snapshot::GraphSnapshot;

/// Durability state of a service, as reported by
/// [`crate::Service::durability`] and the `/healthz` endpoint.  All-zero
/// numeric fields with `enabled == false` mean persistence is off.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurabilityStatus {
    /// Whether the service was built with a data directory.
    pub enabled: bool,
    /// The data directory, when enabled.
    pub data_dir: Option<PathBuf>,
    /// Epoch of the most recent on-disk snapshot.
    pub last_checkpoint_epoch: u64,
    /// Mutation batches in the WAL since that snapshot.
    pub wal_records: u64,
    /// Size of the WAL file in bytes.
    pub wal_bytes: u64,
    /// Checkpoints taken since the service started (the boot checkpoint
    /// included).
    pub checkpoints: u64,
    /// WAL records replayed at boot (0 after a clean shutdown).
    pub replayed_records: u64,
    /// The most recent persistence failure, if any (a failed WAL append
    /// rejects the mutation; a failed background checkpoint is recorded
    /// here and retried on the next trigger).
    pub last_error: Option<String>,
    /// Latency distribution of successful checkpoints (snapshot write +
    /// WAL reset + prune) since the service started.
    pub checkpoint_latency: LatencySummary,
    /// Latency distribution of WAL fsyncs since the service started.
    pub wal_fsync: LatencySummary,
}

/// The mutable durability state guarded by `Inner::persistence`.
pub(crate) struct Persistence {
    dir: PathBuf,
    wal: Wal,
    options: PersistOptions,
    last_checkpoint_epoch: u64,
    checkpoints: u64,
    replayed_records: u64,
    last_error: Option<String>,
    checkpoint_hist: Histogram,
}

impl Persistence {
    /// Wraps a freshly-created WAL for a directory with no prior state.
    pub(crate) fn fresh(dir: &Path, wal: Wal, options: PersistOptions) -> Self {
        Persistence {
            dir: dir.to_path_buf(),
            wal,
            options,
            last_checkpoint_epoch: 0,
            checkpoints: 0,
            replayed_records: 0,
            last_error: None,
            checkpoint_hist: Histogram::new(),
        }
    }

    /// Wraps the WAL re-opened after recovery.
    pub(crate) fn recovered(
        dir: &Path,
        wal: Wal,
        options: PersistOptions,
        snapshot_epoch: u64,
        replayed_records: u64,
    ) -> Self {
        Persistence {
            dir: dir.to_path_buf(),
            wal,
            options,
            last_checkpoint_epoch: snapshot_epoch,
            checkpoints: 0,
            replayed_records,
            last_error: None,
            checkpoint_hist: Histogram::new(),
        }
    }

    /// Opens (or creates) the WAL for `dir` after a recovery scan.
    pub(crate) fn open_wal(
        dir: &Path,
        options: &PersistOptions,
        scan: &WalScan,
    ) -> Result<Wal, PersistError> {
        Wal::open_after_scan(&dir.join(banks_persist::WAL_FILE), options.fsync, scan)
    }

    /// Appends one accepted batch, WAL-first.  A failure here means the
    /// mutation is **not** durable; the caller must not swap the successor
    /// in.  On success, returns the duration in microseconds of the fsync
    /// **this append triggered** (0 when the policy deferred it) — the
    /// mutation trace attributes the fsync to its triggering batch.
    pub(crate) fn append(
        &mut self,
        parent_epoch: u64,
        epoch: u64,
        batch: &banks_graph::MutationBatch,
    ) -> Result<u64, PersistError> {
        let syncs_before = self.wal.syncs();
        match self.wal.append(parent_epoch, epoch, batch) {
            Ok(_) => Ok(if self.wal.syncs() > syncs_before {
                self.wal.last_sync_micros()
            } else {
                0
            }),
            Err(e) => {
                self.last_error = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Whether the WAL has grown past the rotation threshold.
    pub(crate) fn wants_rotation(&self) -> bool {
        self.wal.bytes() >= self.options.rotate_wal_bytes
    }

    /// The data directory this state persists into.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the live WAL file (the replication stream's source).
    pub(crate) fn wal_path(&self) -> PathBuf {
        self.dir.join(banks_persist::WAL_FILE)
    }

    /// Deletes every on-disk snapshot.  A follower bootstrap invalidates
    /// local history wholesale: epochs adopted from the leader are not
    /// ordered against epochs minted locally before the bootstrap, so
    /// retention-by-newest-epoch must restart from a clean slate before
    /// the bootstrap checkpoint is written.
    pub(crate) fn clear_snapshots(&mut self) {
        if let Ok(snapshots) = list_snapshots(&self.dir) {
            for (_, path) in snapshots {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// Writes a full snapshot of `snapshot` (graph, prestige and index),
    /// truncates the WAL and prunes snapshots beyond the retention bound.
    /// Returns the checkpointed epoch.
    pub(crate) fn checkpoint(&mut self, snapshot: &GraphSnapshot) -> Result<u64, PersistError> {
        let started = std::time::Instant::now();
        let epoch = snapshot.epoch();
        let path = self.dir.join(snapshot_file_name(epoch));
        let result = write_snapshot(
            &path,
            snapshot.graph(),
            Some(snapshot.prestige()),
            Some(snapshot.index()),
        )
        .and_then(|_| self.wal.reset());
        match result {
            Ok(()) => {
                self.checkpoint_hist.record(started.elapsed());
                self.last_checkpoint_epoch = epoch;
                self.checkpoints += 1;
                self.last_error = None;
                let keep = self.options.keep_snapshots.max(1);
                if let Ok(snapshots) = list_snapshots(&self.dir) {
                    for (_, stale) in snapshots.into_iter().skip(keep) {
                        // Best-effort: a vanished file must not fail the
                        // checkpoint that just succeeded.
                        let _ = std::fs::remove_file(stale);
                    }
                }
                Ok(epoch)
            }
            Err(e) => {
                self.last_error = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Current status, for metrics and `/healthz`.
    pub(crate) fn status(&self) -> DurabilityStatus {
        DurabilityStatus {
            enabled: true,
            data_dir: Some(self.dir.clone()),
            last_checkpoint_epoch: self.last_checkpoint_epoch,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            checkpoints: self.checkpoints,
            replayed_records: self.replayed_records,
            last_error: self.last_error.clone(),
            checkpoint_latency: self.checkpoint_hist.summary(),
            wal_fsync: self.wal.fsync_latency(),
        }
    }
}
