//! Query specifications submitted to the service.

use banks_core::SearchParams;
use banks_textindex::Query;

/// One query request: the keywords, the search parameters and (optionally)
/// a non-default engine.
///
/// ```
/// use banks_service::QuerySpec;
///
/// let spec = QuerySpec::parse("\"jim gray\" locks")
///     .top_k(5)
///     .engine("si-backward");
/// assert_eq!(spec.query.len(), 2);
/// assert_eq!(spec.engine.as_deref(), Some("si-backward"));
/// ```
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The parsed keyword query (normalization happens inside the service,
    /// with the same function the `Banks` facade uses).
    pub query: Query,
    /// Search parameters.
    pub params: SearchParams,
    /// Engine registry name; `None` runs the service's default engine.
    pub engine: Option<String>,
}

impl QuerySpec {
    /// A spec over an already-parsed query with default parameters.
    pub fn new(query: Query) -> Self {
        QuerySpec {
            query,
            params: SearchParams::default(),
            engine: None,
        }
    }

    /// Parses a raw query string (quoted phrases honoured).
    pub fn parse(raw: &str) -> Self {
        Self::new(Query::parse(raw))
    }

    /// Builds a spec from pre-split keywords.
    pub fn keywords<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(Query::from_keywords(keywords))
    }

    /// Number of answers requested.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.params.top_k = top_k;
        self
    }

    /// Replaces the whole parameter set.
    pub fn params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// Per-answer work budget (nodes explored between emissions): the
    /// deterministic deadline enforced identically under any load.
    pub fn answer_work_budget(mut self, budget: usize) -> Self {
        self.params = self.params.answer_work_budget(budget);
        self
    }

    /// Selects a non-default engine by registry name.
    pub fn engine(mut self, name: impl Into<String>) -> Self {
        self.engine = Some(name.into());
        self
    }
}

impl From<Query> for QuerySpec {
    fn from(query: Query) -> Self {
        QuerySpec::new(query)
    }
}

impl From<&str> for QuerySpec {
    fn from(raw: &str) -> Self {
        QuerySpec::parse(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let spec = QuerySpec::keywords(["gray", "locks"])
            .top_k(7)
            .answer_work_budget(100)
            .engine("mi");
        assert_eq!(spec.query.len(), 2);
        assert_eq!(spec.params.top_k, 7);
        assert_eq!(spec.params.answer_work_budget, Some(100));
        assert_eq!(spec.engine.as_deref(), Some("mi"));
    }

    #[test]
    fn conversions() {
        let from_str: QuerySpec = "gray locks".into();
        assert_eq!(from_str.query.len(), 2);
        let from_query: QuerySpec = Query::parse("gray").into();
        assert_eq!(from_query.query.len(), 1);
        assert!(from_query.engine.is_none());
    }
}
