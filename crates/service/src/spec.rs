//! Query specifications submitted to the service.

use banks_core::SearchParams;
use banks_textindex::Query;

/// Scheduling class of a submission, applied as a multiplier to the
/// estimated cost before the scheduler charges it.
///
/// The scheduler orders work by *charged* cost
/// ([`banks_core::QueryCost::estimated_work`] scaled by this class), so a
/// higher class both sorts a query earlier within its tenant and debits the
/// tenant's fair share less.  Priority shifts ordering; it cannot starve
/// anyone — aging applies to charged costs exactly as to real ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (a user is waiting): charged a quarter of
    /// the estimated cost.
    Interactive,
    /// The default class: charged exactly the estimated cost.
    #[default]
    Normal,
    /// Throughput traffic that tolerates queueing (reindex probes, batch
    /// analytics): charged four times the estimated cost.
    Batch,
}

impl Priority {
    /// The cost the scheduler charges for a job with this priority and the
    /// given estimated work (always at least 1).
    pub fn charge(self, estimated_work: u64) -> u64 {
        match self {
            Priority::Interactive => (estimated_work / 4).max(1),
            Priority::Normal => estimated_work.max(1),
            Priority::Batch => estimated_work.saturating_mul(4).max(1),
        }
    }

    /// The wire name of this class (the value accepted back by
    /// [`Priority::from_str`](std::str::FromStr)).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }
}

impl std::str::FromStr for Priority {
    type Err = String;

    /// Parses the wire form used by network front-ends (e.g. the
    /// `X-Banks-Priority` header): `interactive`, `normal` or `batch`,
    /// case-insensitive; the empty string means the default class.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interactive" => Ok(Priority::Interactive),
            "normal" | "" => Ok(Priority::Normal),
            "batch" => Ok(Priority::Batch),
            other => Err(format!(
                "unknown priority {other:?} (expected interactive, normal or batch)"
            )),
        }
    }
}

/// One query request: the keywords, the search parameters, scheduling
/// identity (tenant + priority) and (optionally) a non-default engine.
///
/// ```
/// use banks_service::{Priority, QuerySpec};
///
/// let spec = QuerySpec::parse("\"jim gray\" locks")
///     .top_k(5)
///     .engine("si-backward")
///     .tenant("ui")
///     .priority(Priority::Interactive);
/// assert_eq!(spec.query.len(), 2);
/// assert_eq!(spec.engine.as_deref(), Some("si-backward"));
/// assert_eq!(spec.tenant.as_deref(), Some("ui"));
/// ```
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The parsed keyword query (normalization happens inside the service,
    /// with the same function the `Banks` facade uses).
    pub query: Query,
    /// Search parameters.
    pub params: SearchParams,
    /// Engine registry name; `None` runs the service's default engine.
    pub engine: Option<String>,
    /// Fair-share accounting identity.  Submissions naming no tenant share
    /// the anonymous tenant `""`.  Tenancy affects only *scheduling* — the
    /// result cache is shared across tenants (same query, same answers).
    pub tenant: Option<String>,
    /// Scheduling class (see [`Priority`]).
    pub priority: Priority,
    /// Phase-tracing request.  `Some(ref)` asks the service to assemble a
    /// [`crate::QueryTrace`] for this query and attach it to the
    /// [`crate::QueryResult`]; the string (a client correlation reference,
    /// typically the `X-Banks-Trace` header value) is echoed back on the
    /// trace.  An empty string is a valid reference.
    pub trace: Option<String>,
}

impl QuerySpec {
    /// A spec over an already-parsed query with default parameters.
    pub fn new(query: Query) -> Self {
        QuerySpec {
            query,
            params: SearchParams::default(),
            engine: None,
            tenant: None,
            priority: Priority::Normal,
            trace: None,
        }
    }

    /// Parses a raw query string (quoted phrases honoured).
    pub fn parse(raw: &str) -> Self {
        Self::new(Query::parse(raw))
    }

    /// Builds a spec from pre-split keywords.
    pub fn keywords<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(Query::from_keywords(keywords))
    }

    /// Number of answers requested.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.params.top_k = top_k;
        self
    }

    /// Replaces the whole parameter set.
    pub fn params(mut self, params: SearchParams) -> Self {
        self.params = params;
        self
    }

    /// Per-answer work budget (nodes explored between emissions): the
    /// deterministic deadline enforced identically under any load.
    pub fn answer_work_budget(mut self, budget: usize) -> Self {
        self.params = self.params.answer_work_budget(budget);
        self
    }

    /// Selects a non-default engine by registry name.
    pub fn engine(mut self, name: impl Into<String>) -> Self {
        self.engine = Some(name.into());
        self
    }

    /// Names the tenant this submission is accounted to for fair-share
    /// scheduling.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Requests a phase trace for this query, tagged with a client
    /// correlation reference (echoed back on the trace).
    pub fn trace(mut self, reference: impl Into<String>) -> Self {
        self.trace = Some(reference.into());
        self
    }
}

impl From<Query> for QuerySpec {
    fn from(query: Query) -> Self {
        QuerySpec::new(query)
    }
}

impl From<&str> for QuerySpec {
    fn from(raw: &str) -> Self {
        QuerySpec::parse(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let spec = QuerySpec::keywords(["gray", "locks"])
            .top_k(7)
            .answer_work_budget(100)
            .engine("mi")
            .tenant("dashboard")
            .priority(Priority::Batch);
        assert_eq!(spec.query.len(), 2);
        assert_eq!(spec.params.top_k, 7);
        assert_eq!(spec.params.answer_work_budget, Some(100));
        assert_eq!(spec.engine.as_deref(), Some("mi"));
        assert_eq!(spec.tenant.as_deref(), Some("dashboard"));
        assert_eq!(spec.priority, Priority::Batch);
    }

    #[test]
    fn conversions() {
        let from_str: QuerySpec = "gray locks".into();
        assert_eq!(from_str.query.len(), 2);
        assert!(from_str.tenant.is_none());
        assert_eq!(from_str.priority, Priority::Normal);
        let from_query: QuerySpec = Query::parse("gray").into();
        assert_eq!(from_query.query.len(), 1);
        assert!(from_query.engine.is_none());
    }

    #[test]
    fn priority_parses_wire_names() {
        assert_eq!("interactive".parse::<Priority>(), Ok(Priority::Interactive));
        assert_eq!(" Batch ".parse::<Priority>(), Ok(Priority::Batch));
        assert_eq!("NORMAL".parse::<Priority>(), Ok(Priority::Normal));
        assert_eq!("".parse::<Priority>(), Ok(Priority::Normal));
        assert!("urgent".parse::<Priority>().is_err());
        for p in [Priority::Interactive, Priority::Normal, Priority::Batch] {
            assert_eq!(p.as_str().parse::<Priority>(), Ok(p), "round-trip");
        }
    }

    #[test]
    fn priority_scales_the_charged_cost() {
        assert_eq!(Priority::Interactive.charge(1000), 250);
        assert_eq!(Priority::Normal.charge(1000), 1000);
        assert_eq!(Priority::Batch.charge(1000), 4000);
        // clamped to at least one unit, and saturating at the top
        assert_eq!(Priority::Interactive.charge(2), 1);
        assert_eq!(Priority::Normal.charge(0), 1);
        assert_eq!(Priority::Batch.charge(u64::MAX), u64::MAX);
    }
}
