//! The serving-side shard set: one logical graph version, `K` shards.
//!
//! [`ShardSet`] is what the service's serving pointer actually holds.  It
//! wraps the **union** [`GraphSnapshot`] — the single source of truth every
//! query resolves, expands and caches against — together with the
//! [`ShardSpec`] describing how nodes hash to shards and, when `K > 1`,
//! the materialised [`GraphPartition`] (per-shard subgraphs with boundary
//! replicas).  The whole set shares **one logical epoch**: the union
//! snapshot's.  A mutation batch advances the union and fans its accepted
//! ops out to the owning shards in the same swap, so there is never a
//! moment where the shards describe a different version than the union.
//!
//! With `K = 1` no partition is built at all — the set is a plain snapshot
//! and the sharded code paths cost nothing.

use std::sync::Arc;

use banks_graph::{
    BatchOutcome, GraphMutation, GraphPartition, MutationBatch, ShardSpec, ShardStats,
};

use crate::snapshot::GraphSnapshot;

/// One graph version as served: the union [`GraphSnapshot`] plus its
/// `K`-way partition (absent when `K = 1`).  Immutable once built —
/// mutations produce a successor set, exactly like snapshots.
#[derive(Clone, Debug)]
pub struct ShardSet {
    /// The union snapshot — the authoritative graph/prestige/index every
    /// query pins.
    snapshot: Arc<GraphSnapshot>,
    /// Node-to-shard assignment (hash of the stable `NodeId`).
    spec: ShardSpec,
    /// Materialised per-shard subgraphs; `None` when `K = 1`.
    partition: Option<GraphPartition>,
}

impl ShardSet {
    /// Builds a set over `snapshot` with `shards` shards (clamped to at
    /// least 1).  `K = 1` skips partition construction entirely.
    pub(crate) fn build(snapshot: GraphSnapshot, shards: usize) -> Self {
        let spec = ShardSpec::new(shards);
        let partition = (spec.shards() > 1).then(|| GraphPartition::build(snapshot.graph(), spec));
        ShardSet {
            snapshot: Arc::new(snapshot),
            spec,
            partition,
        }
    }

    /// Assembles a set from an already-derived partition (the incremental
    /// mutation path, which fans ops out instead of rebuilding).
    pub(crate) fn from_parts(
        snapshot: GraphSnapshot,
        spec: ShardSpec,
        partition: Option<GraphPartition>,
    ) -> Self {
        ShardSet {
            snapshot: Arc::new(snapshot),
            spec,
            partition,
        }
    }

    /// The union snapshot of this version.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot> {
        &self.snapshot
    }

    /// Number of shards (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.spec.shards()
    }

    /// The node-to-shard assignment.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The materialised partition, when this set is actually sharded.
    pub fn partition(&self) -> Option<&GraphPartition> {
        self.partition.as_ref()
    }

    /// The set's logical epoch — the union snapshot's epoch.  Shards carry
    /// no epoch of their own; they are a projection of this version.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Per-shard size statistics; empty when unsharded.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.partition
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// Fans one applied batch out to the shards: clones the partition
    /// (structurally shared CSR, cheap) and applies exactly the ops the
    /// union accepted, in batch order.  `union` is the **successor**
    /// snapshot the batch already produced.  Returns `None` when the set
    /// is unsharded.
    pub(crate) fn successor_partition(
        &self,
        union: &GraphSnapshot,
        batch: &MutationBatch,
        outcome: &BatchOutcome,
    ) -> Option<GraphPartition> {
        let partition = self.partition.as_ref()?;
        let accepted: Vec<GraphMutation> = batch
            .ops()
            .iter()
            .zip(&outcome.results)
            .filter(|(_, result)| result.is_ok())
            .map(|(op, _)| op.clone())
            .collect();
        let mut next = partition.clone();
        next.apply_ops(union.graph(), &accepted);
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::{GraphBuilder, NodeId};

    fn small_graph() -> banks_graph::DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Jim Gray");
        let p = b.add_node("paper", "Granularity of locks");
        let w = b.add_node("writes", "w0");
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
        b.build_default()
    }

    #[test]
    fn single_shard_builds_no_partition() {
        let set = ShardSet::build(GraphSnapshot::with_defaults(small_graph()), 1);
        assert_eq!(set.shards(), 1);
        assert!(set.partition().is_none());
        assert!(set.stats().is_empty());
        assert_eq!(set.epoch(), set.snapshot().epoch());
    }

    #[test]
    fn sharded_set_partitions_every_node() {
        let set = ShardSet::build(GraphSnapshot::with_defaults(small_graph()), 4);
        assert_eq!(set.shards(), 4);
        let stats = set.stats();
        assert_eq!(stats.len(), 4);
        let owned: usize = stats.iter().map(|s| s.owned_nodes).sum();
        assert_eq!(owned, set.snapshot().graph().num_nodes());
    }

    #[test]
    fn successor_partition_applies_only_accepted_ops() {
        let set = ShardSet::build(GraphSnapshot::with_defaults(small_graph()), 3);
        let batch = MutationBatch::new()
            .add_node("author", "Edgar Codd")
            // rejected: node 999 does not exist
            .add_edge(NodeId(999), NodeId(0))
            .add_edge(NodeId(3), NodeId(0));
        let (next, outcome) = set.snapshot().apply_batch(&batch);
        assert_eq!(outcome.accepted(), 2);
        assert_eq!(outcome.rejected(), 1);
        let partition = set
            .successor_partition(&next, &batch, &outcome)
            .expect("sharded set yields a successor partition");
        let owned: usize = partition.stats().iter().map(|s| s.owned_nodes).sum();
        assert_eq!(owned, next.graph().num_nodes());
        // the fanned-out partition matches a from-scratch rebuild
        let rebuilt = GraphPartition::build(next.graph(), set.spec());
        assert_eq!(partition.stats(), rebuilt.stats());
    }

    #[test]
    fn unsharded_set_has_no_successor_partition() {
        let set = ShardSet::build(GraphSnapshot::with_defaults(small_graph()), 1);
        let batch = MutationBatch::new().add_node("author", "Edgar Codd");
        let (next, outcome) = set.snapshot().apply_batch(&batch);
        assert!(set.successor_partition(&next, &batch, &outcome).is_none());
    }
}
