//! The admission scheduler: shortest-expected-work-first with per-tenant
//! fair share and aging.
//!
//! PR 2's admission queue was strictly FIFO, which is exactly wrong for the
//! paper's workload: interactive keyword queries are tiny (a two-keyword
//! author lookup explores a few hundred nodes) but occasionally a frequent-
//! keyword, high-`top_k` query costs five orders of magnitude more, and
//! FIFO parks every interactive user behind it.  [`WorkQueue`] replaces the
//! `VecDeque` with a two-level scheduler:
//!
//! * **Across tenants — fair share.**  Each tenant carries a *virtual
//!   finish time*: the charged cost of the work already popped for it.  The
//!   next job is always taken from the backlogged tenant with the smallest
//!   virtual time (ties broken by name), so a tenant flooding the queue
//!   advances its own clock and other tenants' single jobs slip ahead of
//!   the flood's tail.  A tenant becoming backlogged (first job, or again
//!   after an idle period) enters at the *system virtual time* — the clock
//!   of the tenant currently being served — so a newcomer starts level
//!   with the incumbents no matter how much history the service has:
//!   fairness debt is not banked across idle periods, and credit never
//!   accumulates.
//!
//! * **Within a tenant — shortest work first, with aging.**  Jobs are keyed
//!   by `virtual clock at admission + charged cost` and popped in key
//!   order.  With an idle clock this is pure shortest-job-first: the cheap
//!   query admitted *after* an expensive one has the smaller key and runs
//!   first.  Because the global clock advances by the charged cost of every
//!   popped job, a parked expensive job's key is eventually undercut by no
//!   newcomer — once the clock has advanced past its cost, even a
//!   zero-cost arrival keys behind it.  The wait of a job costing `C` is
//!   therefore bounded by `C` units of queue throughput no matter how many
//!   cheap queries keep arriving: aging is built into the key, not a
//!   separate escalation pass.
//!
//! Costs are *charged* in the estimator's unit (expected nodes explored,
//! [`banks_core::QueryCost`]) after scaling by the submitter's
//! [`Priority`](crate::Priority): high-priority work is under-charged and
//! so sorts earlier and debits its tenant less.  Everything is integer
//! arithmetic on explicit inputs — pop order is a pure function of the
//! push/pop sequence, which is what makes the scheduler tests (and replayed
//! production workloads) deterministic.

use std::collections::{BTreeMap, BinaryHeap};

/// One queued entry: the static scheduling key plus the payload.
struct Entry<T> {
    /// `virtual clock at push + charged cost`; smaller pops first.
    key: u64,
    /// Global admission sequence number: FIFO tie-break for equal keys.
    seq: u64,
    /// The charged cost, re-read at pop time to advance the clocks.
    charged: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    /// Reversed so the std max-heap pops the smallest `(key, seq)` first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// Per-tenant state: the virtual finish time and the tenant's own
/// shortest-work-first heap.
struct TenantQueue<T> {
    vtime: u64,
    heap: BinaryHeap<Entry<T>>,
}

/// The two-level work queue described in the [module docs](self).
///
/// Generic over the payload so the scheduling policy is testable without
/// spinning up worker threads: the unit tests drive `push`/`pop` directly
/// and assert on the exact pop order.
pub(crate) struct WorkQueue<T> {
    /// `BTreeMap` so tenant iteration (and thus tie-breaking) is
    /// deterministic by name.
    tenants: BTreeMap<String, TenantQueue<T>>,
    /// Global virtual clock: total charged cost popped so far.  Drives the
    /// within-tenant aging keys.
    drained: u64,
    /// System virtual time for *fair share*: the virtual time of the tenant
    /// most recently selected for service (monotone).  A newly backlogged
    /// tenant enters here, i.e. level with the currently-served tenants —
    /// NOT at `drained`, which is the *sum* over all tenants and would
    /// penalise a newcomer by the service's entire history.
    vnow: u64,
    seq: u64,
    len: usize,
}

impl<T> WorkQueue<T> {
    pub(crate) fn new() -> Self {
        WorkQueue {
            tenants: BTreeMap::new(),
            drained: 0,
            vnow: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Number of queued jobs across all tenants.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether no job is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues a job for `tenant` at `charged` cost (clamped to ≥ 1 so a
    /// zero-cost flood still advances the clock and cannot starve anyone).
    pub(crate) fn push(&mut self, tenant: &str, charged: u64, item: T) {
        let charged = charged.max(1);
        let entry = Entry {
            key: self.drained.saturating_add(charged),
            seq: self.seq,
            charged,
            item,
        };
        self.seq += 1;
        let tenant = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                vtime: 0,
                heap: BinaryHeap::new(),
            });
        if tenant.heap.is_empty() {
            // Reactivation: an idle tenant re-enters at the system virtual
            // time — level with whoever is being served right now.  No
            // banked credit from the past, no stale debt either.
            tenant.vtime = tenant.vtime.max(self.vnow);
        }
        tenant.heap.push(entry);
        self.len += 1;
    }

    /// Pops the next job: the cheapest-keyed job of the backlogged tenant
    /// with the smallest virtual time.  Advances both clocks by the job's
    /// charged cost.
    pub(crate) fn pop(&mut self) -> Option<T> {
        // BTreeMap iterates in name order, so the first minimum wins ties
        // deterministically.  Tenant counts are small; the scan is O(T).
        let name = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.heap.is_empty())
            .min_by_key(|(_, t)| t.vtime)
            .map(|(name, _)| name.clone())?;
        let tenant = self.tenants.get_mut(&name).expect("tenant exists");
        let entry = tenant.heap.pop().expect("tenant backlogged");
        // System virtual time = virtual time of the tenant entering service
        // (monotone): the fair-share baseline newcomers start from.
        self.vnow = self.vnow.max(tenant.vtime);
        tenant.vtime = tenant.vtime.saturating_add(entry.charged);
        self.drained = self.drained.saturating_add(entry.charged);
        if tenant.heap.is_empty() {
            // Drop drained tenants so the map tracks the active set, not
            // every tenant name ever seen.
            self.tenants.remove(&name);
        }
        self.len -= 1;
        Some(entry.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pop every queued item, in order.
    fn pop_all(q: &mut WorkQueue<&'static str>) -> Vec<&'static str> {
        let mut out = Vec::new();
        while let Some(item) = q.pop() {
            out.push(item);
        }
        out
    }

    #[test]
    fn shortest_expected_work_pops_first() {
        let mut q = WorkQueue::new();
        q.push("", 1_000, "expensive");
        q.push("", 10, "cheap");
        q.push("", 100, "medium");
        assert_eq!(q.len(), 3);
        // The cheap query was admitted *behind* the expensive one and still
        // runs first — the FIFO starvation PR 2 suffered from is gone.
        assert_eq!(pop_all(&mut q), vec!["cheap", "medium", "expensive"]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_costs_fall_back_to_fifo() {
        let mut q = WorkQueue::new();
        q.push("", 50, "first");
        q.push("", 50, "second");
        q.push("", 50, "third");
        assert_eq!(pop_all(&mut q), vec!["first", "second", "third"]);
    }

    /// Aging: under a sustained stream of cheap arrivals, the parked
    /// expensive job surfaces after a *bounded* amount of queue throughput
    /// (its own cost), not never.
    #[test]
    fn aging_prevents_starvation_under_sustained_cheap_load() {
        let mut q = WorkQueue::new();
        q.push("", 1_000, "expensive");
        let mut pops = 0usize;
        loop {
            // one cheap arrival per pop: the adversarial steady state
            q.push("", 10, "cheap");
            let popped = q.pop().expect("non-empty");
            pops += 1;
            if popped == "expensive" {
                break;
            }
            assert!(
                pops <= 110,
                "expensive job must pop within cost/cheap-cost (+slack) pops"
            );
        }
        // key = 1000; each cheap pop advances the clock by 10, so the job
        // surfaces once new arrivals key at/past 1000 (the FIFO seq breaks
        // the tie in the older job's favour): exactly 100 pops.
        assert_eq!(pops, 100);
    }

    /// The bound scales with the job's cost: cheaper parked work surfaces
    /// proportionally sooner.
    #[test]
    fn aging_bound_is_proportional_to_cost() {
        for (cost, expected) in [(100u64, 10usize), (500, 50)] {
            let mut q = WorkQueue::new();
            q.push("", cost, "parked");
            let mut pops = 0usize;
            loop {
                q.push("", 10, "cheap");
                pops += 1;
                if q.pop().expect("non-empty") == "parked" {
                    break;
                }
            }
            assert_eq!(pops, expected, "cost {cost}");
        }
    }

    #[test]
    fn tenant_flood_cannot_monopolise_the_queue() {
        let mut q = WorkQueue::new();
        for _ in 0..100 {
            q.push("flood", 10, "flood");
        }
        q.push("solo", 10, "solo");
        // Fair share: the solo tenant's job runs after at most one job of
        // the flooding tenant, not after all hundred.
        let order = pop_all(&mut q);
        let solo_at = order.iter().position(|&j| j == "solo").unwrap();
        assert!(solo_at <= 1, "solo popped at {solo_at}");
    }

    /// A tenant arriving late on a long-running service starts level with
    /// the incumbents — not behind the *sum* of their history.
    #[test]
    fn late_arriving_tenant_is_not_penalised_by_global_history() {
        let mut q = WorkQueue::new();
        for _ in 0..50 {
            q.push("a", 100, "a");
            q.push("b", 100, "b");
        }
        // Drain most of the backlog: a and b each consume ~3000 units, so
        // the global drained total is ~6000 while each tenant's own clock
        // is ~3000.
        for _ in 0..60 {
            q.pop();
        }
        q.push("c", 10, "c");
        let mut pops = 0usize;
        loop {
            pops += 1;
            if q.pop().expect("non-empty") == "c" {
                break;
            }
            assert!(
                pops <= 2,
                "newcomer must start level with incumbents, not wait out \
                 their combined history"
            );
        }
    }

    #[test]
    fn backlogged_tenants_alternate() {
        let mut q = WorkQueue::new();
        for _ in 0..3 {
            q.push("a", 10, "a");
            q.push("b", 10, "b");
        }
        assert_eq!(pop_all(&mut q), vec!["a", "b", "a", "b", "a", "b"]);
    }

    /// A tenant charged more (lower priority / bigger jobs) yields the
    /// floor to a lightly-charged tenant proportionally more often.
    #[test]
    fn fair_share_is_weighted_by_charged_cost() {
        let mut q = WorkQueue::new();
        for _ in 0..2 {
            q.push("heavy", 40, "heavy");
        }
        for _ in 0..5 {
            q.push("light", 10, "light");
        }
        let order = pop_all(&mut q);
        // heavy pops once (vtime 0 -> 40), then light catches up with four
        // pops (vtime 10,20,30,40), then names tie-break.
        assert_eq!(
            order,
            vec!["heavy", "light", "light", "light", "light", "heavy", "light"]
        );
    }

    #[test]
    fn idle_tenants_bank_no_credit() {
        let mut q = WorkQueue::new();
        // "busy" consumes 1000 units of throughput while "idler" is idle.
        q.push("busy", 1_000, "busy");
        assert_eq!(q.pop(), Some("busy"));
        // Had "idler" banked credit while idle, it could now flood ahead of
        // everything; instead it re-enters at the current clock and shares.
        q.push("idler", 10, "i1");
        q.push("busy", 10, "b1");
        q.push("idler", 10, "i2");
        // Both re-enter at the system virtual time — level — so neither
        // banked credit nor debt survives the idle gap; names tie-break.
        assert_eq!(pop_all(&mut q), vec!["b1", "i1", "i2"]);
    }

    #[test]
    fn zero_cost_is_clamped_and_pops_in_order() {
        let mut q = WorkQueue::new();
        q.push("", 0, "a");
        q.push("", 0, "b");
        assert_eq!(pop_all(&mut q), vec!["a", "b"]);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
