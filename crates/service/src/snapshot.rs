//! The immutable serving version: one graph plus everything derived from it.
//!
//! Online graph swapping needs a single unit of atomicity.  The service does
//! not serve a bare [`DataGraph`]: every query also consults the node
//! prestige vector and the keyword index, and the three must agree — a
//! query resolved against version N's index but expanded over version N+1's
//! adjacency would produce garbage.  [`GraphSnapshot`] bundles the three
//! into one immutable value; the service holds the *current* snapshot
//! behind an `Arc` and every query pins (clones) that `Arc` at admission
//! time.  [`crate::Service::swap_graph`] replaces the `Arc` atomically:
//!
//! * queries admitted **before** the swap — including ones still waiting in
//!   the scheduler — run to completion on their pinned snapshot, which stays
//!   alive until the last such query drops its reference;
//! * queries admitted **after** the swap resolve, expand and cache against
//!   the new version;
//! * the shared result cache needs no flush: keys carry the graph
//!   [epoch](DataGraph::epoch), so entries for the old version simply stop
//!   matching (a service that owns its cache also evicts them eagerly).

use banks_core::{build_label_index, label_index_delta};
use banks_graph::{BatchOutcome, DataGraph, MutationBatch};
use banks_prestige::{IndegreePrestige, PrestigeVector};
use banks_textindex::{InvertedIndex, TextDelta};

/// How a snapshot's prestige vector is kept current when the graph mutates
/// under it ([`GraphSnapshot::apply_batch`]).
#[derive(Clone, Debug)]
enum PrestigeMode {
    /// Uniform prestige (the default): successors stay uniform.
    Uniform,
    /// Indegree prestige with incrementally-refreshable raw state:
    /// successors refresh only the dirty nodes, bit-identical to a full
    /// recompute.
    Indegree(IndegreePrestige),
    /// Caller-supplied prestige the snapshot cannot re-derive: successors
    /// keep the existing values, and nodes a mutation appends are assigned
    /// the current maximum (never penalised relative to existing nodes)
    /// until the caller swaps in a freshly-computed vector.
    Pinned,
}

/// How a snapshot's keyword index is kept current when the graph mutates
/// under it.
#[derive(Clone, Copy, Debug)]
enum IndexMode {
    /// The index covers exactly the node labels (built by
    /// [`build_label_index`]): label deltas apply in full — removals for
    /// relabels, additions for new text — and stay equivalent to a from-
    /// scratch rebuild.
    Labels,
    /// A caller-supplied index the snapshot cannot re-derive (it may cover
    /// text the graph never sees).  Successors apply **additive** changes
    /// only — labels of newly-added nodes and new relation names — and
    /// never remove postings: a relabel leaves the node's old terms
    /// matching (documented staleness) rather than corrupting posting
    /// lists that were built from richer text.
    External,
}

/// One immutable serving version: the data graph together with the prestige
/// vector and keyword index derived from it.
///
/// Constructed once per version ([`GraphSnapshot::new`] for precomputed
/// parts, [`GraphSnapshot::with_defaults`] to derive them) and then shared
/// read-only behind an `Arc` — in-flight queries keep the version they were
/// admitted under alive for exactly as long as they need it.
///
/// Versions advance one of two ways: wholesale replacement
/// ([`crate::Service::swap_snapshot`]) or incrementally via
/// [`GraphSnapshot::apply_batch`], which derives the successor's index and
/// prestige as *deltas* instead of rebuilding them.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    graph: DataGraph,
    prestige: PrestigeVector,
    index: InvertedIndex,
    prestige_mode: PrestigeMode,
    index_mode: IndexMode,
}

impl GraphSnapshot {
    /// Bundles an already-prepared graph, prestige vector and keyword index
    /// into one serving version.  The caller asserts the three describe the
    /// same graph revision.
    ///
    /// Prestige and index supplied this way are treated as *external* by
    /// [`GraphSnapshot::apply_batch`] — the snapshot cannot re-derive
    /// them, so mutation successors carry the prestige forward unchanged
    /// (appended nodes get the current maximum) and apply only *additive*
    /// index changes (new nodes' labels become searchable; relabels never
    /// remove postings, since the index may cover richer text than the
    /// labels).  Use [`GraphSnapshot::with_defaults`] /
    /// [`GraphSnapshot::with_indegree_prestige`] for derivations that
    /// refresh exactly.
    pub fn new(graph: DataGraph, prestige: PrestigeVector, index: InvertedIndex) -> Self {
        GraphSnapshot {
            graph,
            prestige,
            index,
            prestige_mode: PrestigeMode::Pinned,
            index_mode: IndexMode::External,
        }
    }

    /// Builds a serving version with the default derivations: uniform
    /// prestige and the label index built from the graph's node labels —
    /// the same defaults [`crate::ServiceBuilder::build`] applies.
    pub fn with_defaults(graph: DataGraph) -> Self {
        let prestige = PrestigeVector::uniform_for(&graph);
        let index = build_label_index(&graph);
        GraphSnapshot {
            graph,
            prestige,
            index,
            prestige_mode: PrestigeMode::Uniform,
            index_mode: IndexMode::Labels,
        }
    }

    /// Builder-internal constructor: derives the parts the caller did not
    /// supply, tracking per part whether it can be refreshed exactly on
    /// mutation (derived) or must be treated as external (supplied).
    pub(crate) fn from_optional(
        graph: DataGraph,
        prestige: Option<PrestigeVector>,
        index: Option<InvertedIndex>,
    ) -> Self {
        let (index, index_mode) = match index {
            Some(index) => (index, IndexMode::External),
            None => (build_label_index(&graph), IndexMode::Labels),
        };
        let (prestige, prestige_mode) = match prestige {
            Some(prestige) => (prestige, PrestigeMode::Pinned),
            None => (PrestigeVector::uniform_for(&graph), PrestigeMode::Uniform),
        };
        GraphSnapshot {
            graph,
            prestige,
            index,
            prestige_mode,
            index_mode,
        }
    }

    /// Builds a serving version with indegree prestige (BANKS-I style,
    /// `log2(1 + indegree)` rescaled to max 1) and the label index.  The
    /// backend keeps its raw state, so [`GraphSnapshot::apply_batch`]
    /// refreshes prestige incrementally — touching only the dirty nodes —
    /// while staying bit-identical to a from-scratch recompute.
    pub fn with_indegree_prestige(graph: DataGraph) -> Self {
        let state = IndegreePrestige::compute(&graph);
        let prestige = state.to_vector();
        let index = build_label_index(&graph);
        GraphSnapshot {
            graph,
            prestige,
            index,
            prestige_mode: PrestigeMode::Indegree(state),
            index_mode: IndexMode::Labels,
        }
    }

    /// Applies a [`MutationBatch`], producing the successor serving
    /// version and the per-op outcome — the incremental analogue of
    /// rebuilding a snapshot from scratch:
    ///
    /// * the **graph** advances via [`DataGraph::apply_batch`]
    ///   (structurally-shared, fresh epoch, O(touched rows)),
    /// * the **keyword index** advances via
    ///   [`InvertedIndex::apply_delta`] — only nodes whose label changed
    ///   are re-tokenized.  Label indexes (built by the snapshot itself)
    ///   apply the delta in full and stay equivalent to a from-scratch
    ///   rebuild; a caller-supplied index applies **additive** changes
    ///   only (see [`GraphSnapshot::new`]),
    /// * the **prestige vector** refreshes according to how it was
    ///   derived: uniform stays uniform, indegree refreshes its dirty
    ///   nodes exactly, and pinned external vectors are carried forward
    ///   (see [`GraphSnapshot::new`]).
    ///
    /// `self` is untouched; queries pinned to it are unaffected.
    pub fn apply_batch(&self, batch: &MutationBatch) -> (GraphSnapshot, BatchOutcome) {
        let (graph, outcome) = self.graph.apply_batch(batch);
        let full_delta = label_index_delta(&graph, &outcome);
        let index_delta = match self.index_mode {
            IndexMode::Labels => full_delta,
            // External index: keep every existing posting (the index may
            // know text the graph does not); only additions — labels of
            // nodes that did not exist before, and new relation names —
            // are safe to merge in.
            IndexMode::External => TextDelta {
                changes: full_delta
                    .changes
                    .into_iter()
                    .filter(|change| change.old.is_empty())
                    .collect(),
                new_relations: full_delta.new_relations,
            },
        };
        let index = self.index.apply_delta(&index_delta);
        let (prestige, prestige_mode) = match &self.prestige_mode {
            PrestigeMode::Uniform => (PrestigeVector::uniform_for(&graph), PrestigeMode::Uniform),
            PrestigeMode::Indegree(state) => {
                let mut state = state.clone();
                state.refresh(&graph, &outcome.dirty_nodes);
                (state.to_vector(), PrestigeMode::Indegree(state))
            }
            PrestigeMode::Pinned => {
                let mut values = self.prestige.values().to_vec();
                let fill = if values.is_empty() {
                    1.0
                } else {
                    self.prestige.max()
                };
                values.resize(graph.num_nodes(), fill);
                (PrestigeVector::from_values(values), PrestigeMode::Pinned)
            }
        };
        (
            GraphSnapshot {
                graph,
                prestige,
                index,
                prestige_mode,
                index_mode: self.index_mode,
            },
            outcome,
        )
    }

    /// Flattens the graph's copy-on-write overlay back into flat CSR
    /// storage when more than `ratio` of its nodes carry overlay rows.
    /// Contents (and the epoch) are unchanged — only the representation —
    /// so pinned queries, caches and metrics are unaffected.  Returns
    /// whether compaction ran.  [`crate::Service::apply_mutations`] calls
    /// this so long mutation chains do not pay the overlay indirection
    /// forever.
    pub fn maybe_compact(&mut self, ratio: f64) -> bool {
        if self.graph.overlay_ratio() > ratio {
            self.graph = self.graph.compacted();
            true
        } else {
            false
        }
    }

    /// The graph of this serving version.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The node prestige of this serving version.
    pub fn prestige(&self) -> &PrestigeVector {
        &self.prestige
    }

    /// The keyword index of this serving version.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The graph's epoch — the cache-key component that distinguishes this
    /// version from every other.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Assigns the underlying graph a fresh epoch.  Used by the swap path
    /// when a caller swaps in a clone of the currently-served graph: the
    /// contents may be identical, but the swap contract promises a cold
    /// cache, so the epochs must differ.
    pub(crate) fn bump_epoch(&mut self) {
        self.graph.bump_epoch();
    }

    /// Overwrites the graph's epoch with a leader-assigned one
    /// ([`DataGraph::restore_epoch`]): a follower applying a replicated
    /// batch must serve at exactly the epoch the leader produced, not a
    /// locally drawn value, so shared-epoch reads on leader and follower
    /// are reads of the same version.
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.graph.restore_epoch(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::GraphBuilder;

    fn tiny() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Jim Gray");
        let p = b.add_node("paper", "Granularity of locks");
        let w = b.add_node("writes", "w0");
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
        b.build_default()
    }

    #[test]
    fn defaults_derive_prestige_and_index() {
        let graph = tiny();
        let epoch = graph.epoch();
        let snap = GraphSnapshot::with_defaults(graph);
        assert_eq!(snap.epoch(), epoch, "construction must not change epoch");
        assert_eq!(snap.prestige().len(), snap.graph().num_nodes());
        assert!(
            !snap.index().matching_nodes(snap.graph(), "gray").is_empty(),
            "label index must cover node labels"
        );
    }

    #[test]
    fn bump_epoch_distinguishes_cloned_versions() {
        let mut snap = GraphSnapshot::with_defaults(tiny());
        let before = snap.epoch();
        snap.bump_epoch();
        assert_ne!(snap.epoch(), before);
    }

    #[test]
    fn apply_batch_advances_graph_index_and_prestige_together() {
        use banks_graph::{MutationBatch, NodeId};
        let snap = GraphSnapshot::with_defaults(tiny());
        let before_epoch = snap.epoch();
        let batch = MutationBatch::new()
            .add_node("paper", "Recovery techniques")
            .add_edge(NodeId(2), NodeId(3));
        let (next, outcome) = snap.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 2);
        assert_ne!(next.epoch(), before_epoch);
        assert_eq!(next.prestige().len(), next.graph().num_nodes());
        // the new node's label is searchable through the delta'd index
        assert_eq!(
            next.index().matching_nodes(next.graph(), "recovery"),
            vec![NodeId(3)]
        );
        // the ancestor snapshot still serves the old world
        assert_eq!(snap.graph().num_nodes(), 3);
        assert!(snap
            .index()
            .matching_nodes(snap.graph(), "recovery")
            .is_empty());
    }

    #[test]
    fn apply_batch_refreshes_indegree_prestige_exactly() {
        use banks_graph::{MutationBatch, NodeId};
        use banks_prestige::compute_indegree_prestige;
        let snap = GraphSnapshot::with_indegree_prestige(tiny());
        let batch = MutationBatch::new()
            .add_node("writes", "w9")
            .add_edge(NodeId(3), NodeId(0));
        let (next, _) = snap.apply_batch(&batch);
        let full = compute_indegree_prestige(next.graph());
        for (a, b) in next.prestige().values().iter().zip(full.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "incremental == full recompute");
        }
    }

    #[test]
    fn apply_batch_never_removes_postings_from_an_external_index() {
        use banks_graph::{MutationBatch, NodeId};
        use banks_textindex::IndexBuilder;
        let graph = tiny();
        // the external index covers richer text than the labels: node 1's
        // abstract also contains "locks"
        let mut ib = IndexBuilder::with_default_tokenizer();
        for node in graph.nodes() {
            ib.add_text(node, graph.node_label(node));
        }
        ib.add_text(NodeId(1), "a study of locks in databases");
        let snap = GraphSnapshot::new(
            graph,
            banks_prestige::PrestigeVector::uniform(3),
            ib.build(),
        );

        // relabel node 1 away from "locks": a label-index delta would
        // remove the posting, but the abstract still contains the term —
        // an external index must keep it
        let batch = MutationBatch::new()
            .set_label(NodeId(1), "Granularity of latching")
            .add_node("paper", "Recovery protocols");
        let (next, outcome) = snap.apply_batch(&batch);
        assert_eq!(outcome.accepted(), 2);
        assert!(
            next.index().postings("locks").contains(&NodeId(1)),
            "external index postings must survive a relabel"
        );
        assert!(
            next.index().postings("databases").contains(&NodeId(1)),
            "richer-text postings untouched"
        );
        // additive changes still land: the new node is searchable
        assert_eq!(next.index().postings("recovery"), &[NodeId(3)]);
        // ...but the new label's terms are NOT added for the relabel
        // (external indexes advance additively only, documented staleness)
        assert!(next.index().postings("latching").is_empty());
    }

    #[test]
    fn service_defaults_via_from_optional_refresh_exactly() {
        use banks_graph::{MutationBatch, NodeId};
        // from_optional with nothing supplied behaves like with_defaults:
        // label deltas apply in full (removals included)
        let snap = GraphSnapshot::from_optional(tiny(), None, None);
        let (next, _) = snap.apply_batch(&MutationBatch::new().set_label(NodeId(0), "Edgar Codd"));
        assert!(next.index().postings("gray").is_empty(), "relabel removes");
        assert_eq!(next.index().postings("codd"), &[NodeId(0)]);
    }

    #[test]
    fn maybe_compact_flattens_without_changing_epoch_or_contents() {
        use banks_graph::{MutationBatch, NodeId};
        let snap = GraphSnapshot::with_defaults(tiny());
        let (mut next, _) = snap.apply_batch(&MutationBatch::new().add_edge(NodeId(0), NodeId(1)));
        assert!(next.graph().has_overlay());
        let epoch = next.epoch();
        // the edge add fans out to every node of the tiny graph: ratio 1.0
        assert!(!next.maybe_compact(1.5), "below threshold: untouched");
        assert!(next.graph().has_overlay());
        assert!(next.maybe_compact(0.1), "above threshold: flattened");
        assert!(!next.graph().has_overlay());
        assert_eq!(next.epoch(), epoch, "same contents, same epoch");
        assert!(next.graph().has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn apply_batch_carries_pinned_prestige_forward() {
        use banks_graph::{MutationBatch, NodeId};
        use banks_prestige::PrestigeVector;
        let graph = tiny();
        let prestige = PrestigeVector::from_values(vec![0.5, 0.25, 0.125]);
        let index = banks_core::build_label_index(&graph);
        let snap = GraphSnapshot::new(graph, prestige, index);
        let (next, _) = snap.apply_batch(&MutationBatch::new().add_node("author", "Mohan"));
        assert_eq!(next.prestige().len(), 4);
        assert_eq!(next.prestige().get(NodeId(0)), 0.5, "existing kept");
        assert_eq!(next.prestige().get(NodeId(3)), 0.5, "new node gets max");
    }
}
