//! The immutable serving version: one graph plus everything derived from it.
//!
//! Online graph swapping needs a single unit of atomicity.  The service does
//! not serve a bare [`DataGraph`]: every query also consults the node
//! prestige vector and the keyword index, and the three must agree — a
//! query resolved against version N's index but expanded over version N+1's
//! adjacency would produce garbage.  [`GraphSnapshot`] bundles the three
//! into one immutable value; the service holds the *current* snapshot
//! behind an `Arc` and every query pins (clones) that `Arc` at admission
//! time.  [`crate::Service::swap_graph`] replaces the `Arc` atomically:
//!
//! * queries admitted **before** the swap — including ones still waiting in
//!   the scheduler — run to completion on their pinned snapshot, which stays
//!   alive until the last such query drops its reference;
//! * queries admitted **after** the swap resolve, expand and cache against
//!   the new version;
//! * the shared result cache needs no flush: keys carry the graph
//!   [epoch](DataGraph::epoch), so entries for the old version simply stop
//!   matching (a service that owns its cache also evicts them eagerly).

use banks_core::build_label_index;
use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::InvertedIndex;

/// One immutable serving version: the data graph together with the prestige
/// vector and keyword index derived from it.
///
/// Constructed once per version ([`GraphSnapshot::new`] for precomputed
/// parts, [`GraphSnapshot::with_defaults`] to derive them) and then shared
/// read-only behind an `Arc` — in-flight queries keep the version they were
/// admitted under alive for exactly as long as they need it.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    graph: DataGraph,
    prestige: PrestigeVector,
    index: InvertedIndex,
}

impl GraphSnapshot {
    /// Bundles an already-prepared graph, prestige vector and keyword index
    /// into one serving version.  The caller asserts the three describe the
    /// same graph revision.
    pub fn new(graph: DataGraph, prestige: PrestigeVector, index: InvertedIndex) -> Self {
        GraphSnapshot {
            graph,
            prestige,
            index,
        }
    }

    /// Builds a serving version with the default derivations: uniform
    /// prestige and the label index built from the graph's node labels —
    /// the same defaults [`crate::ServiceBuilder::build`] applies.
    pub fn with_defaults(graph: DataGraph) -> Self {
        let prestige = PrestigeVector::uniform_for(&graph);
        let index = build_label_index(&graph);
        GraphSnapshot {
            graph,
            prestige,
            index,
        }
    }

    /// The graph of this serving version.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The node prestige of this serving version.
    pub fn prestige(&self) -> &PrestigeVector {
        &self.prestige
    }

    /// The keyword index of this serving version.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The graph's epoch — the cache-key component that distinguishes this
    /// version from every other.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Assigns the underlying graph a fresh epoch.  Used by the swap path
    /// when a caller swaps in a clone of the currently-served graph: the
    /// contents may be identical, but the swap contract promises a cold
    /// cache, so the epochs must differ.
    pub(crate) fn bump_epoch(&mut self) {
        self.graph.bump_epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_graph::GraphBuilder;

    fn tiny() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("author", "Jim Gray");
        let p = b.add_node("paper", "Granularity of locks");
        let w = b.add_node("writes", "w0");
        b.add_edge(w, a).unwrap();
        b.add_edge(w, p).unwrap();
        b.build_default()
    }

    #[test]
    fn defaults_derive_prestige_and_index() {
        let graph = tiny();
        let epoch = graph.epoch();
        let snap = GraphSnapshot::with_defaults(graph);
        assert_eq!(snap.epoch(), epoch, "construction must not change epoch");
        assert_eq!(snap.prestige().len(), snap.graph().num_nodes());
        assert!(
            !snap.index().matching_nodes(snap.graph(), "gray").is_empty(),
            "label index must cover node labels"
        );
    }

    #[test]
    fn bump_epoch_distinguishes_cloned_versions() {
        let mut snap = GraphSnapshot::with_defaults(tiny());
        let before = snap.epoch();
        snap.bump_epoch();
        assert_ne!(snap.epoch(), before);
    }
}
