//! Aggregate service instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by the submit path and the workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub executed: AtomicU64,
    pub completed: AtomicU64,
    pub cancelled: AtomicU64,
    pub truncated: AtomicU64,
    pub cache_hits: AtomicU64,
    pub answers_delivered: AtomicU64,
    pub nodes_explored: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Queries accepted by `submit` (including cache hits).
    pub submitted: u64,
    /// Queries rejected by admission control (bounded queue full).
    pub rejected: u64,
    /// Queries that actually ran on a worker (cache misses).
    pub executed: u64,
    /// Queries that finished (completed, truncated or cancelled), plus
    /// cache hits (which finish at submit time).
    pub completed: u64,
    /// Queries that ended cancelled.
    pub cancelled: u64,
    /// Queries cut short by a safety cap or work budget.
    pub truncated: u64,
    /// Queries answered entirely from the result cache.
    pub cache_hits: u64,
    /// Ranked answers streamed to handles.
    pub answers_delivered: u64,
    /// Total nodes explored across all executed queries.
    pub nodes_explored: u64,
    /// Queries currently waiting in the admission queue.
    pub queued: u64,
}

impl ServiceMetrics {
    pub(crate) fn snapshot(counters: &Counters, queued: usize) -> Self {
        ServiceMetrics {
            submitted: counters.submitted.load(Ordering::Relaxed),
            rejected: counters.rejected.load(Ordering::Relaxed),
            executed: counters.executed.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            cancelled: counters.cancelled.load(Ordering::Relaxed),
            truncated: counters.truncated.load(Ordering::Relaxed),
            cache_hits: counters.cache_hits.load(Ordering::Relaxed),
            answers_delivered: counters.answers_delivered.load(Ordering::Relaxed),
            nodes_explored: counters.nodes_explored.load(Ordering::Relaxed),
            queued: queued as u64,
        }
    }

    /// Fraction of accepted queries served from the cache (0.0 when none
    /// were accepted).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let counters = Counters::default();
        Counters::bump(&counters.submitted);
        Counters::bump(&counters.submitted);
        Counters::bump(&counters.cache_hits);
        Counters::add(&counters.answers_delivered, 5);
        let snap = ServiceMetrics::snapshot(&counters, 3);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.answers_delivered, 5);
        assert_eq!(snap.queued, 3);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ServiceMetrics::default().cache_hit_rate(), 0.0);
    }
}
