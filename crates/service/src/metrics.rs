//! Aggregate service instrumentation.
//!
//! Two kinds of state feed [`ServiceMetrics`]:
//!
//! * `Counters` — lock-free atomics bumped on the submit path and by the
//!   workers (throughput, rejections, cache hits, swaps),
//! * `WaitStats` — a mutex-guarded log₂ histogram of **queue wait** (the
//!   time between admission and a worker picking the job up), recorded once
//!   per executed job, plus per-tenant accumulators.  Scheduling is
//!   non-preemptive — once picked up, a query runs to completion — so queue
//!   wait is exactly the scheduler-induced latency, and its percentiles are
//!   the number to watch when tuning priorities and fair share.
//!
//! The histogram machinery itself lives in [`banks_obs`]: the queue-wait
//! distribution delegates to a [`banks_obs::Histogram`], and the same type
//! backs the service's time-to-first-answer and mutation-apply
//! distributions plus the durability-layer checkpoint and WAL-fsync
//! latencies surfaced here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use banks_graph::ShardStats;
use banks_obs::{CalibrationRow, Health, Histogram, SloRow, HISTOGRAM_BUCKETS};

use crate::quota::QuotaSettings;
use crate::replication::ReplicationStatus;

/// Lock-free counters updated by the submit path and the workers.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub quota_rejected: AtomicU64,
    pub executed: AtomicU64,
    pub completed: AtomicU64,
    pub cancelled: AtomicU64,
    pub truncated: AtomicU64,
    pub cache_hits: AtomicU64,
    pub answers_delivered: AtomicU64,
    pub nodes_explored: AtomicU64,
    pub swaps: AtomicU64,
    pub mutation_batches: AtomicU64,
    pub mutation_ops_accepted: AtomicU64,
    pub mutation_ops_rejected: AtomicU64,
    pub slow_queries: AtomicU64,
    pub watchdog_overruns: AtomicU64,
    pub watchdog_queue_trips: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Bound on distinct per-tenant accumulator rows.  Callers are free to put
/// high-cardinality values in [`crate::QuerySpec::tenant`] (per-user ids,
/// say); without a cap the map — and the sort in every `metrics()` call —
/// would grow for the service's lifetime.  Once the cap is reached, new
/// tenant names are accounted under the synthetic [`OVERFLOW_TENANT`] row.
const MAX_TENANT_ROWS: usize = 64;

/// Name of the catch-all row absorbing tenant names beyond the 64-row
/// tracking bound.  Angle brackets keep it from colliding with real tenant
/// names produced by well-behaved clients.
pub const OVERFLOW_TENANT: &str = "<other>";

/// Per-tenant wait/throughput accumulator.
#[derive(Clone, Debug, Default)]
struct TenantAccum {
    executed: u64,
    wait_sum_us: u64,
    wait_max_us: u64,
    quota_rejected: u64,
}

/// Queue-wait histogram plus per-tenant accumulators, updated once per job
/// at the moment a worker picks it up.  The distribution itself is a
/// [`banks_obs::Histogram`]; the per-tenant rows stay here because they
/// are service-level accounting, not a latency distribution.
#[derive(Debug, Default)]
pub(crate) struct WaitStats {
    hist: Histogram,
    tenants: HashMap<String, TenantAccum>,
}

impl WaitStats {
    /// The accumulator row for `tenant`, subject to the row cap (overflow
    /// names share the [`OVERFLOW_TENANT`] row).
    fn row(&mut self, tenant: &str) -> &mut TenantAccum {
        let key = if self.tenants.len() >= MAX_TENANT_ROWS && !self.tenants.contains_key(tenant) {
            OVERFLOW_TENANT
        } else {
            tenant
        };
        self.tenants.entry(key.to_string()).or_default()
    }

    pub(crate) fn record(&mut self, tenant: &str, wait: Duration) {
        let us = wait.as_micros().min(u64::MAX as u128) as u64;
        self.hist.record_us(us);
        let t = self.row(tenant);
        t.executed += 1;
        t.wait_sum_us = t.wait_sum_us.saturating_add(us);
        t.wait_max_us = t.wait_max_us.max(us);
    }

    /// Counts one quota rejection against `tenant`'s row.  A tenant that
    /// only ever gets rejected still shows up in the per-tenant metrics —
    /// the 429 path must be observable, not silent.
    pub(crate) fn record_quota_rejection(&mut self, tenant: &str) {
        self.row(tenant).quota_rejected += 1;
    }

    fn summary(&self) -> QueueWaitSummary {
        self.hist.summary()
    }

    /// Raw cumulative bucket counts of the queue-wait histogram — the
    /// collector diffs successive snapshots into windowed percentiles.
    pub(crate) fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        self.hist.bucket_counts()
    }

    fn tenant_metrics(&self) -> Vec<TenantMetrics> {
        let mut rows: Vec<TenantMetrics> = self
            .tenants
            .iter()
            .map(|(name, t)| TenantMetrics {
                tenant: name.clone(),
                executed: t.executed,
                quota_rejected: t.quota_rejected,
                mean_queue_wait: Duration::from_micros(
                    t.wait_sum_us.checked_div(t.executed).unwrap_or(0),
                ),
                max_queue_wait: Duration::from_micros(t.wait_max_us),
                quota_rate_per_sec: None,
                quota_burst: None,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }
}

/// Distribution of queue wait (admission → worker pickup) across every
/// executed query.  An alias of [`banks_obs::LatencySummary`] — the
/// generalized histogram kit this summary's original implementation was
/// extracted into — kept for source compatibility.
pub type QueueWaitSummary = banks_obs::LatencySummary;

/// Per-tenant scheduling outcomes: how much ran and how long it queued.
///
/// At most 64 distinct tenant rows are tracked; past that bound, further
/// tenant names are accounted under the synthetic [`OVERFLOW_TENANT`]
/// (`"<other>"`) row, so a client putting per-request ids in the tenant
/// field cannot grow the metrics state without bound.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantMetrics {
    /// Tenant name (`""` is the anonymous tenant, [`OVERFLOW_TENANT`] the
    /// catch-all once the row bound is reached).
    pub tenant: String,
    /// Queries executed for this tenant (cache hits excluded).
    pub executed: u64,
    /// Submissions rejected by this tenant's admission quota
    /// ([`crate::ServiceBuilder::tenant_quota`]) — the per-tenant view of
    /// the HTTP 429 path.
    pub quota_rejected: u64,
    /// Mean queue wait of this tenant's executed queries.
    pub mean_queue_wait: Duration,
    /// Worst queue wait of this tenant's executed queries.
    pub max_queue_wait: Duration,
    /// The quota refill rate governing this tenant
    /// ([`crate::ServiceBuilder::tenant_quota_for`] override if one is
    /// configured, else the shared default); `None` when the tenant is
    /// unlimited.
    pub quota_rate_per_sec: Option<f64>,
    /// The quota burst capacity governing this tenant; `None` when
    /// unlimited.
    pub quota_burst: Option<u64>,
}

/// A point-in-time snapshot of the service counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Queries accepted by `submit` (including cache hits).
    pub submitted: u64,
    /// Queries rejected by admission control (bounded queue full).
    pub rejected: u64,
    /// Submissions rejected by a per-tenant token-bucket quota
    /// ([`crate::ServiceBuilder::tenant_quota`]), across all tenants.
    pub quota_rejected: u64,
    /// Queries that actually ran on a worker (cache misses).
    pub executed: u64,
    /// Queries that finished (completed, truncated or cancelled), plus
    /// cache hits (which finish at submit time).
    pub completed: u64,
    /// Queries that ended cancelled.
    pub cancelled: u64,
    /// Queries cut short by a safety cap or work budget.
    pub truncated: u64,
    /// Queries answered entirely from the result cache.
    pub cache_hits: u64,
    /// Ranked answers streamed to handles.
    pub answers_delivered: u64,
    /// Total nodes explored across all executed queries.
    pub nodes_explored: u64,
    /// Queries currently waiting in the admission scheduler.
    pub queued: u64,
    /// Graph versions swapped in since the service started (wholesale
    /// swaps *and* accepted mutation batches — both advance the epoch).
    pub swaps: u64,
    /// Mutation batches applied via [`crate::Service::apply_mutations`]
    /// (batches in which every op was rejected are not counted — they
    /// produce no new version).
    pub mutation_batches: u64,
    /// Mutation ops accepted across all applied batches.
    pub mutation_ops_accepted: u64,
    /// Mutation ops rejected across all applied batches.
    pub mutation_ops_rejected: u64,
    /// Epoch of the graph currently being served.
    pub epoch: u64,
    /// Whether durable persistence is enabled
    /// ([`crate::ServiceBuilder::persistence`]).  When `false`, every
    /// durability field below reads zero.
    pub persistence_enabled: bool,
    /// Epoch of the most recent on-disk snapshot (0 when persistence is
    /// off).
    pub last_checkpoint_epoch: u64,
    /// Mutation batches in the write-ahead log since the last checkpoint.
    pub wal_records: u64,
    /// Size of the write-ahead log in bytes.
    pub wal_bytes: u64,
    /// Checkpoints taken since the service started (boot checkpoint
    /// included).
    pub checkpoints: u64,
    /// Applied batches currently held in the in-memory mutation log ring.
    pub mutation_log_entries: u64,
    /// Applied batches dropped from the ring after it filled
    /// ([`crate::ServiceBuilder::mutation_log_capacity`]).
    pub mutation_log_dropped: u64,
    /// Queries whose end-to-end latency crossed the configured
    /// [`crate::ServiceBuilder::slow_query_threshold`] (their traces are
    /// retained for `GET /debug/slow`).
    pub slow_queries: u64,
    /// Queue-wait distribution across executed queries.
    pub queue_wait: QueueWaitSummary,
    /// Time-to-first-answer distribution across executed queries that
    /// produced at least one answer (cache hits excluded — they answer at
    /// submit time).
    pub ttfa: QueueWaitSummary,
    /// Apply-latency distribution of successful mutation batches
    /// (lock acquisition through snapshot swap, WAL append included).
    pub mutation_apply: QueueWaitSummary,
    /// Checkpoint-latency distribution (snapshot write + WAL reset +
    /// prune); empty when persistence is off.
    pub checkpoint_latency: QueueWaitSummary,
    /// WAL fsync-latency distribution; empty when persistence is off or
    /// the fsync policy never syncs.
    pub wal_fsync: QueueWaitSummary,
    /// Number of shards the serving graph is partitioned into
    /// ([`crate::ServiceBuilder::shards`]; 1 = unsharded).
    pub shards: u64,
    /// Per-shard partition sizes (owned/replica nodes, owned/cut edges)
    /// of the currently-served version; empty when unsharded.
    pub shard_stats: Vec<ShardStats>,
    /// Per-tenant scheduling outcomes, sorted by tenant name.
    pub tenants: Vec<TenantMetrics>,
    /// Cost-model calibration rows: measured `nodes_explored` per
    /// (engine, origin-size bucket) and the learned correction factor the
    /// scheduler blends into admission cost estimates.
    pub calibration: Vec<CalibrationRow>,
    /// Three-state SLO health from the latest collector pass (`ok` until
    /// the first pass completes).
    pub health: Health,
    /// Per-objective SLO rows (latest value, fast/slow burn, state) from
    /// the latest collector pass.
    pub slo: Vec<SloRow>,
    /// Traces evicted from the debug trace ring because it was full.
    pub trace_ring_dropped: u64,
    /// Events evicted from the structured event log because it was full.
    pub event_log_dropped: u64,
    /// Id of the newest structured event (0 when none were emitted) — the
    /// cursor a `GET /debug/events?since=` poller should start from.
    pub event_log_last_id: u64,
    /// Completed queries the watchdog flagged for exploring ≥ N× their
    /// a priori work estimate ([`crate::ServiceBuilder::watchdog_overrun_factor`]).
    pub watchdog_overruns: u64,
    /// Times the collector's queue-saturation watchdog tripped (queue
    /// occupancy crossed the trip threshold).
    pub watchdog_queue_trips: u64,
    /// Current admission-queue occupancy as a fraction of capacity.
    pub queue_saturation: f64,
    /// Replication role and follower progress
    /// ([`crate::Service::replication_status`]); all-default on a
    /// standalone service.
    pub replication: ReplicationStatus,
}

impl ServiceMetrics {
    pub(crate) fn snapshot(
        counters: &Counters,
        waits: &WaitStats,
        queued: usize,
        epoch: u64,
        quota: Option<&QuotaSettings>,
    ) -> Self {
        let mut tenants = waits.tenant_metrics();
        if let Some(quota) = quota {
            for row in &mut tenants {
                // the overflow row aggregates many tenants; quote the
                // default rate for it, like any non-overridden name
                if let Some(cfg) = quota.config_for(&row.tenant) {
                    row.quota_rate_per_sec = Some(cfg.rate_per_sec);
                    row.quota_burst = Some(cfg.burst);
                }
            }
            // Tenants with a configured override but no traffic yet still
            // surface their configured rate.
            for (name, cfg) in &quota.overrides {
                if !tenants.iter().any(|t| &t.tenant == name) {
                    tenants.push(TenantMetrics {
                        tenant: name.clone(),
                        quota_rate_per_sec: Some(cfg.rate_per_sec),
                        quota_burst: Some(cfg.burst),
                        ..TenantMetrics::default()
                    });
                }
            }
            tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        }
        ServiceMetrics {
            submitted: counters.submitted.load(Ordering::Relaxed),
            rejected: counters.rejected.load(Ordering::Relaxed),
            quota_rejected: counters.quota_rejected.load(Ordering::Relaxed),
            executed: counters.executed.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            cancelled: counters.cancelled.load(Ordering::Relaxed),
            truncated: counters.truncated.load(Ordering::Relaxed),
            cache_hits: counters.cache_hits.load(Ordering::Relaxed),
            answers_delivered: counters.answers_delivered.load(Ordering::Relaxed),
            nodes_explored: counters.nodes_explored.load(Ordering::Relaxed),
            queued: queued as u64,
            swaps: counters.swaps.load(Ordering::Relaxed),
            mutation_batches: counters.mutation_batches.load(Ordering::Relaxed),
            mutation_ops_accepted: counters.mutation_ops_accepted.load(Ordering::Relaxed),
            mutation_ops_rejected: counters.mutation_ops_rejected.load(Ordering::Relaxed),
            epoch,
            // Durability, mutation-log occupancy, the latency distributions
            // other than queue wait, and the calibration table are owned by
            // other locks; `Service::metrics` fills them in after this
            // snapshot.
            persistence_enabled: false,
            last_checkpoint_epoch: 0,
            wal_records: 0,
            wal_bytes: 0,
            checkpoints: 0,
            mutation_log_entries: 0,
            mutation_log_dropped: 0,
            slow_queries: counters.slow_queries.load(Ordering::Relaxed),
            queue_wait: waits.summary(),
            ttfa: QueueWaitSummary::default(),
            mutation_apply: QueueWaitSummary::default(),
            checkpoint_latency: QueueWaitSummary::default(),
            wal_fsync: QueueWaitSummary::default(),
            shards: 1,
            shard_stats: Vec::new(),
            tenants,
            calibration: Vec::new(),
            health: Health::Ok,
            slo: Vec::new(),
            trace_ring_dropped: 0,
            event_log_dropped: 0,
            event_log_last_id: 0,
            watchdog_overruns: counters.watchdog_overruns.load(Ordering::Relaxed),
            watchdog_queue_trips: counters.watchdog_queue_trips.load(Ordering::Relaxed),
            queue_saturation: 0.0,
            replication: ReplicationStatus::default(),
        }
    }

    /// Fraction of accepted queries served from the cache (0.0 when none
    /// were accepted).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.submitted as f64
        }
    }

    /// Scheduling outcomes for one tenant, if it executed anything.
    pub fn tenant(&self, name: &str) -> Option<&TenantMetrics> {
        self.tenants.iter().find(|t| t.tenant == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let counters = Counters::default();
        Counters::bump(&counters.submitted);
        Counters::bump(&counters.submitted);
        Counters::bump(&counters.cache_hits);
        Counters::bump(&counters.swaps);
        Counters::add(&counters.answers_delivered, 5);
        let waits = WaitStats::default();
        let snap = ServiceMetrics::snapshot(&counters, &waits, 3, 42, None);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.answers_delivered, 5);
        assert_eq!(snap.queued, 3);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.epoch, 42);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ServiceMetrics::default().cache_hit_rate(), 0.0);
        assert_eq!(snap.queue_wait, QueueWaitSummary::default());
        assert!(snap.tenants.is_empty());
    }

    #[test]
    fn wait_percentiles_bracket_the_observations() {
        let mut waits = WaitStats::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            waits.record("", Duration::from_micros(us));
        }
        let s = waits.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, Duration::from_micros(10_000));
        assert_eq!(s.mean, Duration::from_micros(1045));
        // bucketed upper bounds: monotone, and bracketing the true values
        assert!(s.p50 >= Duration::from_micros(50) && s.p50 < Duration::from_micros(128));
        assert!(s.p90 >= Duration::from_micros(90) && s.p90 <= s.p99);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn per_tenant_accumulators_are_sorted_and_isolated() {
        let mut waits = WaitStats::default();
        waits.record("zeta", Duration::from_micros(100));
        waits.record("alpha", Duration::from_micros(10));
        waits.record("alpha", Duration::from_micros(30));
        let rows = waits.tenant_metrics();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "alpha");
        assert_eq!(rows[0].executed, 2);
        assert_eq!(rows[0].mean_queue_wait, Duration::from_micros(20));
        assert_eq!(rows[0].max_queue_wait, Duration::from_micros(30));
        assert_eq!(rows[1].tenant, "zeta");
        assert_eq!(rows[1].executed, 1);
    }

    #[test]
    fn tenant_rows_are_bounded_with_an_overflow_bucket() {
        let mut waits = WaitStats::default();
        for i in 0..(MAX_TENANT_ROWS + 20) {
            waits.record(&format!("tenant-{i:04}"), Duration::from_micros(10));
        }
        // an already-tracked tenant keeps accumulating on its own row
        waits.record("tenant-0000", Duration::from_micros(10));
        let rows = waits.tenant_metrics();
        assert_eq!(rows.len(), MAX_TENANT_ROWS + 1, "cap + overflow row");
        let overflow = rows
            .iter()
            .find(|r| r.tenant == OVERFLOW_TENANT)
            .expect("overflow row");
        assert_eq!(overflow.executed, 20);
        let first = rows.iter().find(|r| r.tenant == "tenant-0000").unwrap();
        assert_eq!(first.executed, 2);
    }

    #[test]
    fn quota_rejections_surface_per_tenant() {
        let mut waits = WaitStats::default();
        waits.record("paid", Duration::from_micros(10));
        waits.record_quota_rejection("free");
        waits.record_quota_rejection("free");
        let rows = waits.tenant_metrics();
        let free = rows.iter().find(|r| r.tenant == "free").expect("free row");
        assert_eq!(free.quota_rejected, 2);
        assert_eq!(free.executed, 0, "rejected-only tenants still get a row");
        let paid = rows.iter().find(|r| r.tenant == "paid").expect("paid row");
        assert_eq!(paid.quota_rejected, 0);
        assert_eq!(paid.executed, 1);
    }

    #[test]
    fn tenant_rows_surface_their_configured_quota() {
        use crate::quota::{QuotaConfig, QuotaSettings};
        let mut waits = WaitStats::default();
        waits.record("free", Duration::from_micros(10));
        let mut settings = QuotaSettings {
            default: Some(QuotaConfig::new(5.0, 10)),
            ..QuotaSettings::default()
        };
        settings
            .overrides
            .insert("paid".to_string(), QuotaConfig::new(100.0, 500));
        let counters = Counters::default();
        let snap = ServiceMetrics::snapshot(&counters, &waits, 0, 1, Some(&settings));
        let free = snap.tenant("free").expect("free row");
        assert_eq!(free.quota_rate_per_sec, Some(5.0));
        assert_eq!(free.quota_burst, Some(10));
        // configured-but-silent tenants still surface their rate
        let paid = snap.tenant("paid").expect("paid row from override");
        assert_eq!(paid.quota_rate_per_sec, Some(100.0));
        assert_eq!(paid.quota_burst, Some(500));
        assert_eq!(paid.executed, 0);
        // rows stay sorted by tenant name
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.tenant.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // without quotas, the fields stay None
        let snap = ServiceMetrics::snapshot(&counters, &waits, 0, 1, None);
        assert_eq!(snap.tenant("free").unwrap().quota_rate_per_sec, None);
    }

    #[test]
    fn zero_wait_lands_in_the_zero_bucket() {
        let mut waits = WaitStats::default();
        waits.record("", Duration::ZERO);
        let s = waits.summary();
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
    }
}
