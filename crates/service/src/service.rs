//! The worker-pool query service: priority admission, pinned snapshots,
//! online graph swapping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use banks_core::cache::CacheKey;
use banks_core::registry::UnknownEngine;
use banks_core::{
    CancelToken, EngineRegistry, QueryContext, QueryCost, ResultCache, SearchOutcome,
};
use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::{InvertedIndex, KeywordMatches};

use crate::handle::{HandleState, QueryEvent, QueryHandle, QueryId, QueryResult};
use crate::metrics::{Counters, ServiceMetrics, WaitStats};
use crate::quota::{QuotaConfig, QuotaState};
use crate::sched::WorkQueue;
use crate::snapshot::GraphSnapshot;
use crate::spec::QuerySpec;

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// Admission control: the bounded queue is full.  Back off and retry —
    /// accepting the query anyway would only grow an unbounded backlog.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The requested engine is not registered; the error lists the known
    /// engines and the nearest alias.
    UnknownEngine(UnknownEngine),
    /// The tenant's token bucket is empty (see
    /// [`ServiceBuilder::tenant_quota`]).  Quota rejection happens before
    /// any work — no snapshot pin, no cache lookup, no queue slot.
    QuotaExceeded {
        /// The tenant whose bucket rejected the submission.
        tenant: String,
        /// Time until the bucket refills enough for one submission — the
        /// value an HTTP front-end surfaces as `Retry-After`.
        retry_after: Duration,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queries waiting)")
            }
            SubmitError::UnknownEngine(e) => write!(f, "{e}"),
            SubmitError::QuotaExceeded {
                tenant,
                retry_after,
            } => write!(
                f,
                "tenant {tenant:?} is over its admission quota (retry in {retry_after:?})"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One unit of queued work, pinned to the serving snapshot it was admitted
/// under.
struct Job {
    /// The graph version this query resolves, expands and caches against —
    /// fixed at admission, unaffected by later swaps.
    snapshot: Arc<GraphSnapshot>,
    matches: KeywordMatches,
    cache_key: CacheKey,
    spec_params: banks_core::SearchParams,
    engine: String,
    tenant: String,
    token: CancelToken,
    events: Sender<QueryEvent>,
    state: Arc<HandleState>,
    submitted_at: Instant,
}

struct QueueState {
    jobs: WorkQueue<Job>,
    /// Jobs currently running on a worker (popped but not finished) — the
    /// other half of the quiescence test [`Service::drain`] waits on.
    executing: usize,
    shutdown: bool,
}

/// Everything the workers share.
struct Inner {
    /// The currently-served snapshot; [`Service::swap_graph`] replaces the
    /// `Arc` while in-flight queries keep their pinned clones alive.
    serving: Mutex<Arc<GraphSnapshot>>,
    registry: EngineRegistry,
    default_engine: String,
    cache: Arc<ResultCache>,
    /// Whether the cache was created by (and is private to) this service —
    /// only then may a swap eagerly evict the superseded epoch's entries.
    cache_private: bool,
    queue: Mutex<QueueState>,
    queue_capacity: usize,
    work_available: Condvar,
    /// Signalled whenever the queue empties *and* the last executing job
    /// finishes; [`Service::drain`] waits on it.
    idle: Condvar,
    /// Per-tenant token buckets (`None`: quotas disabled).
    quota: Option<Mutex<QuotaState>>,
    counters: Counters,
    waits: Mutex<WaitStats>,
    next_id: AtomicU64,
}

/// Configures and spawns a [`Service`].
pub struct ServiceBuilder {
    graph: DataGraph,
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    cache_min_work: u64,
    shared_cache: Option<Arc<ResultCache>>,
    prestige: Option<PrestigeVector>,
    index: Option<InvertedIndex>,
    registry: Option<EngineRegistry>,
    default_engine: String,
    tenant_quota: Option<QuotaConfig>,
}

impl ServiceBuilder {
    /// Number of worker threads (default: available parallelism, capped at
    /// 8; always at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bound of the admission queue (default 64).  A full queue rejects new
    /// submissions with [`SubmitError::QueueFull`] instead of buffering
    /// without limit — backpressure is explicit.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Capacity of the LRU result cache (default 256; 0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Admission threshold of the private result cache, in nodes explored
    /// (default 0: admit everything).  Outcomes measured cheaper than this
    /// are recomputed on demand instead of occupying a cache slot, so a
    /// stream of tiny queries cannot evict the expensive outcomes caching
    /// exists for.  Ignored when [`ServiceBuilder::shared_cache`] supplies
    /// the cache — configure the threshold on the shared instance
    /// ([`ResultCache::min_work`]) instead.
    pub fn cache_min_work(mut self, min_work: u64) -> Self {
        self.cache_min_work = min_work;
        self
    }

    /// Shares an existing result cache instead of creating a private one.
    /// Keys carry the graph epoch, so one cache can serve several services
    /// (and graph versions) without cross-talk.  A shared cache is never
    /// purged on [`Service::swap_graph`] — another service may still serve
    /// the old epoch.
    pub fn shared_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Uses a precomputed prestige vector instead of the uniform default.
    pub fn prestige(mut self, prestige: PrestigeVector) -> Self {
        self.prestige = Some(prestige);
        self
    }

    /// Uses a prebuilt keyword index instead of the label index built from
    /// the graph.
    pub fn index(mut self, index: InvertedIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Replaces the engine registry (default: the paper's engines).
    pub fn registry(mut self, registry: EngineRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the engine run when a [`QuerySpec`] names none.
    ///
    /// # Panics
    /// `build` panics when this name is not in the registry.
    pub fn default_engine(mut self, name: impl Into<String>) -> Self {
        self.default_engine = name.into();
        self
    }

    /// Enables per-tenant admission quotas: every tenant owns a token
    /// bucket of capacity `burst` refilled at `rate_per_sec` tokens per
    /// second, and each submission — cache hit or miss — takes one token.
    /// An empty bucket rejects with [`SubmitError::QuotaExceeded`], whose
    /// `retry_after` says when the next token arrives.
    ///
    /// Quotas complement the scheduler's fair share: fair share decides
    /// *who runs next* among admitted work, the quota decides *whether a
    /// tenant may submit at all*.  Submissions naming no tenant share the
    /// anonymous tenant `""` (and therefore one bucket).  Rejections are
    /// counted per tenant in [`crate::TenantMetrics::quota_rejected`].
    ///
    /// Default: no quota (every submission admitted subject to queue
    /// capacity).  `rate_per_sec` is floored at one token per day and
    /// `burst` at 1.
    pub fn tenant_quota(mut self, rate_per_sec: f64, burst: u64) -> Self {
        self.tenant_quota = Some(QuotaConfig::new(rate_per_sec, burst));
        self
    }

    /// Validates the configuration, builds the initial serving snapshot
    /// (prestige and keyword index included) and spawns the worker threads.
    pub fn build(self) -> Service {
        let prestige = self
            .prestige
            .unwrap_or_else(|| PrestigeVector::uniform_for(&self.graph));
        let index = self
            .index
            .unwrap_or_else(|| banks_core::build_label_index(&self.graph));
        let snapshot = GraphSnapshot::new(self.graph, prestige, index);
        let registry = self.registry.unwrap_or_default();
        if !registry.contains(&self.default_engine) {
            panic!("{}", registry.unknown(&self.default_engine));
        }
        let (cache, cache_private) = match self.shared_cache {
            Some(cache) => (cache, false),
            None => (
                Arc::new(ResultCache::new(self.cache_capacity).min_work(self.cache_min_work)),
                true,
            ),
        };
        let inner = Arc::new(Inner {
            serving: Mutex::new(Arc::new(snapshot)),
            registry,
            default_engine: self.default_engine,
            cache,
            cache_private,
            queue: Mutex::new(QueueState {
                jobs: WorkQueue::new(),
                executing: 0,
                shutdown: false,
            }),
            queue_capacity: self.queue_capacity,
            work_available: Condvar::new(),
            idle: Condvar::new(),
            quota: self
                .tenant_quota
                .map(|cfg| Mutex::new(QuotaState::new(cfg))),
            counters: Counters::default(),
            waits: Mutex::new(WaitStats::default()),
            next_id: AtomicU64::new(0),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("banks-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Service { inner, workers }
    }
}

/// A multi-threaded query service owning one *serving snapshot* (graph,
/// prestige, keyword index — see [`GraphSnapshot`]) plus an engine registry
/// and result cache.
///
/// Queries are submitted as [`QuerySpec`]s and executed by a pool of worker
/// threads; the returned [`QueryHandle`] streams answers as the engine
/// emits them and supports cooperative cancellation and live statistics.
/// Admission is a bounded **priority scheduler** — shortest expected work
/// first ([`banks_core::QueryCost`]), per-tenant fair share, aging so
/// nothing starves (see [`QuerySpec::tenant`] / [`QuerySpec::priority`]) —
/// repeated queries are served from the shared LRU [`ResultCache`], and
/// per-answer deadlines are deterministic work budgets
/// ([`banks_core::SearchParams::answer_work_budget`]).  The served graph
/// can be replaced online with [`Service::swap_graph`].
///
/// ```
/// use banks_graph::GraphBuilder;
/// use banks_service::{QuerySpec, Service};
///
/// let mut b = GraphBuilder::new();
/// let author = b.add_node("author", "Jim Gray");
/// let paper = b.add_node("paper", "Granularity of locks");
/// let writes = b.add_node("writes", "w0");
/// b.add_edge(writes, author).unwrap();
/// b.add_edge(writes, paper).unwrap();
///
/// let service = Service::builder(b.build_default())
///     .workers(4)
///     .cache_capacity(256)
///     .build();
/// let handle = service.submit(QuerySpec::parse("gray locks")).unwrap();
/// let (outcome, result) = handle.wait();
/// assert_eq!(outcome.answers[0].tree.root, writes);
/// assert!(!result.cache_hit);
/// assert_eq!(result.epoch, service.epoch());
/// ```
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts configuring a service over `graph`.
    pub fn builder(graph: DataGraph) -> ServiceBuilder {
        let default_workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServiceBuilder {
            graph,
            workers: default_workers,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_min_work: 0,
            shared_cache: None,
            prestige: None,
            index: None,
            registry: None,
            default_engine: "bidirectional".to_string(),
            tenant_quota: None,
        }
    }

    /// Submits a query.  Returns immediately: on a cache hit the handle is
    /// already fully populated (zero engine work), otherwise the query
    /// enters the bounded priority scheduler at its estimated cost
    /// ([`banks_core::QueryCost`], scaled by [`QuerySpec::priority`]) and
    /// waits for a worker.
    pub fn submit(&self, spec: impl Into<QuerySpec>) -> Result<QueryHandle, SubmitError> {
        let spec = spec.into();
        let inner = &self.inner;
        let engine = spec.engine.unwrap_or_else(|| inner.default_engine.clone());
        if !inner.registry.contains(&engine) {
            return Err(SubmitError::UnknownEngine(inner.registry.unknown(&engine)));
        }
        let tenant = spec.tenant.unwrap_or_default();

        // Admission quota: charged per submission, before any work happens
        // (even a cache hit costs a token — the quota throttles the
        // tenant's request *rate*, not its engine work).
        if let Some(quota) = &inner.quota {
            let verdict = quota
                .lock()
                .expect("quota lock")
                .try_take(&tenant, Instant::now());
            if let Err(retry_after) = verdict {
                Counters::bump(&inner.counters.quota_rejected);
                inner
                    .waits
                    .lock()
                    .expect("waits lock")
                    .record_quota_rejection(&tenant);
                return Err(SubmitError::QuotaExceeded {
                    tenant,
                    retry_after,
                });
            }
        }

        // Pin the serving snapshot: everything below — keyword resolution,
        // cache key, execution — consistently uses this version, no matter
        // how many swaps happen while the query waits or runs.
        let snapshot = Arc::clone(&inner.serving.lock().expect("serving lock"));

        // The same single normalization point as the `Banks` facade: the
        // normalized keywords feed both origin-set resolution and the cache
        // key.  Resolution must precede the cache lookup because the
        // resolved origin sets participate in the key (two indexes can give
        // the same keywords different sets); it is cheap next to expansion.
        let normalized = spec.query.normalized(snapshot.index().tokenizer());
        let matches =
            KeywordMatches::resolve_normalized(snapshot.graph(), snapshot.index(), &normalized);
        let cache_key = CacheKey::new(
            snapshot.epoch(),
            normalized.keywords().to_vec(),
            &spec.params,
            &engine,
            &matches,
        );

        let id = QueryId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let token = CancelToken::new();
        let state = Arc::new(HandleState::default());
        let (tx, rx) = channel();
        let submitted_at = Instant::now();

        if let Some(hit) = inner.cache.get(&cache_key) {
            // Served entirely from the cache: no queue slot, no worker, no
            // engine — the handle is complete before `submit` returns.
            Counters::bump(&inner.counters.submitted);
            Counters::bump(&inner.counters.cache_hits);
            Counters::bump(&inner.counters.completed);
            state.publish(hit.stats.clone());
            let mut first_answer = None;
            for answer in &hit.answers {
                let _ = tx.send(QueryEvent::Answer(answer.clone()));
                first_answer.get_or_insert_with(|| submitted_at.elapsed());
                Counters::bump(&inner.counters.answers_delivered);
            }
            let _ = tx.send(QueryEvent::Finished(QueryResult {
                stats: hit.stats.clone(),
                cache_hit: true,
                time_to_first_answer: first_answer,
                queue_wait: std::time::Duration::ZERO,
                epoch: cache_key.epoch,
            }));
            return Ok(QueryHandle {
                id,
                token,
                events: rx,
                state,
            });
        }

        // Shortest-expected-work-first: the scheduler charges the a priori
        // estimate, scaled by the submission's priority class.
        let cost = QueryCost::estimate(&matches, &spec.params, &engine);
        let charged = spec.priority.charge(cost.estimated_work);

        let job = Job {
            snapshot,
            matches,
            cache_key,
            spec_params: spec.params,
            engine,
            tenant: tenant.clone(),
            token: token.clone(),
            events: tx,
            state: Arc::clone(&state),
            submitted_at,
        };
        {
            let mut queue = inner.queue.lock().expect("queue lock");
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.jobs.len() >= inner.queue_capacity {
                Counters::bump(&inner.counters.rejected);
                return Err(SubmitError::QueueFull {
                    capacity: inner.queue_capacity,
                });
            }
            queue.jobs.push(&tenant, charged, job);
            Counters::bump(&inner.counters.submitted);
        }
        inner.work_available.notify_one();
        Ok(QueryHandle {
            id,
            token,
            events: rx,
            state,
        })
    }

    /// Atomically replaces the served graph with a new version, deriving
    /// the default prestige vector and label index for it (use
    /// [`Service::swap_snapshot`] to supply precomputed ones).  Returns the
    /// new serving epoch.
    ///
    /// The swap is the whole online-reindexing story:
    ///
    /// * **in-flight queries** — running *or still queued* — finish on the
    ///   snapshot they were admitted under, which stays alive until its
    ///   last query drops it;
    /// * **new admissions** resolve, execute and cache against the new
    ///   version;
    /// * **the result cache** needs no flush: keys carry the epoch, so old
    ///   entries can never serve the new graph.  If this service owns its
    ///   cache (no [`ServiceBuilder::shared_cache`]), the superseded
    ///   epoch's entries are evicted eagerly to reclaim capacity.
    ///
    /// Swapping in a clone of the currently-served graph still produces a
    /// distinct epoch (and therefore a cold cache): the contract is
    /// "admissions after the swap run on the swapped-in version", not
    /// "...unless the bytes look the same".
    pub fn swap_graph(&self, graph: DataGraph) -> u64 {
        // Derivations run *before* the serving lock is taken: queries keep
        // flowing against the old version while prestige and the index for
        // the new one are computed.
        self.swap_snapshot(GraphSnapshot::with_defaults(graph))
    }

    /// [`Service::swap_graph`] with caller-supplied prestige and index (the
    /// online equivalent of [`ServiceBuilder::prestige`] /
    /// [`ServiceBuilder::index`]).  Returns the new serving epoch.
    pub fn swap_snapshot(&self, mut snapshot: GraphSnapshot) -> u64 {
        let old_epoch;
        let new_epoch;
        {
            let mut serving = self.inner.serving.lock().expect("serving lock");
            old_epoch = serving.epoch();
            if snapshot.epoch() == old_epoch {
                snapshot.bump_epoch();
            }
            new_epoch = snapshot.epoch();
            *serving = Arc::new(snapshot);
        }
        Counters::bump(&self.inner.counters.swaps);
        if self.inner.cache_private {
            self.inner.cache.evict_epoch(old_epoch);
        }
        new_epoch
    }

    /// A point-in-time snapshot of the aggregate counters, queue-wait
    /// percentiles and per-tenant scheduling outcomes.
    pub fn metrics(&self) -> ServiceMetrics {
        let queued = self.inner.queue.lock().expect("queue lock").jobs.len();
        let epoch = self.epoch();
        let waits = self.inner.waits.lock().expect("waits lock");
        ServiceMetrics::snapshot(&self.inner.counters, &waits, queued, epoch)
    }

    /// The shared result cache (hit/miss counters included).
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.inner.cache
    }

    /// The snapshot currently being served: new submissions are pinned to
    /// it.  The returned `Arc` stays valid across swaps (it simply stops
    /// being current).
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.inner.serving.lock().expect("serving lock"))
    }

    /// The epoch of the graph currently being served (the cache-key
    /// component).
    pub fn epoch(&self) -> u64 {
        self.inner.serving.lock().expect("serving lock").epoch()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Engine names this service can run.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.inner.registry.names()
    }

    /// Blocks until the service is *quiescent*: the admission queue is
    /// empty and no worker is mid-query.  The drain hook for graceful
    /// shutdown of a front-end — stop accepting requests, `drain()`, then
    /// drop the service.
    ///
    /// Quiescence is a point-in-time property: a query submitted after
    /// `drain` returns starts the clock again.  A query whose handle is
    /// blocked on a slow consumer still counts as executing until the
    /// worker finishes it.
    pub fn drain(&self) {
        let mut queue = self.inner.queue.lock().expect("queue lock");
        while !queue.jobs.is_empty() || queue.executing > 0 {
            queue = self.inner.idle.wait(queue).expect("queue lock");
        }
    }

    /// Stops accepting new queries, drains the admission queue and joins
    /// the workers.  Equivalent to dropping the service, but explicit.
    pub fn shutdown(self) {}

    fn begin_shutdown(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

/// Decrements [`QueueState::executing`] when dropped — including on an
/// unwind out of `execute` — so a panicking engine cannot leave the count
/// permanently raised and wedge [`Service::drain`] forever.
struct ExecutingGuard<'a> {
    inner: &'a Inner,
}

impl Drop for ExecutingGuard<'_> {
    fn drop(&mut self) {
        let mut queue = self.inner.queue.lock().expect("queue lock");
        queue.executing -= 1;
        if queue.executing == 0 && queue.jobs.is_empty() {
            self.inner.idle.notify_all();
        }
    }
}

/// Worker thread body: pop jobs (priority order) until shutdown, then drain
/// and exit.
fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop() {
                    queue.executing += 1;
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = inner.work_available.wait(queue).expect("queue lock");
            }
        };
        let guard = ExecutingGuard { inner: &inner };
        let queue_wait = job.submitted_at.elapsed();
        inner
            .waits
            .lock()
            .expect("waits lock")
            .record(&job.tenant, queue_wait);
        execute(&inner, job, queue_wait);
        drop(guard);
    }
}

/// Runs one query to completion (or cancellation) on the calling worker,
/// against the snapshot the job was pinned to at admission.
fn execute(inner: &Inner, job: Job, queue_wait: std::time::Duration) {
    Counters::bump(&inner.counters.executed);
    let snapshot = &job.snapshot;
    let ctx = QueryContext::new(
        snapshot.graph(),
        snapshot.prestige(),
        &job.matches,
        job.spec_params,
    )
    .with_cancel(&job.token);
    let engine = inner
        .registry
        .create(&job.engine)
        .expect("engine validated at submit time");
    let mut stream = engine.start(ctx);

    let mut answers = Vec::new();
    let mut first_answer = None;
    let mut receiver_gone = false;
    #[allow(clippy::while_let_on_iterator)] // stats() borrows between polls
    while let Some(answer) = stream.next() {
        first_answer.get_or_insert_with(|| job.submitted_at.elapsed());
        job.state.publish(stream.stats());
        if !receiver_gone {
            if job.events.send(QueryEvent::Answer(answer.clone())).is_err() {
                // The handle is gone: nobody will read further answers.
                // Cancel cooperatively so the engine stops within one step.
                receiver_gone = true;
                job.token.cancel();
            } else {
                Counters::bump(&inner.counters.answers_delivered);
            }
        }
        answers.push(answer);
    }

    let stats = stream.stats();
    job.state.publish(stats.clone());
    Counters::bump(&inner.counters.completed);
    if stats.cancelled {
        Counters::bump(&inner.counters.cancelled);
    }
    if stats.truncated {
        Counters::bump(&inner.counters.truncated);
    }
    Counters::add(&inner.counters.nodes_explored, stats.nodes_explored as u64);

    // Only completed searches are cached: a cancelled run's answer set is
    // whatever happened to be emitted before the abort, not a reproducible
    // result.  (Work-budget truncation, by contrast, is deterministic and
    // safe to cache.)  The key carries the job's pinned epoch, so a result
    // computed on a superseded snapshot can never serve post-swap queries —
    // and in a *private* cache such an entry could never be hit at all
    // (swap already evicted its epoch; all future lookups use newer ones),
    // so storing it would only waste a slot: skip it.  The epoch check and
    // the insert happen under the serving lock so a concurrent swap cannot
    // slip between them and evict before we insert; `swap_snapshot` takes
    // the same lock first and evicts after releasing it, so the lock order
    // (serving → cache) is acyclic.  Shared caches always take the insert —
    // another service may be serving that epoch.
    if !stats.cancelled {
        let serving = inner.serving.lock().expect("serving lock");
        if !inner.cache_private || job.cache_key.epoch == serving.epoch() {
            inner.cache.insert(
                job.cache_key.clone(),
                Arc::new(SearchOutcome {
                    answers,
                    stats: stats.clone(),
                }),
            );
        }
    }
    let _ = job.events.send(QueryEvent::Finished(QueryResult {
        stats,
        cache_hit: false,
        time_to_first_answer: first_answer,
        queue_wait,
        epoch: job.cache_key.epoch,
    }));
}
