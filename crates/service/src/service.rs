//! The worker-pool query service.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use banks_core::cache::CacheKey;
use banks_core::registry::UnknownEngine;
use banks_core::{
    build_label_index, CancelToken, EngineRegistry, QueryContext, ResultCache, SearchOutcome,
    SearchParams,
};
use banks_graph::DataGraph;
use banks_prestige::PrestigeVector;
use banks_textindex::{InvertedIndex, KeywordMatches};

use crate::handle::{HandleState, QueryEvent, QueryHandle, QueryId, QueryResult};
use crate::metrics::{Counters, ServiceMetrics};
use crate::spec::QuerySpec;

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// Admission control: the bounded queue is full.  Back off and retry —
    /// accepting the query anyway would only grow an unbounded backlog.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The requested engine is not registered; the error lists the known
    /// engines and the nearest alias.
    UnknownEngine(UnknownEngine),
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queries waiting)")
            }
            SubmitError::UnknownEngine(e) => write!(f, "{e}"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One unit of queued work.
struct Job {
    matches: KeywordMatches,
    cache_key: CacheKey,
    params: SearchParams,
    engine: String,
    token: CancelToken,
    events: Sender<QueryEvent>,
    state: Arc<HandleState>,
    submitted_at: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Everything the workers share.
struct Inner {
    graph: DataGraph,
    prestige: PrestigeVector,
    index: InvertedIndex,
    registry: EngineRegistry,
    default_engine: String,
    cache: Arc<ResultCache>,
    queue: Mutex<QueueState>,
    queue_capacity: usize,
    work_available: Condvar,
    counters: Counters,
    next_id: AtomicU64,
}

/// Configures and spawns a [`Service`].
pub struct ServiceBuilder {
    graph: DataGraph,
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    shared_cache: Option<Arc<ResultCache>>,
    prestige: Option<PrestigeVector>,
    index: Option<InvertedIndex>,
    registry: Option<EngineRegistry>,
    default_engine: String,
}

impl ServiceBuilder {
    /// Number of worker threads (default: available parallelism, capped at
    /// 8; always at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bound of the admission queue (default 64).  A full queue rejects new
    /// submissions with [`SubmitError::QueueFull`] instead of buffering
    /// without limit — backpressure is explicit.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Capacity of the LRU result cache (default 256; 0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Shares an existing result cache instead of creating a private one.
    /// Keys carry the graph epoch, so one cache can serve several services
    /// (and graph versions) without cross-talk.
    pub fn shared_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Uses a precomputed prestige vector instead of the uniform default.
    pub fn prestige(mut self, prestige: PrestigeVector) -> Self {
        self.prestige = Some(prestige);
        self
    }

    /// Uses a prebuilt keyword index instead of the label index built from
    /// the graph.
    pub fn index(mut self, index: InvertedIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Replaces the engine registry (default: the paper's engines).
    pub fn registry(mut self, registry: EngineRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the engine run when a [`QuerySpec`] names none.
    ///
    /// # Panics
    /// `build` panics when this name is not in the registry.
    pub fn default_engine(mut self, name: impl Into<String>) -> Self {
        self.default_engine = name.into();
        self
    }

    /// Validates the configuration, builds the shared state (prestige and
    /// keyword index included) and spawns the worker threads.
    pub fn build(self) -> Service {
        let prestige = self
            .prestige
            .unwrap_or_else(|| PrestigeVector::uniform_for(&self.graph));
        let index = self.index.unwrap_or_else(|| build_label_index(&self.graph));
        let registry = self.registry.unwrap_or_default();
        if !registry.contains(&self.default_engine) {
            panic!("{}", registry.unknown(&self.default_engine));
        }
        let inner = Arc::new(Inner {
            graph: self.graph,
            prestige,
            index,
            registry,
            default_engine: self.default_engine,
            cache: self
                .shared_cache
                .unwrap_or_else(|| Arc::new(ResultCache::new(self.cache_capacity))),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            queue_capacity: self.queue_capacity,
            work_available: Condvar::new(),
            counters: Counters::default(),
            next_id: AtomicU64::new(0),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("banks-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Service { inner, workers }
    }
}

/// A multi-threaded query service owning one graph plus its prestige,
/// keyword index, engine registry and result cache.
///
/// Queries are submitted as [`QuerySpec`]s and executed by a pool of worker
/// threads; the returned [`QueryHandle`] streams answers as the engine
/// emits them and supports cooperative cancellation and live statistics.
/// Admission control is a bounded queue, repeated queries are served from
/// the shared LRU [`ResultCache`], and per-answer deadlines are expressed
/// as deterministic work budgets
/// ([`banks_core::SearchParams::answer_work_budget`]).
///
/// ```
/// use banks_graph::GraphBuilder;
/// use banks_service::{QuerySpec, Service};
///
/// let mut b = GraphBuilder::new();
/// let author = b.add_node("author", "Jim Gray");
/// let paper = b.add_node("paper", "Granularity of locks");
/// let writes = b.add_node("writes", "w0");
/// b.add_edge(writes, author).unwrap();
/// b.add_edge(writes, paper).unwrap();
///
/// let service = Service::builder(b.build_default())
///     .workers(4)
///     .cache_capacity(256)
///     .build();
/// let handle = service.submit(QuerySpec::parse("gray locks")).unwrap();
/// let (outcome, result) = handle.wait();
/// assert_eq!(outcome.answers[0].tree.root, writes);
/// assert!(!result.cache_hit);
/// ```
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts configuring a service over `graph`.
    pub fn builder(graph: DataGraph) -> ServiceBuilder {
        let default_workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServiceBuilder {
            graph,
            workers: default_workers,
            queue_capacity: 64,
            cache_capacity: 256,
            shared_cache: None,
            prestige: None,
            index: None,
            registry: None,
            default_engine: "bidirectional".to_string(),
        }
    }

    /// Submits a query.  Returns immediately: on a cache hit the handle is
    /// already fully populated (zero engine work), otherwise the query
    /// waits in the bounded admission queue for a worker.
    pub fn submit(&self, spec: impl Into<QuerySpec>) -> Result<QueryHandle, SubmitError> {
        let spec = spec.into();
        let inner = &self.inner;
        let engine = spec.engine.unwrap_or_else(|| inner.default_engine.clone());
        if !inner.registry.contains(&engine) {
            return Err(SubmitError::UnknownEngine(inner.registry.unknown(&engine)));
        }

        // The same single normalization point as the `Banks` facade: the
        // normalized keywords feed both origin-set resolution and the cache
        // key.  Resolution must precede the cache lookup because the
        // resolved origin sets participate in the key (two indexes can give
        // the same keywords different sets); it is cheap next to expansion.
        let normalized = spec.query.normalized(inner.index.tokenizer());
        let matches = KeywordMatches::resolve_normalized(&inner.graph, &inner.index, &normalized);
        let cache_key = CacheKey::new(
            inner.graph.epoch(),
            normalized.keywords().to_vec(),
            &spec.params,
            &engine,
            &matches,
        );

        let id = QueryId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let token = CancelToken::new();
        let state = Arc::new(HandleState::default());
        let (tx, rx) = channel();
        let submitted_at = Instant::now();

        if let Some(hit) = inner.cache.get(&cache_key) {
            // Served entirely from the cache: no queue slot, no worker, no
            // engine — the handle is complete before `submit` returns.
            Counters::bump(&inner.counters.submitted);
            Counters::bump(&inner.counters.cache_hits);
            Counters::bump(&inner.counters.completed);
            state.publish(hit.stats.clone());
            let mut first_answer = None;
            for answer in &hit.answers {
                let _ = tx.send(QueryEvent::Answer(answer.clone()));
                first_answer.get_or_insert_with(|| submitted_at.elapsed());
                Counters::bump(&inner.counters.answers_delivered);
            }
            let _ = tx.send(QueryEvent::Finished(QueryResult {
                stats: hit.stats.clone(),
                cache_hit: true,
                time_to_first_answer: first_answer,
            }));
            return Ok(QueryHandle {
                id,
                token,
                events: rx,
                state,
            });
        }

        let job = Job {
            matches,
            cache_key,
            params: spec.params,
            engine,
            token: token.clone(),
            events: tx,
            state: Arc::clone(&state),
            submitted_at,
        };
        {
            let mut queue = inner.queue.lock().expect("queue lock");
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.jobs.len() >= inner.queue_capacity {
                Counters::bump(&inner.counters.rejected);
                return Err(SubmitError::QueueFull {
                    capacity: inner.queue_capacity,
                });
            }
            queue.jobs.push_back(job);
            Counters::bump(&inner.counters.submitted);
        }
        inner.work_available.notify_one();
        Ok(QueryHandle {
            id,
            token,
            events: rx,
            state,
        })
    }

    /// A point-in-time snapshot of the aggregate counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let queued = self.inner.queue.lock().expect("queue lock").jobs.len();
        ServiceMetrics::snapshot(&self.inner.counters, queued)
    }

    /// The shared result cache (hit/miss counters included).
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.inner.cache
    }

    /// The graph being served.
    pub fn graph(&self) -> &DataGraph {
        &self.inner.graph
    }

    /// The epoch of the graph being served (the cache-key component).
    pub fn epoch(&self) -> u64 {
        self.inner.graph.epoch()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Engine names this service can run.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.inner.registry.names()
    }

    /// Stops accepting new queries, drains the admission queue and joins
    /// the workers.  Equivalent to dropping the service, but explicit.
    pub fn shutdown(self) {}

    fn begin_shutdown(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

/// Worker thread body: pop jobs until shutdown, then drain and exit.
fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = inner.work_available.wait(queue).expect("queue lock");
            }
        };
        execute(&inner, job);
    }
}

/// Runs one query to completion (or cancellation) on the calling worker.
fn execute(inner: &Inner, job: Job) {
    Counters::bump(&inner.counters.executed);
    let ctx = QueryContext::new(&inner.graph, &inner.prestige, &job.matches, job.params)
        .with_cancel(&job.token);
    let engine = inner
        .registry
        .create(&job.engine)
        .expect("engine validated at submit time");
    let mut stream = engine.start(ctx);

    let mut answers = Vec::new();
    let mut first_answer = None;
    let mut receiver_gone = false;
    #[allow(clippy::while_let_on_iterator)] // stats() borrows between polls
    while let Some(answer) = stream.next() {
        first_answer.get_or_insert_with(|| job.submitted_at.elapsed());
        job.state.publish(stream.stats());
        if !receiver_gone {
            if job.events.send(QueryEvent::Answer(answer.clone())).is_err() {
                // The handle is gone: nobody will read further answers.
                // Cancel cooperatively so the engine stops within one step.
                receiver_gone = true;
                job.token.cancel();
            } else {
                Counters::bump(&inner.counters.answers_delivered);
            }
        }
        answers.push(answer);
    }

    let stats = stream.stats();
    job.state.publish(stats.clone());
    Counters::bump(&inner.counters.completed);
    if stats.cancelled {
        Counters::bump(&inner.counters.cancelled);
    }
    if stats.truncated {
        Counters::bump(&inner.counters.truncated);
    }
    Counters::add(&inner.counters.nodes_explored, stats.nodes_explored as u64);

    // Only completed searches are cached: a cancelled run's answer set is
    // whatever happened to be emitted before the abort, not a reproducible
    // result.  (Work-budget truncation, by contrast, is deterministic and
    // safe to cache.)
    if !stats.cancelled {
        inner.cache.insert(
            job.cache_key,
            Arc::new(SearchOutcome {
                answers,
                stats: stats.clone(),
            }),
        );
    }
    let _ = job.events.send(QueryEvent::Finished(QueryResult {
        stats,
        cache_hit: false,
        time_to_first_answer: first_answer,
    }));
}
