//! The worker-pool query service: priority admission, pinned snapshots,
//! online graph swapping.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use banks_core::cache::CacheKey;
use banks_core::registry::UnknownEngine;
use banks_core::{
    CancelToken, EngineRegistry, QueryContext, QueryCost, ResultCache, SearchOutcome, SearchStats,
};
use banks_graph::{
    AppliedBatch, BatchOutcome, DataGraph, GraphPartition, MutationBatch, MutationLog, ShardSpec,
    ShardStats, DEFAULT_LOG_CAPACITY,
};
use banks_obs::{
    CostCalibration, EventLevel, EventLog, Health, Histogram, QueryTrace, ShardTimes, SloEngine,
    SloReport, SloSpec, TimeSeriesRing, TraceRing, WorkCounters, HISTOGRAM_BUCKETS,
};
use banks_persist::{
    list_snapshots, recover, replay_wal, scan_file, FsyncPolicy, PersistError, PersistOptions, Wal,
    WalRecord,
};
use banks_prestige::PrestigeVector;
use banks_textindex::{InvertedIndex, KeywordMatches};

use crate::handle::{HandleState, QueryEvent, QueryHandle, QueryId, QueryResult};
use crate::metrics::{Counters, ServiceMetrics, WaitStats};
use crate::persistence::{DurabilityStatus, Persistence};
use crate::quota::{QuotaConfig, QuotaSettings, QuotaState};
use crate::replication::{
    ReplicatedApply, ReplicationApplyError, ReplicationRole, ReplicationState, ReplicationStatus,
};
use crate::sched::WorkQueue;
use crate::shardset::ShardSet;
use crate::snapshot::GraphSnapshot;
use crate::spec::QuerySpec;

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// Admission control: the bounded queue is full.  Back off and retry —
    /// accepting the query anyway would only grow an unbounded backlog.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The requested engine is not registered; the error lists the known
    /// engines and the nearest alias.
    UnknownEngine(UnknownEngine),
    /// The tenant's token bucket is empty (see
    /// [`ServiceBuilder::tenant_quota`]).  Quota rejection happens before
    /// any work — no snapshot pin, no cache lookup, no queue slot.
    QuotaExceeded {
        /// The tenant whose bucket rejected the submission.
        tenant: String,
        /// Time until the bucket refills enough for one submission — the
        /// value an HTTP front-end surfaces as `Retry-After`.
        retry_after: Duration,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queries waiting)")
            }
            SubmitError::UnknownEngine(e) => write!(f, "{e}"),
            SubmitError::QuotaExceeded {
                tenant,
                retry_after,
            } => write!(
                f,
                "tenant {tenant:?} is over its admission quota (retry in {retry_after:?})"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`Service::apply_mutations`] did: the epoch transition plus the
/// per-op [`BatchOutcome`].
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// The serving epoch after the call (unchanged when nothing was
    /// accepted).
    pub epoch: u64,
    /// The serving epoch the batch was applied against.
    pub previous_epoch: u64,
    /// Whether a successor snapshot was actually swapped in (false when
    /// every op was rejected, or when the WAL append failed).
    pub swapped: bool,
    /// Per-op accept/reject results and the derived-structure deltas.
    pub outcome: BatchOutcome,
    /// Why the batch could not be made durable, when persistence is
    /// enabled and the WAL append failed.  The batch was **not** applied:
    /// the serving snapshot, the epoch and the disk state are all
    /// unchanged, so the caller can retry safely.
    pub persist_error: Option<String>,
    /// Phase trace of the apply itself — delta build, WAL append (with
    /// the fsync this append triggered, if any), shard fan-out, snapshot
    /// swap, and the checkpoint the mutation triggered.  `None` when
    /// nothing was applied.  The same trace is retained in the service's
    /// trace ring under `engine == "mutation"`.
    pub trace: Option<Arc<QueryTrace>>,
}

/// Capacity of the trace retention ring ([`Service::trace`] /
/// [`Service::slow_traces`] look traces up in it).
const TRACE_RING_CAPACITY: usize = 256;

/// Slots in the metrics time-series ring: at the default 10 s collector
/// cadence this retains one hour of history.
const TIMESERIES_CAPACITY: usize = 360;

/// Queue occupancy (fraction of capacity) at which the watchdog flags
/// saturation, and the lower fraction at which the flag clears.
const QUEUE_SATURATION_TRIP: f64 = 0.8;
const QUEUE_SATURATION_CLEAR: f64 = 0.5;

/// The fixed schema of series the collector snapshots every tick.
/// Cumulative counters keep their counter names (windowed deltas/rates come
/// from [`TimeSeriesRing::delta`] / [`TimeSeriesRing::rate_per_sec`]);
/// `*_p*_us` series are **windowed** percentiles — computed from the
/// histogram-bucket delta of the tick, `NaN` when the tick saw no samples —
/// so they decay when a latency regression ends, which is what lets an SLO
/// alert resolve.
fn timeseries_schema() -> Vec<&'static str> {
    vec![
        "submitted",
        "executed",
        "completed",
        "rejected",
        "quota_rejected",
        "cancelled",
        "cache_hits",
        "answers_delivered",
        "slow_queries",
        "queued",
        "error_ratio",
        "ttfa_p50_us",
        "ttfa_p90_us",
        "ttfa_p99_us",
        "queue_wait_p50_us",
        "queue_wait_p90_us",
        "shard_imbalance",
        "queue_saturation",
        "replication_lag_ms",
    ]
}

/// Wall-clock milliseconds since the Unix epoch (the time base of the
/// time-series ring and SLO evaluation).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Span names for per-shard expand attribution.  [`banks_obs::TraceSpan`]
/// names are `&'static str`, so shard indices map through a fixed table;
/// shards beyond it share the overflow name (a display concern only — the
/// per-shard times themselves are exact for any count).
const SHARD_SPAN_NAMES: [&str; 16] = [
    "shard-0", "shard-1", "shard-2", "shard-3", "shard-4", "shard-5", "shard-6", "shard-7",
    "shard-8", "shard-9", "shard-10", "shard-11", "shard-12", "shard-13", "shard-14", "shard-15",
];

/// The static span name for `shard`.
fn shard_span_name(shard: usize) -> &'static str {
    SHARD_SPAN_NAMES.get(shard).copied().unwrap_or("shard-16+")
}

/// Phase timestamps collected while a query moves through admission and
/// execution, as microsecond offsets from `t0` (the top of
/// [`Service::submit`]).  Built for *every* query — a handful of `Instant`
/// reads — so slow queries produce a trace even when the caller did not
/// ask for one; the [`QueryTrace`] itself is only assembled (and the
/// engine's [`WorkCounters`] only attached) when tracing was requested or
/// the query crossed the slow threshold.
struct TraceCtx {
    /// The client correlation reference when the submission explicitly
    /// requested a trace ([`QuerySpec::trace`]).
    requested: Option<String>,
    t0: Instant,
    admit_us: u64,
    resolve_start_us: u64,
    resolve_end_us: u64,
    enqueued_us: u64,
    submitted_off_us: u64,
    /// Live engine counters, allocated only for explicitly traced queries
    /// so untraced expansion steps skip the sampling stores entirely.
    counters: Option<Arc<WorkCounters>>,
}

impl TraceCtx {
    fn new(requested: Option<String>, t0: Instant) -> Self {
        let counters = requested.as_ref().map(|_| Arc::new(WorkCounters::new()));
        TraceCtx {
            requested,
            t0,
            admit_us: 0,
            resolve_start_us: 0,
            resolve_end_us: 0,
            enqueued_us: 0,
            submitted_off_us: 0,
            counters,
        }
    }

    fn elapsed_us(&self) -> u64 {
        self.t0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// Assembles the retained [`QueryTrace`] for one finished query.  `pickup`
/// and `expand_end` are `None` for cache hits (which never queue or run).
#[allow(clippy::too_many_arguments)]
fn build_trace(
    ctx: &TraceCtx,
    id: QueryId,
    engine: &str,
    tenant: &str,
    epoch: u64,
    cache_hit: bool,
    slow: bool,
    total_us: u64,
    pickup_us: Option<u64>,
    expand_end_us: Option<u64>,
    time_to_first_answer: Option<Duration>,
    stats: &SearchStats,
    shard_times: Option<&ShardTimes>,
) -> QueryTrace {
    let mut trace = QueryTrace {
        id: id.0,
        client_ref: ctx.requested.clone(),
        tenant: (!tenant.is_empty()).then(|| tenant.to_string()),
        engine: engine.to_string(),
        cache_hit,
        slow,
        epoch,
        total_us,
        spans: Vec::new(),
        counters: Vec::new(),
    };
    trace.push_span("admit", 0, ctx.admit_us);
    trace.push_span("resolve", ctx.resolve_start_us, ctx.resolve_end_us);
    if let (Some(pickup), Some(expand_end)) = (pickup_us, expand_end_us) {
        trace.push_span("queue", ctx.enqueued_us, pickup);
        trace.push_span("expand", pickup, expand_end);
        // Per-shard expand attribution: the scatter engine charges each
        // shard its proportional share of every refill round's wall time,
        // so these spans — laid end to end from pickup — always sum to at
        // most the expand span (the merge loop and rounding eat the rest).
        if let Some(times) = shard_times {
            let mut start = pickup;
            for (shard, busy) in times.totals().into_iter().enumerate() {
                if busy == 0 {
                    continue;
                }
                let end = (start + busy).min(expand_end);
                trace.push_span(shard_span_name(shard), start, end);
                start = end;
            }
        }
    }
    if let Some(ttfa) = time_to_first_answer {
        let ttfa_us = ttfa.as_micros().min(u64::MAX as u128) as u64;
        trace.push_span(
            "first-answer",
            ctx.submitted_off_us,
            ctx.submitted_off_us + ttfa_us,
        );
    }
    trace.push_span("finish", 0, total_us);
    // Explicitly traced queries carry the live counters the step driver
    // sampled; slow-only traces fall back to the final statistics (same
    // values, just not sampled mid-flight).
    match &ctx.counters {
        Some(c) => {
            trace.push_counter("heap_pops", c.heap_pops.get());
            trace.push_counter("nodes_touched", c.nodes_touched.get());
            trace.push_counter("rows_expanded", c.rows_expanded.get());
            trace.push_counter("answers_emitted", c.answers_emitted.get());
        }
        None => {
            trace.push_counter("heap_pops", stats.nodes_explored as u64);
            trace.push_counter("nodes_touched", stats.nodes_touched as u64);
            trace.push_counter("rows_expanded", stats.edges_traversed as u64);
            trace.push_counter("answers_emitted", stats.answers_output as u64);
        }
    }
    trace
}

/// One unit of queued work, pinned to the serving snapshot it was admitted
/// under.
struct Job {
    id: QueryId,
    /// The graph version this query resolves, expands and caches against —
    /// fixed at admission, unaffected by later swaps.
    snapshot: Arc<GraphSnapshot>,
    matches: KeywordMatches,
    cache_key: CacheKey,
    spec_params: banks_core::SearchParams,
    engine: String,
    tenant: String,
    token: CancelToken,
    events: Sender<QueryEvent>,
    state: Arc<HandleState>,
    submitted_at: Instant,
    /// The a priori cost estimate the scheduler charged (calibration
    /// feedback compares it with the measured `nodes_explored`).
    cost: QueryCost,
    /// Shard count of the set this job was admitted under — the
    /// scatter-gather engines parallelise across this many shards; 1 runs
    /// the plain unsharded path.
    shards: usize,
    trace: TraceCtx,
}

struct QueueState {
    jobs: WorkQueue<Job>,
    /// Jobs currently running on a worker (popped but not finished) — the
    /// other half of the quiescence test [`Service::drain`] waits on.
    executing: usize,
    shutdown: bool,
}

/// Everything the workers share.
struct Inner {
    /// The currently-served shard set (union snapshot + partition);
    /// [`Service::swap_graph`] replaces the `Arc` while in-flight queries
    /// keep their pinned clones alive.
    serving: Mutex<Arc<ShardSet>>,
    /// Configured shard count (≥ 1); every swapped-in version is
    /// partitioned to the same count.
    shards: usize,
    registry: EngineRegistry,
    default_engine: String,
    cache: Arc<ResultCache>,
    /// Whether the cache was created by (and is private to) this service —
    /// only then may a swap eagerly evict the superseded epoch's entries.
    cache_private: bool,
    queue: Mutex<QueueState>,
    queue_capacity: usize,
    work_available: Condvar,
    /// Signalled whenever the queue empties *and* the last executing job
    /// finishes; [`Service::drain`] waits on it.
    idle: Condvar,
    /// Per-tenant token buckets (`None`: quotas disabled).
    quota: Option<Mutex<QuotaState>>,
    /// The quota configuration (kept outside the bucket mutex so metrics
    /// snapshots never contend with the admission path).
    quota_settings: Option<QuotaSettings>,
    /// Serializes [`Service::apply_mutations`] callers, so concurrent
    /// batches compose instead of clobbering each other.  Never held while
    /// queries are admitted or executed — the delta build happens outside
    /// the serving lock.
    mutate: Mutex<()>,
    /// Durability state (WAL + checkpoint bookkeeping); `None` when the
    /// service was built without [`ServiceBuilder::persistence`].  Lock
    /// order: `mutate` → `persistence` (never the reverse).
    persistence: Option<Mutex<Persistence>>,
    /// Ring of recently applied mutation batches (epoch transitions and
    /// accept/reject counts), bounded by
    /// [`ServiceBuilder::mutation_log_capacity`].
    mutation_log: Mutex<MutationLog>,
    counters: Counters,
    waits: Mutex<WaitStats>,
    next_id: AtomicU64,
    /// Retained phase traces (explicitly traced + slow queries).
    traces: TraceRing,
    /// End-to-end latency beyond which a query counts as *slow*: its trace
    /// is retained and [`ServiceMetrics::slow_queries`] is bumped.
    slow_threshold: Duration,
    /// Time-to-first-answer distribution across executed queries.
    ttfa_hist: Histogram,
    /// Apply-latency distribution of successful mutation batches.
    mutation_apply_hist: Histogram,
    /// Online correction of the a priori cost model from measured
    /// `nodes_explored`, per (engine, origin-size bucket).
    calibration: CostCalibration,
    /// The structured operational event log (admission rejects, mutation
    /// batches, checkpoints, swaps, alerts, watchdog trips).
    events: EventLog,
    /// Retained metric snapshots, written by the collector thread.
    series: TimeSeriesRing,
    /// The burn-rate judge over [`Inner::series`].
    slo: SloEngine,
    /// The most recent collector-pass verdict, served on `GET /debug/slo`
    /// and folded into `/healthz` and `/metrics`.
    slo_report: Mutex<SloReport>,
    /// Replication role and follower progress (see
    /// [`crate::replication`]).
    replication: Mutex<ReplicationState>,
    /// Nodes-explored multiple of the a priori estimate beyond which the
    /// watchdog flags a finished query as an overrun.
    watchdog_factor: u64,
    /// Collector cadence (also reported on `GET /debug/slo`).
    collector_cadence: Duration,
}

/// Configures and spawns a [`Service`].
pub struct ServiceBuilder {
    graph: DataGraph,
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    cache_min_work: u64,
    shared_cache: Option<Arc<ResultCache>>,
    prestige: Option<PrestigeVector>,
    index: Option<InvertedIndex>,
    registry: Option<EngineRegistry>,
    default_engine: String,
    quota: QuotaSettings,
    persistence: Option<(PathBuf, PersistOptions)>,
    log_capacity: usize,
    slow_query_threshold: Duration,
    shards: usize,
    collector_cadence: Duration,
    slos: Option<Vec<SloSpec>>,
    event_log_capacity: usize,
    watchdog_factor: u64,
}

impl ServiceBuilder {
    /// Number of worker threads (default: available parallelism, capped at
    /// 8; always at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bound of the admission queue (default 64).  A full queue rejects new
    /// submissions with [`SubmitError::QueueFull`] instead of buffering
    /// without limit — backpressure is explicit.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Capacity of the LRU result cache (default 256; 0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Admission threshold of the private result cache, in nodes explored
    /// (default 0: admit everything).  Outcomes measured cheaper than this
    /// are recomputed on demand instead of occupying a cache slot, so a
    /// stream of tiny queries cannot evict the expensive outcomes caching
    /// exists for.  Ignored when [`ServiceBuilder::shared_cache`] supplies
    /// the cache — configure the threshold on the shared instance
    /// ([`ResultCache::min_work`]) instead.
    pub fn cache_min_work(mut self, min_work: u64) -> Self {
        self.cache_min_work = min_work;
        self
    }

    /// Shares an existing result cache instead of creating a private one.
    /// Keys carry the graph epoch, so one cache can serve several services
    /// (and graph versions) without cross-talk.  A shared cache is never
    /// purged on [`Service::swap_graph`] — another service may still serve
    /// the old epoch.
    pub fn shared_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Uses a precomputed prestige vector instead of the uniform default.
    pub fn prestige(mut self, prestige: PrestigeVector) -> Self {
        self.prestige = Some(prestige);
        self
    }

    /// Uses a prebuilt keyword index instead of the label index built from
    /// the graph.
    pub fn index(mut self, index: InvertedIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Replaces the engine registry (default: the paper's engines).
    pub fn registry(mut self, registry: EngineRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the engine run when a [`QuerySpec`] names none.
    ///
    /// # Panics
    /// `build` panics when this name is not in the registry.
    pub fn default_engine(mut self, name: impl Into<String>) -> Self {
        self.default_engine = name.into();
        self
    }

    /// Enables per-tenant admission quotas: every tenant owns a token
    /// bucket of capacity `burst` refilled at `rate_per_sec` tokens per
    /// second, and each submission — cache hit or miss — takes one token
    /// (or a cost-weighted charge; see
    /// [`ServiceBuilder::quota_work_per_token`]).  An underfunded bucket
    /// rejects with [`SubmitError::QuotaExceeded`], whose `retry_after`
    /// says when the charge becomes affordable.
    ///
    /// Quotas complement the scheduler's fair share: fair share decides
    /// *who runs next* among admitted work, the quota decides *whether a
    /// tenant may submit at all*.  Submissions naming no tenant share the
    /// anonymous tenant `""` (and therefore one bucket).  Rejections are
    /// counted per tenant in [`crate::TenantMetrics::quota_rejected`],
    /// and each tracked tenant's governing rate is surfaced in
    /// [`crate::TenantMetrics::quota_rate_per_sec`].
    ///
    /// This sets the rate every tenant shares by default; named tenants
    /// can get their own rate via [`ServiceBuilder::tenant_quota_for`].
    /// Default: no quota (every submission admitted subject to queue
    /// capacity).  `rate_per_sec` is floored at one token per day and
    /// `burst` at 1.
    pub fn tenant_quota(mut self, rate_per_sec: f64, burst: u64) -> Self {
        self.quota.default = Some(QuotaConfig::new(rate_per_sec, burst));
        self
    }

    /// Configures a *per-tenant* quota override: `tenant` gets its own
    /// token bucket of capacity `burst` refilled at `rate_per_sec`,
    /// regardless of the shared default — a paid tier bursts higher, an
    /// abusive scraper is pinned lower.  May be called once per tenant.
    ///
    /// Overrides work with or without a [`ServiceBuilder::tenant_quota`]
    /// default; without one, tenants that have no override are unlimited.
    pub fn tenant_quota_for(
        mut self,
        tenant: impl Into<String>,
        rate_per_sec: f64,
        burst: u64,
    ) -> Self {
        self.quota
            .overrides
            .insert(tenant.into(), QuotaConfig::new(rate_per_sec, burst));
        self
    }

    /// Switches quota charging from flat (one token per submission) to
    /// **cost-weighted**: a submission is charged
    /// `max(1, estimated_work / work_per_token)` tokens, where
    /// `estimated_work` is the scheduler's a priori estimate
    /// ([`banks_core::QueryCost`]).  A tenant's quota then bounds the
    /// *engine work* it can demand per second, not merely its request
    /// rate — a burst of expensive trawls drains the bucket as fast as
    /// many cheap lookups.
    ///
    /// Details: the one-token floor is charged *up front*, before any
    /// resolution work, so an over-quota tenant cannot extract free
    /// tokenization/cache probes by hammering; the work-priced remainder
    /// is charged once the resolved origin sets make the estimate
    /// available.  Cache hits are charged only the floor (they cost the
    /// service almost nothing), and a single query estimated above
    /// `burst × work_per_token` is clamped to the full bucket rather than
    /// being forever unaffordable.
    pub fn quota_work_per_token(mut self, work_per_token: u64) -> Self {
        self.quota.work_per_token = Some(work_per_token.max(1));
        self
    }

    /// Enables durable persistence in `data_dir` with the given fsync
    /// policy (defaults for everything else — see
    /// [`ServiceBuilder::persistence_with`] for the full knob set).
    ///
    /// With persistence enabled, [`Service::build`](ServiceBuilder::build)
    /// first tries to **recover**: if `data_dir` holds a usable snapshot,
    /// it is loaded, the WAL suffix is replayed, and the builder's graph is
    /// ignored — the service boots serving exactly the pre-crash state.
    /// On a fresh directory the builder's graph is used and an initial
    /// checkpoint is written immediately.  Thereafter every accepted
    /// mutation batch is WAL-appended *before* its snapshot swap, and
    /// checkpoints run on demand ([`Service::checkpoint`]), on compaction,
    /// on WAL rotation, and after a wholesale [`Service::swap_graph`].
    ///
    /// Recovery derives the keyword index and prestige from the recovered
    /// graph (the builder defaults).  A deployment that supplies its own
    /// [`ServiceBuilder::index`] / [`ServiceBuilder::prestige`] must
    /// re-supply them on restart — they are treated as external state, and
    /// the persisted copies are available to the caller via
    /// [`banks_persist::read_snapshot`].
    pub fn persistence(self, data_dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Self {
        let options = PersistOptions {
            fsync,
            ..PersistOptions::default()
        };
        self.persistence_with(data_dir, options)
    }

    /// Enables durable persistence with full [`PersistOptions`] control
    /// (fsync policy, WAL rotation threshold, snapshot retention).
    pub fn persistence_with(
        mut self,
        data_dir: impl Into<PathBuf>,
        options: PersistOptions,
    ) -> Self {
        self.persistence = Some((data_dir.into(), options));
        self
    }

    /// Capacity of the in-memory mutation log ring (default
    /// [`banks_graph::DEFAULT_LOG_CAPACITY`]).  Once full, the oldest
    /// entries are dropped and counted in
    /// [`ServiceMetrics::mutation_log_dropped`].
    pub fn mutation_log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity;
        self
    }

    /// Partitions the served graph into `shards` hash-assigned shards
    /// (default 1: unsharded; clamped to at least 1).  Every graph version
    /// this service serves — the boot graph, recovered state, wholesale
    /// swaps, mutation successors — is partitioned to the same count
    /// behind a [`ShardSet`], and the `scatter-gather` engine family
    /// executes across the shards in parallel while emitting a stream
    /// byte-identical to the unsharded run.  Mutation batches fan their
    /// accepted ops out to the owning shards inside the same epoch swap.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// End-to-end latency beyond which a query counts as **slow** (default
    /// 250 ms): its phase trace is retained in the bounded trace ring —
    /// retrievable via [`Service::slow_traces`] / [`Service::trace`], and
    /// over HTTP at `GET /debug/slow` — even when the submission did not
    /// request tracing, and [`ServiceMetrics::slow_queries`] is bumped.
    pub fn slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Cadence of the metrics collector thread (default 10 s, floored at
    /// 10 ms).  Every tick snapshots the time-series schema into the
    /// bounded retention ring, re-evaluates the SLO burn rates, and runs
    /// the queue-saturation watchdog.  Tests shrink this to ~100 ms so an
    /// induced regression flips health within a fraction of a second.
    pub fn collector_cadence(mut self, cadence: Duration) -> Self {
        self.collector_cadence = cadence.max(Duration::from_millis(10));
        self
    }

    /// Replaces the stock SLO set ([`SloSpec::defaults`]: `ttfa_p99 <
    /// 250 ms`, `error_ratio < 1%`, `queue_wait_p90 < 50 ms`,
    /// `shard_imbalance < 2`).  An empty vector disables SLO judgment —
    /// health stays `ok` and `GET /debug/slo` reports no specs.
    pub fn slos(mut self, specs: Vec<SloSpec>) -> Self {
        self.slos = Some(specs);
        self
    }

    /// Loads the SLO set from a JSON config file (see [`parse_slo_specs`]
    /// for the format) — the operator-facing twin of
    /// [`ServiceBuilder::slos`].  Errors carry the offending path or the
    /// parse failure; an unreadable or malformed file must fail loudly at
    /// boot, not silently fall back to the defaults.
    pub fn slos_from_path(self, path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read SLO config {}: {e}", path.display()))?;
        let specs =
            parse_slo_specs(&text).map_err(|e| format!("SLO config {}: {e}", path.display()))?;
        Ok(self.slos(specs))
    }

    /// Capacity of the structured event-log ring (default 1024, minimum
    /// 1).  Once full, the oldest events are evicted and counted in
    /// [`ServiceMetrics::event_log_dropped`].
    pub fn event_log_capacity(mut self, capacity: usize) -> Self {
        self.event_log_capacity = capacity;
        self
    }

    /// Nodes-explored multiple of the scheduler's a priori estimate beyond
    /// which a finished query trips the watchdog (default 8×, floored at
    /// 2×): the overrun is counted in
    /// [`ServiceMetrics::watchdog_overruns`] and logged as a
    /// `watchdog-overrun` event.
    pub fn watchdog_overrun_factor(mut self, factor: u64) -> Self {
        self.watchdog_factor = factor.max(2);
        self
    }

    /// Validates the configuration, builds the initial serving snapshot
    /// (prestige and keyword index included) and spawns the worker threads.
    ///
    /// # Panics
    /// Panics when persistence is enabled and recovery or the initial
    /// checkpoint fails — use [`ServiceBuilder::try_build`] to handle
    /// those errors.  (Without persistence this never fails, except for
    /// the documented unknown-default-engine panic.)
    pub fn build(self) -> Service {
        match self.try_build() {
            Ok(service) => service,
            Err(e) => panic!("service persistence initialisation failed: {e}"),
        }
    }

    /// Fallible [`ServiceBuilder::build`]: persistence errors (unreadable
    /// data directory, corrupt state beyond recovery, failed initial
    /// checkpoint) are returned instead of panicking.
    pub fn try_build(self) -> Result<Service, PersistError> {
        // Derived parts (uniform prestige, label index) refresh exactly on
        // `apply_mutations`; caller-supplied parts are treated as external
        // (prestige carried forward, index updated additively only).
        //
        // With persistence, recovery decides the boot graph: a usable
        // snapshot (plus replayed WAL suffix) supersedes the builder's
        // graph; a fresh directory uses the builder's graph and writes an
        // initial checkpoint so the directory is valid from the first
        // moment.
        let events = EventLog::new(self.event_log_capacity);
        let (snapshot, persistence) = match self.persistence {
            None => (
                GraphSnapshot::from_optional(self.graph, self.prestige, self.index),
                None,
            ),
            Some((dir, options)) => {
                std::fs::create_dir_all(&dir)?;
                match recover(&dir)? {
                    Some(recovery) => {
                        let (graph, replayed) =
                            replay_wal(recovery.contents.graph, &recovery.wal.records)?;
                        let wal = Persistence::open_wal(&dir, &options, &recovery.wal)?;
                        let snapshot =
                            GraphSnapshot::from_optional(graph, self.prestige, self.index);
                        let persistence = Persistence::recovered(
                            &dir,
                            wal,
                            options,
                            recovery.snapshot_epoch,
                            replayed as u64,
                        );
                        events.emit(
                            EventLevel::Info,
                            "recovery",
                            format!(
                                "recovered snapshot epoch {} and replayed {} WAL record(s)",
                                recovery.snapshot_epoch, replayed
                            ),
                        );
                        (snapshot, Some(persistence))
                    }
                    None => {
                        let snapshot =
                            GraphSnapshot::from_optional(self.graph, self.prestige, self.index);
                        let wal = Wal::create(&dir.join(banks_persist::WAL_FILE), options.fsync)?;
                        let mut persistence = Persistence::fresh(&dir, wal, options);
                        persistence.checkpoint(&snapshot)?;
                        (snapshot, Some(persistence))
                    }
                }
            }
        };
        let registry = self.registry.unwrap_or_default();
        if !registry.contains(&self.default_engine) {
            panic!("{}", registry.unknown(&self.default_engine));
        }
        let (cache, cache_private) = match self.shared_cache {
            Some(cache) => (cache, false),
            None => (
                Arc::new(ResultCache::new(self.cache_capacity).min_work(self.cache_min_work)),
                true,
            ),
        };
        let quota_enabled = self.quota.enabled();
        let inner = Arc::new(Inner {
            serving: Mutex::new(Arc::new(ShardSet::build(snapshot, self.shards))),
            shards: self.shards,
            registry,
            default_engine: self.default_engine,
            cache,
            cache_private,
            queue: Mutex::new(QueueState {
                jobs: WorkQueue::new(),
                executing: 0,
                shutdown: false,
            }),
            queue_capacity: self.queue_capacity,
            work_available: Condvar::new(),
            idle: Condvar::new(),
            quota: quota_enabled.then(|| Mutex::new(QuotaState::new(self.quota.clone()))),
            quota_settings: quota_enabled.then_some(self.quota),
            mutate: Mutex::new(()),
            persistence: persistence.map(Mutex::new),
            mutation_log: Mutex::new(MutationLog::new(self.log_capacity)),
            counters: Counters::default(),
            waits: Mutex::new(WaitStats::default()),
            next_id: AtomicU64::new(0),
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            slow_threshold: self.slow_query_threshold,
            ttfa_hist: Histogram::new(),
            mutation_apply_hist: Histogram::new(),
            calibration: CostCalibration::default(),
            events,
            series: TimeSeriesRing::new(timeseries_schema(), TIMESERIES_CAPACITY),
            slo: SloEngine::new(self.slos.unwrap_or_else(SloSpec::defaults)),
            slo_report: Mutex::new(SloReport::default()),
            replication: Mutex::new(ReplicationState::default()),
            watchdog_factor: self.watchdog_factor,
            collector_cadence: self.collector_cadence,
        });
        let workers = (0..self.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("banks-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn worker thread")
            })
            .collect();
        let collector_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let collector = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&collector_stop);
            let cadence = self.collector_cadence;
            Some(
                std::thread::Builder::new()
                    .name("banks-collector".to_string())
                    .spawn(move || collector_loop(inner, stop, cadence))
                    .expect("spawn collector thread"),
            )
        };
        Ok(Service {
            inner,
            workers,
            collector,
            collector_stop,
        })
    }
}

/// Parses a JSON SLO configuration: either a top-level array of spec
/// objects or an object with a `"slos"` array member.  Each spec requires
/// `"name"`, `"metric"` and `"threshold"`; the optional `"budget"`,
/// `"fast_window_ms"`, `"slow_window_ms"`, `"fire_burn"` and
/// `"resolve_burn"` members override the [`SloSpec::upper_bound`]
/// defaults.  Unknown members are rejected — a typo must not silently
/// weaken an objective.
///
/// ```
/// let specs = banks_service::parse_slo_specs(
///     r#"{"slos":[{"name":"replication_lag","metric":"replication_lag_ms",
///                  "threshold":5000}]}"#,
/// )
/// .unwrap();
/// assert_eq!(specs.len(), 1);
/// assert_eq!(specs[0].metric, "replication_lag_ms");
/// ```
pub fn parse_slo_specs(text: &str) -> Result<Vec<SloSpec>, String> {
    use banks_core::json::JsonValue;

    let doc = banks_core::json::parse(text)?;
    let entries: &[JsonValue] = match &doc {
        JsonValue::Array(items) => items,
        JsonValue::Object(map) => match map.get("slos") {
            Some(JsonValue::Array(items)) => items,
            Some(_) => return Err("\"slos\" must be an array".to_string()),
            None => {
                return Err(
                    "expected a top-level array or an object with a \"slos\" array".to_string(),
                )
            }
        },
        _ => return Err("expected a top-level array or object".to_string()),
    };
    let mut specs = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let JsonValue::Object(map) = entry else {
            return Err(format!("slo #{i}: expected an object"));
        };
        for key in map.keys() {
            if ![
                "name",
                "metric",
                "threshold",
                "budget",
                "fast_window_ms",
                "slow_window_ms",
                "fire_burn",
                "resolve_burn",
            ]
            .contains(&key.as_str())
            {
                return Err(format!("slo #{i}: unknown member {key:?}"));
            }
        }
        let string_field = |key: &str| -> Result<String, String> {
            match map.get(key) {
                Some(JsonValue::String(s)) if !s.is_empty() => Ok(s.clone()),
                Some(JsonValue::String(_)) => Err(format!("slo #{i}: {key:?} must be non-empty")),
                Some(_) => Err(format!("slo #{i}: {key:?} must be a string")),
                None => Err(format!("slo #{i}: missing {key:?}")),
            }
        };
        let number_field = |key: &str| -> Result<Option<f64>, String> {
            match map.get(key) {
                Some(JsonValue::Number(n)) if n.is_finite() => Ok(Some(*n)),
                Some(_) => Err(format!("slo #{i}: {key:?} must be a finite number")),
                None => Ok(None),
            }
        };
        let window_field = |key: &str| -> Result<Option<u64>, String> {
            match number_field(key)? {
                Some(n) if n >= 1.0 && n.fract() == 0.0 => Ok(Some(n as u64)),
                Some(_) => Err(format!(
                    "slo #{i}: {key:?} must be a positive integer of ms"
                )),
                None => Ok(None),
            }
        };
        let threshold =
            number_field("threshold")?.ok_or_else(|| format!("slo #{i}: missing \"threshold\""))?;
        let mut spec =
            SloSpec::upper_bound(string_field("name")?, string_field("metric")?, threshold);
        if let Some(budget) = number_field("budget")? {
            if !(budget > 0.0 && budget <= 1.0) {
                return Err(format!("slo #{i}: \"budget\" must be in (0, 1]"));
            }
            spec.budget = budget;
        }
        if let Some(fast) = window_field("fast_window_ms")? {
            spec.fast_window_ms = fast;
        }
        if let Some(slow) = window_field("slow_window_ms")? {
            spec.slow_window_ms = slow;
        }
        if let Some(fire) = number_field("fire_burn")? {
            spec.fire_burn = fire;
        }
        if let Some(resolve) = number_field("resolve_burn")? {
            spec.resolve_burn = resolve;
        }
        if spec.fast_window_ms > spec.slow_window_ms {
            return Err(format!(
                "slo #{i}: fast window must not exceed the slow window"
            ));
        }
        if let Some(dup) = specs
            .iter()
            .map(|s: &SloSpec| &s.name)
            .find(|n| **n == spec.name)
        {
            return Err(format!("slo #{i}: duplicate name {dup:?}"));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// A multi-threaded query service owning one *serving snapshot* (graph,
/// prestige, keyword index — see [`GraphSnapshot`]) plus an engine registry
/// and result cache.
///
/// Queries are submitted as [`QuerySpec`]s and executed by a pool of worker
/// threads; the returned [`QueryHandle`] streams answers as the engine
/// emits them and supports cooperative cancellation and live statistics.
/// Admission is a bounded **priority scheduler** — shortest expected work
/// first ([`banks_core::QueryCost`]), per-tenant fair share, aging so
/// nothing starves (see [`QuerySpec::tenant`] / [`QuerySpec::priority`]) —
/// repeated queries are served from the shared LRU [`ResultCache`], and
/// per-answer deadlines are deterministic work budgets
/// ([`banks_core::SearchParams::answer_work_budget`]).  The served graph
/// can be replaced online with [`Service::swap_graph`].
///
/// ```
/// use banks_graph::GraphBuilder;
/// use banks_service::{QuerySpec, Service};
///
/// let mut b = GraphBuilder::new();
/// let author = b.add_node("author", "Jim Gray");
/// let paper = b.add_node("paper", "Granularity of locks");
/// let writes = b.add_node("writes", "w0");
/// b.add_edge(writes, author).unwrap();
/// b.add_edge(writes, paper).unwrap();
///
/// let service = Service::builder(b.build_default())
///     .workers(4)
///     .cache_capacity(256)
///     .build();
/// let handle = service.submit(QuerySpec::parse("gray locks")).unwrap();
/// let (outcome, result) = handle.wait();
/// assert_eq!(outcome.answers[0].tree.root, writes);
/// assert!(!result.cache_hit);
/// assert_eq!(result.epoch, service.epoch());
/// ```
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// The metrics collector thread (time-series snapshots, SLO passes,
    /// queue watchdog); joined on shutdown via `collector_stop`.
    collector: Option<JoinHandle<()>>,
    collector_stop: Arc<(Mutex<bool>, Condvar)>,
}

impl Service {
    /// Starts configuring a service over `graph`.
    pub fn builder(graph: DataGraph) -> ServiceBuilder {
        let default_workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServiceBuilder {
            graph,
            workers: default_workers,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_min_work: 0,
            shared_cache: None,
            prestige: None,
            index: None,
            registry: None,
            default_engine: "bidirectional".to_string(),
            quota: QuotaSettings::default(),
            persistence: None,
            log_capacity: DEFAULT_LOG_CAPACITY,
            slow_query_threshold: Duration::from_millis(250),
            shards: 1,
            collector_cadence: Duration::from_secs(10),
            slos: None,
            event_log_capacity: 1024,
            watchdog_factor: 8,
        }
    }

    /// Submits a query.  Returns immediately: on a cache hit the handle is
    /// already fully populated (zero engine work), otherwise the query
    /// enters the bounded priority scheduler at its estimated cost
    /// ([`banks_core::QueryCost`], scaled by [`QuerySpec::priority`]) and
    /// waits for a worker.
    pub fn submit(&self, spec: impl Into<QuerySpec>) -> Result<QueryHandle, SubmitError> {
        let t0 = Instant::now();
        let spec = spec.into();
        let inner = &self.inner;
        let engine = spec.engine.unwrap_or_else(|| inner.default_engine.clone());
        if !inner.registry.contains(&engine) {
            return Err(SubmitError::UnknownEngine(inner.registry.unknown(&engine)));
        }
        let tenant = spec.tenant.unwrap_or_default();
        let mut trace = TraceCtx::new(spec.trace, t0);

        let quota_reject = |tenant: String, retry_after: Duration| {
            Counters::bump(&inner.counters.quota_rejected);
            inner
                .waits
                .lock()
                .expect("waits lock")
                .record_quota_rejection(&tenant);
            inner.events.emit(
                EventLevel::Warn,
                "quota-reject",
                format!("tenant {tenant:?} over quota, retry in {retry_after:?}"),
            );
            Err(SubmitError::QuotaExceeded {
                tenant,
                retry_after,
            })
        };
        let cost_weighted = inner
            .quota_settings
            .as_ref()
            .is_some_and(|s| s.work_per_token.is_some());

        // Admission quota, the one-token floor: charged per submission,
        // before any work happens — an over-quota tenant is rejected
        // without keyword normalization, origin-set resolution or a cache
        // probe, whichever charging model is active (the quota throttles
        // the tenant's request *rate* first).  Cost-weighted quotas charge
        // the work-priced remainder further down, once the resolved origin
        // sets make the estimate available.
        if let Some(quota) = &inner.quota {
            let verdict = quota
                .lock()
                .expect("quota lock")
                .try_take(&tenant, Instant::now(), 1.0);
            if let Err(retry_after) = verdict {
                return quota_reject(tenant, retry_after);
            }
        }
        trace.admit_us = trace.elapsed_us();

        // Pin the serving shard set: everything below — keyword resolution,
        // cache key, execution — consistently uses this version, no matter
        // how many swaps happen while the query waits or runs.  The cache
        // key carries only the epoch: the shard count never affects answer
        // bytes (that is the scatter-gather contract), so sharded and
        // unsharded runs share cache entries.
        let shard_set = Arc::clone(&inner.serving.lock().expect("serving lock"));
        let snapshot = Arc::clone(shard_set.snapshot());

        // The same single normalization point as the `Banks` facade: the
        // normalized keywords feed both origin-set resolution and the cache
        // key.  Resolution must precede the cache lookup because the
        // resolved origin sets participate in the key (two indexes can give
        // the same keywords different sets); it is cheap next to expansion.
        trace.resolve_start_us = trace.elapsed_us();
        let normalized = spec.query.normalized(snapshot.index().tokenizer());
        let matches =
            KeywordMatches::resolve_normalized(snapshot.graph(), snapshot.index(), &normalized);
        let cache_key = CacheKey::new(
            snapshot.epoch(),
            normalized.keywords().to_vec(),
            &spec.params,
            &engine,
            &matches,
        );
        trace.resolve_end_us = trace.elapsed_us();

        let id = QueryId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let token = CancelToken::new();
        let state = Arc::new(HandleState::default());
        let (tx, rx) = channel();
        let submitted_at = Instant::now();
        trace.submitted_off_us = trace.elapsed_us();

        if let Some(hit) = inner.cache.get(&cache_key) {
            // Served entirely from the cache: no queue slot, no worker, no
            // engine — the handle is complete before `submit` returns.
            // Cost-weighted quotas charge hits only the one-token floor
            // (already taken up front): the quota still bounds the request
            // rate, but a hit costs the service almost nothing, so it is
            // not billed as engine work.
            Counters::bump(&inner.counters.submitted);
            Counters::bump(&inner.counters.cache_hits);
            Counters::bump(&inner.counters.completed);
            state.publish(hit.stats.clone());
            let mut first_answer = None;
            for answer in &hit.answers {
                let _ = tx.send(QueryEvent::Answer(answer.clone()));
                first_answer.get_or_insert_with(|| submitted_at.elapsed());
                Counters::bump(&inner.counters.answers_delivered);
            }
            let total_us = trace.elapsed_us();
            let slow = Duration::from_micros(total_us) >= inner.slow_threshold;
            let retained = (trace.requested.is_some() || slow).then(|| {
                Arc::new(build_trace(
                    &trace,
                    id,
                    &engine,
                    &tenant,
                    cache_key.epoch,
                    true,
                    slow,
                    total_us,
                    None,
                    None,
                    first_answer,
                    &hit.stats,
                    None,
                ))
            });
            if slow {
                Counters::bump(&inner.counters.slow_queries);
            }
            if let Some(t) = &retained {
                inner.traces.push(Arc::clone(t));
            }
            let _ = tx.send(QueryEvent::Finished(QueryResult {
                stats: hit.stats.clone(),
                cache_hit: true,
                time_to_first_answer: first_answer,
                queue_wait: std::time::Duration::ZERO,
                epoch: cache_key.epoch,
                trace: trace.requested.is_some().then_some(retained).flatten(),
            }));
            return Ok(QueryHandle {
                id,
                token,
                events: rx,
                state,
            });
        }

        // Shortest-expected-work-first: the scheduler charges the a priori
        // estimate, scaled by the submission's priority class.  The static
        // model is blended with the online calibration table — the EMA of
        // measured/estimated `nodes_explored` for this (engine,
        // origin-size) cell — so systematic over- or under-estimation
        // corrects itself as queries complete.
        let mut cost = QueryCost::estimate(&matches, &spec.params, &engine);
        cost.estimated_work =
            inner
                .calibration
                .corrected(&engine, cost.origin_nodes as usize, cost.estimated_work);
        let charged = spec.priority.charge(cost.estimated_work);

        // Cost-weighted quota, the remainder beyond the up-front floor:
        // the same a priori estimate prices the admission — an expensive
        // trawl drains the tenant's bucket as fast as many cheap lookups
        // would (the total charge, floor included, is clamped to the
        // bucket's burst).
        if cost_weighted {
            if let Some(quota) = &inner.quota {
                let tokens = inner
                    .quota_settings
                    .as_ref()
                    .expect("settings exist when quota does")
                    .charge_for(cost.estimated_work);
                let verdict = quota.lock().expect("quota lock").try_take_remainder(
                    &tenant,
                    Instant::now(),
                    tokens,
                );
                if let Err(retry_after) = verdict {
                    return quota_reject(tenant, retry_after);
                }
            }
        }

        trace.enqueued_us = trace.elapsed_us();
        let job = Job {
            id,
            snapshot,
            matches,
            cache_key,
            spec_params: spec.params,
            engine,
            tenant: tenant.clone(),
            token: token.clone(),
            events: tx,
            state: Arc::clone(&state),
            submitted_at,
            cost,
            shards: shard_set.shards(),
            trace,
        };
        {
            let mut queue = inner.queue.lock().expect("queue lock");
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.jobs.len() >= inner.queue_capacity {
                Counters::bump(&inner.counters.rejected);
                inner.events.emit(
                    EventLevel::Warn,
                    "admission-reject",
                    format!(
                        "queue full ({} waiting), rejected a {} submission",
                        inner.queue_capacity,
                        if tenant.is_empty() {
                            "anonymous".to_string()
                        } else {
                            format!("tenant {tenant:?}")
                        }
                    ),
                );
                return Err(SubmitError::QueueFull {
                    capacity: inner.queue_capacity,
                });
            }
            queue.jobs.push(&tenant, charged, job);
            Counters::bump(&inner.counters.submitted);
        }
        inner.work_available.notify_one();
        Ok(QueryHandle {
            id,
            token,
            events: rx,
            state,
        })
    }

    /// Atomically replaces the served graph with a new version, deriving
    /// the default prestige vector and label index for it (use
    /// [`Service::swap_snapshot`] to supply precomputed ones).  Returns the
    /// new serving epoch.
    ///
    /// The swap is the whole online-reindexing story:
    ///
    /// * **in-flight queries** — running *or still queued* — finish on the
    ///   snapshot they were admitted under, which stays alive until its
    ///   last query drops it;
    /// * **new admissions** resolve, execute and cache against the new
    ///   version;
    /// * **the result cache** needs no flush: keys carry the epoch, so old
    ///   entries can never serve the new graph.  If this service owns its
    ///   cache (no [`ServiceBuilder::shared_cache`]), the superseded
    ///   epoch's entries are evicted eagerly to reclaim capacity.
    ///
    /// Swapping in a clone of the currently-served graph still produces a
    /// distinct epoch (and therefore a cold cache): the contract is
    /// "admissions after the swap run on the swapped-in version", not
    /// "...unless the bytes look the same".
    pub fn swap_graph(&self, graph: DataGraph) -> u64 {
        // Derivations run *before* the serving lock is taken: queries keep
        // flowing against the old version while prestige and the index for
        // the new one are computed.
        self.swap_snapshot(GraphSnapshot::with_defaults(graph))
    }

    /// Applies a [`MutationBatch`] to the currently-served snapshot and
    /// swaps the successor in, returning the per-op outcome and the new
    /// serving epoch.
    ///
    /// This is the incremental counterpart of [`Service::swap_graph`],
    /// sharing all of its machinery and guarantees — pinned snapshots,
    /// epoch-keyed caches, eager eviction for private caches — while
    /// building the new version as a **delta** instead of a rebuild:
    ///
    /// * the successor snapshot (graph + index + prestige) is derived
    ///   *outside the serving lock* via [`GraphSnapshot::apply_batch`], so
    ///   queries keep flowing on the old version throughout;
    /// * queued and in-flight queries finish on the snapshot they pinned
    ///   at admission; new admissions see the new epoch;
    /// * the epoch-keyed result cache stays correct for free (a private
    ///   cache additionally evicts the superseded epoch eagerly);
    /// * a batch in which **no** op was accepted swaps nothing — the
    ///   epoch, the cache and the serving snapshot are untouched, and the
    ///   report says so (`swapped == false`).
    ///
    /// Concurrent `apply_mutations` callers are serialized (each batch
    /// builds on the previous one's result); a concurrent
    /// [`Service::swap_graph`] interleaves on last-writer-wins terms,
    /// exactly as two wholesale swaps would.
    ///
    /// Long mutation chains do not degrade the serving graph: once more
    /// than a quarter of the nodes carry copy-on-write overlay rows, the
    /// successor is compacted back into flat CSR storage before the swap
    /// (same contents, same epoch — invisible to queries and caches).
    ///
    /// With persistence enabled ([`ServiceBuilder::persistence`]) the
    /// write path is **WAL-first**: the accepted batch is appended to the
    /// log (and fsynced per policy) *before* the successor snapshot swaps
    /// in.  If the append fails, nothing swaps — the report carries
    /// [`MutationReport::persist_error`] and the serving state is
    /// unchanged, so acknowledged mutations are exactly the durable ones.
    /// A swap that triggered compaction, or a WAL past its rotation
    /// threshold, checkpoints immediately afterwards (snapshot + WAL
    /// truncation), off the freshly-swapped snapshot.
    pub fn apply_mutations(&self, batch: &MutationBatch) -> MutationReport {
        /// Overlay fraction beyond which the successor graph is flattened.
        const COMPACT_OVERLAY_RATIO: f64 = 0.25;

        let apply_started = Instant::now();
        let elapsed_us = || apply_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let _admin = self.inner.mutate.lock().expect("mutate lock");
        let current_set = self.shard_set();
        let current = Arc::clone(current_set.snapshot());
        let previous_epoch = current.epoch();
        // The expensive part — adjacency row rewrites, index delta,
        // prestige refresh, the occasional compaction — happens here, with
        // no service lock held.
        let (mut next, outcome) = current.apply_batch(batch);
        let compacted = next.maybe_compact(COMPACT_OVERLAY_RATIO);
        let apply_end_us = elapsed_us();
        let accepted = outcome.accepted();
        if accepted == 0 {
            Counters::add(
                &self.inner.counters.mutation_ops_rejected,
                outcome.rejected() as u64,
            );
            return MutationReport {
                epoch: previous_epoch,
                previous_epoch,
                swapped: false,
                outcome,
                persist_error: None,
                trace: None,
            };
        }

        // Durability barrier: the batch must be on the log before any
        // query can observe its effects.  A failed append aborts the
        // mutation entirely — the successor is dropped, the epoch does not
        // advance, and the disk and memory states remain consistent.
        let mut wal_span = None;
        let mut fsync_us = 0u64;
        if let Some(persistence) = &self.inner.persistence {
            let mut persistence = persistence.lock().expect("persistence lock");
            let wal_start_us = elapsed_us();
            match persistence.append(previous_epoch, next.epoch(), batch) {
                Ok(sync_us) => {
                    wal_span = Some((wal_start_us, elapsed_us()));
                    fsync_us = sync_us;
                }
                Err(e) => {
                    Counters::add(
                        &self.inner.counters.mutation_ops_rejected,
                        outcome.rejected() as u64,
                    );
                    return MutationReport {
                        epoch: previous_epoch,
                        previous_epoch,
                        swapped: false,
                        outcome,
                        persist_error: Some(e.to_string()),
                        trace: None,
                    };
                }
            }
        }

        // Shard fan-out: clone the partition (structurally shared) and
        // apply exactly the accepted ops to the owning shards, so the
        // successor set swaps in with union and shards at one epoch.
        let fanout_start_us = elapsed_us();
        let partition = current_set.successor_partition(&next, batch, &outcome);
        let fanout_end_us = elapsed_us();

        let swap_start_us = elapsed_us();
        let epoch = self.swap_snapshot_inner(next, partition);
        let swap_end_us = elapsed_us();
        // Apply latency: admin-lock acquisition through WAL append and
        // snapshot swap (post-swap checkpoints are accounted separately).
        self.inner
            .mutation_apply_hist
            .record(apply_started.elapsed());
        Counters::bump(&self.inner.counters.mutation_batches);
        Counters::add(&self.inner.counters.mutation_ops_accepted, accepted as u64);
        Counters::add(
            &self.inner.counters.mutation_ops_rejected,
            outcome.rejected() as u64,
        );
        self.inner
            .mutation_log
            .lock()
            .expect("mutation log lock")
            .push(AppliedBatch {
                parent_epoch: previous_epoch,
                epoch,
                ops: batch.len(),
                accepted,
                rejected: outcome.rejected(),
            });

        // Checkpoint triggers: a compaction just produced the flat graph a
        // snapshot wants anyway, and a WAL past its rotation threshold is
        // due for truncation.  Both write off the freshly-swapped
        // snapshot.  Failures are recorded (and surfaced via
        // `durability()`) but do not fail the mutation — it is already
        // durable in the WAL.
        let mut checkpoint_span = None;
        if let Some(persistence) = &self.inner.persistence {
            let mut persistence = persistence.lock().expect("persistence lock");
            if compacted || persistence.wants_rotation() {
                let checkpoint_start_us = elapsed_us();
                let snapshot = self.snapshot();
                if persistence.checkpoint(&snapshot).is_ok() {
                    self.inner.events.emit(
                        EventLevel::Info,
                        "checkpoint",
                        format!("mutation-triggered checkpoint at epoch {epoch}"),
                    );
                }
                checkpoint_span = Some((checkpoint_start_us, elapsed_us()));
            }
        }
        self.inner.events.emit(
            EventLevel::Info,
            "mutation-batch",
            format!(
                "epoch {previous_epoch} -> {epoch}: {accepted} op(s) accepted, {} rejected",
                outcome.rejected()
            ),
        );
        if current_set.shards() > 1 {
            self.inner.events.emit(
                EventLevel::Info,
                "shard-fanout",
                format!(
                    "batch fanned out across {} shards at epoch {epoch}",
                    current_set.shards()
                ),
            );
        }

        // The mutation's own phase trace: the checkpoint and WAL fsync it
        // triggered are attributed to it here rather than showing up only
        // as anonymous durability histograms.  Retained in the same trace
        // ring as query traces, under `engine == "mutation"`.
        let total_us = elapsed_us();
        let mut trace = QueryTrace {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            engine: "mutation".to_string(),
            epoch,
            total_us,
            ..QueryTrace::default()
        };
        trace.push_span("apply", 0, apply_end_us);
        if let Some((start, end)) = wal_span {
            trace.push_span("wal-append", start, end);
            if fsync_us > 0 {
                trace.push_span("wal-fsync", end.saturating_sub(fsync_us), end);
            }
        }
        if current_set.shards() > 1 {
            trace.push_span("shard-fanout", fanout_start_us, fanout_end_us);
        }
        trace.push_span("swap", swap_start_us, swap_end_us);
        if let Some((start, end)) = checkpoint_span {
            trace.push_span("checkpoint", start, end);
        }
        trace.push_span("finish", 0, total_us);
        trace.push_counter("ops", batch.len() as u64);
        trace.push_counter("accepted", accepted as u64);
        trace.push_counter("rejected", outcome.rejected() as u64);
        let trace = Arc::new(trace);
        self.inner.traces.push(Arc::clone(&trace));

        MutationReport {
            epoch,
            previous_epoch,
            swapped: true,
            outcome,
            persist_error: None,
            trace: Some(trace),
        }
    }

    /// [`Service::swap_graph`] with caller-supplied prestige and index (the
    /// online equivalent of [`ServiceBuilder::prestige`] /
    /// [`ServiceBuilder::index`]).  Returns the new serving epoch.
    ///
    /// A wholesale swap bypasses the mutation WAL — there is no batch to
    /// log — so with persistence enabled the swap is made durable by an
    /// immediate checkpoint of the new version.  A checkpoint failure does
    /// not undo the swap (queries are already running on the new graph);
    /// it is recorded and surfaced via [`Service::durability`].
    pub fn swap_snapshot(&self, snapshot: GraphSnapshot) -> u64 {
        // A wholesale swap has no delta to fan out: rebuild the partition
        // from scratch, outside the serving lock.
        let partition = (self.inner.shards > 1)
            .then(|| GraphPartition::build(snapshot.graph(), ShardSpec::new(self.inner.shards)));
        let epoch = self.swap_snapshot_inner(snapshot, partition);
        if let Some(persistence) = &self.inner.persistence {
            let mut persistence = persistence.lock().expect("persistence lock");
            let current = self.snapshot();
            if persistence.checkpoint(&current).is_ok() {
                self.inner.events.emit(
                    EventLevel::Info,
                    "checkpoint",
                    format!("post-swap checkpoint at epoch {epoch}"),
                );
            }
        }
        epoch
    }

    fn swap_snapshot_inner(
        &self,
        mut snapshot: GraphSnapshot,
        partition: Option<GraphPartition>,
    ) -> u64 {
        let old_epoch;
        let new_epoch;
        {
            let mut serving = self.inner.serving.lock().expect("serving lock");
            old_epoch = serving.epoch();
            if snapshot.epoch() == old_epoch {
                snapshot.bump_epoch();
            }
            new_epoch = snapshot.epoch();
            *serving = Arc::new(ShardSet::from_parts(
                snapshot,
                ShardSpec::new(self.inner.shards),
                partition,
            ));
        }
        Counters::bump(&self.inner.counters.swaps);
        self.inner.events.emit(
            EventLevel::Info,
            "swap",
            format!("serving epoch {old_epoch} -> {new_epoch}"),
        );
        if self.inner.cache_private {
            self.inner.cache.evict_epoch(old_epoch);
        }
        new_epoch
    }

    /// Forces a checkpoint now: writes a full snapshot of the currently
    /// served version (graph, prestige, keyword index), truncates the WAL
    /// and prunes snapshots beyond the retention bound.  Returns the
    /// checkpointed epoch, or [`PersistError::Disabled`] when the service
    /// was built without [`ServiceBuilder::persistence`].
    ///
    /// Serialized with [`Service::apply_mutations`] (same admin mutex), so
    /// the written snapshot is never mid-mutation.
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        let _admin = self.inner.mutate.lock().expect("mutate lock");
        let Some(persistence) = &self.inner.persistence else {
            return Err(PersistError::Disabled);
        };
        let snapshot = self.snapshot();
        let epoch = persistence
            .lock()
            .expect("persistence lock")
            .checkpoint(&snapshot)?;
        self.inner.events.emit(
            EventLevel::Info,
            "checkpoint",
            format!("on-demand checkpoint at epoch {epoch}"),
        );
        Ok(epoch)
    }

    /// The service's durability state: whether persistence is on, the last
    /// checkpoint epoch, WAL size, and the most recent persistence error
    /// (if any).  All-zero with `enabled == false` when the service was
    /// built without a data directory.
    pub fn durability(&self) -> DurabilityStatus {
        match &self.inner.persistence {
            Some(persistence) => persistence.lock().expect("persistence lock").status(),
            None => DurabilityStatus::default(),
        }
    }

    /// Declares this service's replication role (default
    /// [`ReplicationRole::Standalone`]).  The role is descriptive state —
    /// it feeds [`ReplicationStatus::role`], the `replication_lag_ms`
    /// series (followers only) and the front-end's mutation-rejection
    /// policy — it does not itself start or stop any replication thread.
    pub fn set_replication_role(&self, role: ReplicationRole) {
        self.inner
            .replication
            .lock()
            .expect("replication lock")
            .set_role(role);
    }

    /// This service's replication role and follower progress, as of now.
    pub fn replication_status(&self) -> ReplicationStatus {
        self.inner
            .replication
            .lock()
            .expect("replication lock")
            .status(unix_ms())
    }

    /// Records a leader head announcement: the leader's newest epoch and
    /// how many WAL records lie beyond this follower's applied position.
    /// The follower's stream client calls this on every head/keepalive
    /// event so [`ReplicationStatus::lag_ms`] measures real staleness
    /// even while no records arrive.
    pub fn note_replication_head(&self, leader_epoch: u64, lag_records: u64) {
        self.inner
            .replication
            .lock()
            .expect("replication lock")
            .note_head(leader_epoch, lag_records, unix_ms());
    }

    /// Applies one leader WAL record on a follower, through the same
    /// WAL-first path as [`Service::apply_mutations`]: the record is
    /// appended to the **local** WAL (with the leader's epochs) before
    /// the successor swaps in, so a follower killed mid-stream recovers
    /// to a prefix of the leader's history on restart.
    ///
    /// The record's epochs are authoritative: the successor serves at
    /// exactly `record.epoch`, which is what makes a shared epoch on
    /// leader and follower name the same graph version byte-for-byte.
    ///
    /// Records at or behind the serving epoch are skipped (a resumed
    /// stream replays the tail; the apply is idempotent).  A record whose
    /// `parent_epoch` does not match the serving epoch returns
    /// [`ReplicationApplyError::EpochGap`] — the follower fell behind the
    /// leader's WAL truncation horizon and must re-bootstrap from a
    /// leader snapshot ([`Service::install_replicated_snapshot`]).
    pub fn apply_replicated(
        &self,
        record: &WalRecord,
    ) -> Result<ReplicatedApply, ReplicationApplyError> {
        /// Same flattening threshold as [`Service::apply_mutations`] —
        /// leader and follower compact on the same schedule.
        const COMPACT_OVERLAY_RATIO: f64 = 0.25;

        let apply_started = Instant::now();
        let _admin = self.inner.mutate.lock().expect("mutate lock");
        let current_set = self.shard_set();
        let current = Arc::clone(current_set.snapshot());
        let serving_epoch = current.epoch();
        if record.epoch <= serving_epoch {
            self.note_applied_locked(serving_epoch);
            return Ok(ReplicatedApply {
                epoch: serving_epoch,
                applied: false,
            });
        }
        if record.parent_epoch != serving_epoch {
            return Err(ReplicationApplyError::EpochGap {
                serving_epoch,
                parent_epoch: record.parent_epoch,
                record_epoch: record.epoch,
            });
        }

        let (mut next, outcome) = current.apply_batch(&record.batch);
        let compacted = next.maybe_compact(COMPACT_OVERLAY_RATIO);
        next.restore_epoch(record.epoch);
        let accepted = outcome.accepted();

        // WAL-first, exactly like the leader: a failed local append
        // applies nothing, so disk and memory stay consistent and the
        // caller can retry the same record.
        if let Some(persistence) = &self.inner.persistence {
            let mut persistence = persistence.lock().expect("persistence lock");
            if let Err(e) = persistence.append(record.parent_epoch, record.epoch, &record.batch) {
                return Err(ReplicationApplyError::Persist(e.to_string()));
            }
        }

        let partition = current_set.successor_partition(&next, &record.batch, &outcome);
        let epoch = self.swap_snapshot_inner(next, partition);
        debug_assert_eq!(epoch, record.epoch, "replicated epoch must be preserved");
        self.inner
            .mutation_apply_hist
            .record(apply_started.elapsed());
        Counters::bump(&self.inner.counters.mutation_batches);
        Counters::add(&self.inner.counters.mutation_ops_accepted, accepted as u64);
        Counters::add(
            &self.inner.counters.mutation_ops_rejected,
            outcome.rejected() as u64,
        );
        self.inner
            .mutation_log
            .lock()
            .expect("mutation log lock")
            .push(AppliedBatch {
                parent_epoch: record.parent_epoch,
                epoch,
                ops: record.batch.len(),
                accepted,
                rejected: outcome.rejected(),
            });

        // Same checkpoint triggers as the leader path: compaction wants a
        // flat snapshot anyway, and a WAL past its rotation threshold is
        // due for truncation.
        if let Some(persistence) = &self.inner.persistence {
            let mut persistence = persistence.lock().expect("persistence lock");
            if compacted || persistence.wants_rotation() {
                let snapshot = self.snapshot();
                if persistence.checkpoint(&snapshot).is_ok() {
                    self.inner.events.emit(
                        EventLevel::Info,
                        "checkpoint",
                        format!("replication-triggered checkpoint at epoch {epoch}"),
                    );
                }
            }
        }
        self.note_applied_locked(epoch);
        Ok(ReplicatedApply {
            epoch,
            applied: true,
        })
    }

    /// Installs a leader snapshot wholesale — the follower bootstrap (and
    /// re-bootstrap) path.  The snapshot's epoch is preserved, the swap is
    /// made durable by an immediate local checkpoint (which also truncates
    /// any stale local WAL), and the replication progress advances to the
    /// installed epoch.  Installing the epoch already being served is a
    /// no-op apart from the progress note.
    pub fn install_replicated_snapshot(&self, snapshot: GraphSnapshot) -> u64 {
        let _admin = self.inner.mutate.lock().expect("mutate lock");
        let epoch = snapshot.epoch();
        if epoch != self.epoch() {
            let partition = (self.inner.shards > 1).then(|| {
                GraphPartition::build(snapshot.graph(), ShardSpec::new(self.inner.shards))
            });
            self.swap_snapshot_inner(snapshot, partition);
        }
        if let Some(persistence) = &self.inner.persistence {
            let mut persistence = persistence.lock().expect("persistence lock");
            // Pre-bootstrap snapshots carry locally-minted epochs that are
            // not ordered against the leader's; newest-epoch retention
            // would keep (or even prefer) them, so wipe before writing the
            // bootstrap checkpoint.
            persistence.clear_snapshots();
            let current = self.snapshot();
            if persistence.checkpoint(&current).is_ok() {
                self.inner.events.emit(
                    EventLevel::Info,
                    "checkpoint",
                    format!("bootstrap checkpoint at epoch {epoch}"),
                );
            }
        }
        self.note_applied_locked(epoch);
        epoch
    }

    /// Updates follower progress after serving-state advanced to `epoch`.
    fn note_applied_locked(&self, epoch: u64) {
        self.inner
            .replication
            .lock()
            .expect("replication lock")
            .note_applied(epoch, unix_ms());
    }

    /// WAL records with `epoch > from_epoch`, in log order — the payload
    /// of the leader's `GET /replication/stream`.  Scanned under the
    /// persistence lock, so the returned prefix is consistent with
    /// concurrent appends.  [`PersistError::Disabled`] when the service
    /// has no data directory (nothing to stream).
    ///
    /// An empty result does **not** distinguish "caught up" from
    /// "truncated past you": compare `from_epoch` against
    /// [`DurabilityStatus::last_checkpoint_epoch`] — a `from_epoch` below
    /// the last checkpoint epoch is behind the truncation horizon and the
    /// follower must re-bootstrap.
    pub fn replication_records_after(
        &self,
        from_epoch: u64,
    ) -> Result<Vec<WalRecord>, PersistError> {
        let Some(persistence) = &self.inner.persistence else {
            return Err(PersistError::Disabled);
        };
        let persistence = persistence.lock().expect("persistence lock");
        let scan = scan_file(&persistence.wal_path())?;
        Ok(scan
            .records
            .into_iter()
            .filter(|r| r.epoch > from_epoch)
            .collect())
    }

    /// Epoch and path of the newest on-disk snapshot — what
    /// `GET /replication/snapshot` streams to a bootstrapping follower.
    /// `Ok(None)` when no snapshot exists yet;
    /// [`PersistError::Disabled`] without persistence.
    pub fn newest_snapshot_file(&self) -> Result<Option<(u64, PathBuf)>, PersistError> {
        let Some(persistence) = &self.inner.persistence else {
            return Err(PersistError::Disabled);
        };
        let persistence = persistence.lock().expect("persistence lock");
        Ok(list_snapshots(persistence.dir())?.into_iter().next())
    }

    /// Replaces the full SLO spec set at runtime (the online equivalent of
    /// [`ServiceBuilder::slos`]).  All burn-rate states reset to `Ok`; the
    /// next collector tick judges the new set.
    pub fn replace_slos(&self, specs: Vec<SloSpec>) {
        self.inner.slo.replace_specs(specs);
    }

    /// Adds one SLO spec, replacing any existing spec of the same name
    /// (the `POST /admin/slo` path).  Other specs keep their burn-rate
    /// history.
    pub fn upsert_slo(&self, spec: SloSpec) {
        self.inner.slo.upsert_spec(spec);
    }

    /// The currently configured SLO specs.
    pub fn slo_specs(&self) -> Vec<SloSpec> {
        self.inner.slo.specs()
    }

    /// A point-in-time snapshot of the aggregate counters, queue-wait
    /// percentiles, per-tenant scheduling outcomes, durability state and
    /// mutation-log occupancy.
    pub fn metrics(&self) -> ServiceMetrics {
        let queued = self.inner.queue.lock().expect("queue lock").jobs.len();
        let epoch = self.epoch();
        let mut metrics = {
            let waits = self.inner.waits.lock().expect("waits lock");
            ServiceMetrics::snapshot(
                &self.inner.counters,
                &waits,
                queued,
                epoch,
                self.inner.quota_settings.as_ref(),
            )
        };
        {
            let log = self.inner.mutation_log.lock().expect("mutation log lock");
            metrics.mutation_log_entries = log.len() as u64;
            metrics.mutation_log_dropped = log.dropped();
        }
        let durability = self.durability();
        metrics.persistence_enabled = durability.enabled;
        metrics.last_checkpoint_epoch = durability.last_checkpoint_epoch;
        metrics.wal_records = durability.wal_records;
        metrics.wal_bytes = durability.wal_bytes;
        metrics.checkpoints = durability.checkpoints;
        metrics.checkpoint_latency = durability.checkpoint_latency;
        metrics.wal_fsync = durability.wal_fsync;
        metrics.ttfa = self.inner.ttfa_hist.summary();
        metrics.mutation_apply = self.inner.mutation_apply_hist.summary();
        metrics.calibration = self.inner.calibration.rows();
        metrics.shards = self.inner.shards as u64;
        metrics.shard_stats = self.shard_stats();
        {
            let report = self.inner.slo_report.lock().expect("slo report lock");
            metrics.health = report.health;
            metrics.slo = report.rows.clone();
        }
        metrics.trace_ring_dropped = self.inner.traces.dropped();
        metrics.event_log_dropped = self.inner.events.dropped();
        metrics.event_log_last_id = self.inner.events.last_id();
        metrics.queue_saturation = queued as f64 / self.inner.queue_capacity.max(1) as f64;
        metrics.replication = self.replication_status();
        metrics
    }

    /// The service's current three-state health — the worst SLO verdict of
    /// the latest collector pass (`ok` until the first pass completes).
    pub fn health(&self) -> Health {
        self.inner
            .slo_report
            .lock()
            .expect("slo report lock")
            .health
    }

    /// The latest SLO evaluation: overall health plus one row per spec
    /// (latest value, fast/slow burn rates, hysteretic state).  Point in
    /// time as of the last collector tick.
    pub fn slo_report(&self) -> SloReport {
        self.inner
            .slo_report
            .lock()
            .expect("slo report lock")
            .clone()
    }

    /// The structured operational event log (see
    /// [`banks_obs::EventLog`]) — page it with
    /// [`EventLog::since`](banks_obs::EventLog::since).
    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    /// The retained metric time series the collector thread writes
    /// ([`ServiceBuilder::collector_cadence`] sets the tick).
    pub fn time_series(&self) -> &TimeSeriesRing {
        &self.inner.series
    }

    /// The configured collector cadence.
    pub fn collector_cadence(&self) -> Duration {
        self.inner.collector_cadence
    }

    /// The retained phase trace for query `id`, if it is still in the
    /// bounded trace ring (explicitly traced and slow queries are
    /// retained; capacity 256, oldest evicted first).
    pub fn trace(&self, id: QueryId) -> Option<Arc<QueryTrace>> {
        self.inner.traces.get(id.0)
    }

    /// The most recently retained **slow** query traces (end-to-end
    /// latency over [`ServiceBuilder::slow_query_threshold`]), newest
    /// first, capped at `limit`.
    pub fn slow_traces(&self, limit: usize) -> Vec<Arc<QueryTrace>> {
        self.inner.traces.recent(limit, true)
    }

    /// The most recently retained traces of any kind (explicitly traced
    /// and slow), newest first, capped at `limit`.
    pub fn recent_traces(&self, limit: usize) -> Vec<Arc<QueryTrace>> {
        self.inner.traces.recent(limit, false)
    }

    /// The configured slow-query threshold.
    pub fn slow_query_threshold(&self) -> Duration {
        self.inner.slow_threshold
    }

    /// The shared result cache (hit/miss counters included).
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.inner.cache
    }

    /// The snapshot currently being served: new submissions are pinned to
    /// it.  The returned `Arc` stays valid across swaps (it simply stops
    /// being current).
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        Arc::clone(self.inner.serving.lock().expect("serving lock").snapshot())
    }

    /// The shard set currently being served — the union snapshot plus its
    /// `K`-way partition.  Like [`Service::snapshot`], the returned `Arc`
    /// stays valid across swaps.
    pub fn shard_set(&self) -> Arc<ShardSet> {
        Arc::clone(&self.inner.serving.lock().expect("serving lock"))
    }

    /// Configured shard count (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.inner.shards
    }

    /// Per-shard partition statistics of the currently-served version;
    /// empty when the service is unsharded.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shard_set().stats()
    }

    /// The epoch of the graph currently being served (the cache-key
    /// component).
    pub fn epoch(&self) -> u64 {
        self.inner.serving.lock().expect("serving lock").epoch()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Engine names this service can run.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.inner.registry.names()
    }

    /// Blocks until the service is *quiescent*: the admission queue is
    /// empty and no worker is mid-query.  The drain hook for graceful
    /// shutdown of a front-end — stop accepting requests, `drain()`, then
    /// drop the service.
    ///
    /// Quiescence is a point-in-time property: a query submitted after
    /// `drain` returns starts the clock again.  A query whose handle is
    /// blocked on a slow consumer still counts as executing until the
    /// worker finishes it.
    pub fn drain(&self) {
        let mut queue = self.inner.queue.lock().expect("queue lock");
        while !queue.jobs.is_empty() || queue.executing > 0 {
            queue = self.inner.idle.wait(queue).expect("queue lock");
        }
    }

    /// Stops accepting new queries, drains the admission queue and joins
    /// the workers.  Equivalent to dropping the service, but explicit.
    pub fn shutdown(self) {}

    fn begin_shutdown(&mut self) {
        {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        {
            let (flag, signal) = &*self.collector_stop;
            *flag.lock().expect("collector stop lock") = true;
            signal.notify_all();
        }
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

/// Decrements [`QueueState::executing`] when dropped — including on an
/// unwind out of `execute` — so a panicking engine cannot leave the count
/// permanently raised and wedge [`Service::drain`] forever.
struct ExecutingGuard<'a> {
    inner: &'a Inner,
}

impl Drop for ExecutingGuard<'_> {
    fn drop(&mut self) {
        let mut queue = self.inner.queue.lock().expect("queue lock");
        queue.executing -= 1;
        if queue.executing == 0 && queue.jobs.is_empty() {
            self.inner.idle.notify_all();
        }
    }
}

/// Worker thread body: pop jobs (priority order) until shutdown, then drain
/// and exit.
fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop() {
                    queue.executing += 1;
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = inner.work_available.wait(queue).expect("queue lock");
            }
        };
        let guard = ExecutingGuard { inner: &inner };
        let queue_wait = job.submitted_at.elapsed();
        inner
            .waits
            .lock()
            .expect("waits lock")
            .record(&job.tenant, queue_wait);
        execute(&inner, job, queue_wait);
        drop(guard);
    }
}

/// Runs one query to completion (or cancellation) on the calling worker,
/// against the snapshot the job was pinned to at admission.
fn execute(inner: &Inner, job: Job, queue_wait: std::time::Duration) {
    Counters::bump(&inner.counters.executed);
    let pickup_us = job.trace.elapsed_us();
    let snapshot = &job.snapshot;
    // Per-shard busy-time accumulators, attached only when the set is
    // actually sharded — the K = 1 path allocates and samples nothing.
    let shard_times = (job.shards > 1).then(|| ShardTimes::new(job.shards));
    let mut ctx = QueryContext::new(
        snapshot.graph(),
        snapshot.prestige(),
        &job.matches,
        job.spec_params,
    )
    .with_cancel(&job.token)
    .with_shards(job.shards);
    if let Some(times) = &shard_times {
        ctx = ctx.with_shard_times(times);
    }
    if let Some(counters) = job.trace.counters.as_deref() {
        ctx = ctx.with_observer(counters);
    }
    let engine = inner
        .registry
        .create(&job.engine)
        .expect("engine validated at submit time");
    let mut stream = engine.start(ctx);

    let mut answers = Vec::new();
    let mut first_answer = None;
    let mut receiver_gone = false;
    #[allow(clippy::while_let_on_iterator)] // stats() borrows between polls
    while let Some(answer) = stream.next() {
        first_answer.get_or_insert_with(|| job.submitted_at.elapsed());
        job.state.publish(stream.stats());
        if !receiver_gone {
            if job.events.send(QueryEvent::Answer(answer.clone())).is_err() {
                // The handle is gone: nobody will read further answers.
                // Cancel cooperatively so the engine stops within one step.
                receiver_gone = true;
                job.token.cancel();
            } else {
                Counters::bump(&inner.counters.answers_delivered);
            }
        }
        answers.push(answer);
    }
    let expand_end_us = job.trace.elapsed_us();

    let stats = stream.stats();
    job.state.publish(stats.clone());
    Counters::bump(&inner.counters.completed);
    if stats.cancelled {
        Counters::bump(&inner.counters.cancelled);
    }
    if stats.truncated {
        Counters::bump(&inner.counters.truncated);
    }
    Counters::add(&inner.counters.nodes_explored, stats.nodes_explored as u64);
    if let Some(ttfa) = first_answer {
        inner.ttfa_hist.record(ttfa);
    }
    // Calibration feedback: a completed (even truncated) run measures what
    // the estimate predicted; a cancelled one measures only where the
    // abort happened to land, so it is not a sample.
    if !stats.cancelled {
        inner.calibration.record(
            &job.engine,
            job.cost.origin_nodes as usize,
            job.cost.estimated_work,
            stats.nodes_explored as u64,
        );
        // Watchdog: a query that blew far past its a priori work estimate
        // is either a bad estimate or a pathological input — flag it.
        let measured = stats.nodes_explored as u64;
        if job.cost.estimated_work > 0
            && measured
                >= inner
                    .watchdog_factor
                    .saturating_mul(job.cost.estimated_work)
        {
            Counters::bump(&inner.counters.watchdog_overruns);
            inner.events.emit(
                EventLevel::Warn,
                "watchdog-overrun",
                format!(
                    "query {} explored {} nodes, >= {}x its estimate of {}",
                    job.id.0, measured, inner.watchdog_factor, job.cost.estimated_work
                ),
            );
        }
    }

    // Only completed searches are cached: a cancelled run's answer set is
    // whatever happened to be emitted before the abort, not a reproducible
    // result.  (Work-budget truncation, by contrast, is deterministic and
    // safe to cache.)  The key carries the job's pinned epoch, so a result
    // computed on a superseded snapshot can never serve post-swap queries —
    // and in a *private* cache such an entry could never be hit at all
    // (swap already evicted its epoch; all future lookups use newer ones),
    // so storing it would only waste a slot: skip it.  The epoch check and
    // the insert happen under the serving lock so a concurrent swap cannot
    // slip between them and evict before we insert; `swap_snapshot` takes
    // the same lock first and evicts after releasing it, so the lock order
    // (serving → cache) is acyclic.  Shared caches always take the insert —
    // another service may be serving that epoch.
    if !stats.cancelled {
        let serving = inner.serving.lock().expect("serving lock");
        if !inner.cache_private || job.cache_key.epoch == serving.epoch() {
            inner.cache.insert(
                job.cache_key.clone(),
                Arc::new(SearchOutcome {
                    answers,
                    stats: stats.clone(),
                }),
            );
        }
    }
    let total_us = job.trace.elapsed_us();
    let slow = Duration::from_micros(total_us) >= inner.slow_threshold;
    let retained = (job.trace.requested.is_some() || slow).then(|| {
        Arc::new(build_trace(
            &job.trace,
            job.id,
            &job.engine,
            &job.tenant,
            job.cache_key.epoch,
            false,
            slow,
            total_us,
            Some(pickup_us),
            Some(expand_end_us),
            first_answer,
            &stats,
            shard_times.as_ref(),
        ))
    });
    if let Some(trace) = &retained {
        if slow {
            Counters::bump(&inner.counters.slow_queries);
        }
        inner.traces.push(Arc::clone(trace));
    }
    let _ = job.events.send(QueryEvent::Finished(QueryResult {
        stats,
        cache_hit: false,
        time_to_first_answer: first_answer,
        queue_wait,
        epoch: job.cache_key.epoch,
        trace: job.trace.requested.is_some().then_some(retained).flatten(),
    }));
}

/// Cross-tick state the collector carries: previous cumulative counter and
/// histogram-bucket values (differenced into per-tick rates and windowed
/// percentiles) plus the queue-saturation hysteresis flag.
struct CollectorState {
    prev_submitted: u64,
    prev_rejected: u64,
    prev_quota_rejected: u64,
    prev_ttfa: [u64; HISTOGRAM_BUCKETS],
    prev_wait: [u64; HISTOGRAM_BUCKETS],
    saturated: bool,
}

impl Default for CollectorState {
    fn default() -> Self {
        CollectorState {
            prev_submitted: 0,
            prev_rejected: 0,
            prev_quota_rejected: 0,
            prev_ttfa: [0; HISTOGRAM_BUCKETS],
            prev_wait: [0; HISTOGRAM_BUCKETS],
            saturated: false,
        }
    }
}

/// Collector thread body: on every cadence tick, snapshot the service's
/// counters, gauges and windowed latency percentiles into the time-series
/// ring, run the SLO burn-rate evaluation over it, publish the report, and
/// emit alert-fire / alert-resolve / queue-saturation events.  Exits when
/// the stop flag is raised (signalled through the paired condvar).
fn collector_loop(inner: Arc<Inner>, stop: Arc<(Mutex<bool>, Condvar)>, cadence: Duration) {
    let (flag, signal) = &*stop;
    let mut state = CollectorState::default();
    // First tick up front: the report and the ring are populated right
    // after boot instead of one full cadence in (which, at the production
    // default of 10 s, would leave /debug/slo empty against every early
    // probe).
    collector_tick(&inner, &mut state, unix_ms());
    loop {
        {
            let stopped = flag.lock().expect("collector stop lock");
            let (stopped, _) = signal
                .wait_timeout(stopped, cadence)
                .expect("collector stop lock");
            if *stopped {
                return;
            }
        }
        collector_tick(&inner, &mut state, unix_ms());
    }
}

/// One collector pass at `now_ms`: record a tick and judge the SLOs.
/// Split from [`collector_loop`] so the pass itself has no sleeping and a
/// deterministic time base.
fn collector_tick(inner: &Inner, state: &mut CollectorState, now_ms: u64) {
    let c = &inner.counters;
    let submitted = c.submitted.load(Ordering::Relaxed);
    let rejected = c.rejected.load(Ordering::Relaxed);
    let quota_rejected = c.quota_rejected.load(Ordering::Relaxed);

    // Per-tick error ratio: this tick's rejections over this tick's
    // submission attempts (accepted + rejected), NaN when there were none —
    // a cumulative ratio would never recover from a burst of rejects.
    let d_accepted = submitted.saturating_sub(state.prev_submitted);
    let d_rejected = rejected.saturating_sub(state.prev_rejected)
        + quota_rejected.saturating_sub(state.prev_quota_rejected);
    let attempts = d_accepted + d_rejected;
    let error_ratio = if attempts == 0 {
        f64::NAN
    } else {
        d_rejected as f64 / attempts as f64
    };

    // Windowed percentiles from histogram-bucket deltas: the latency of
    // *this tick's* samples only, NaN on idle ticks.  Unlike the cumulative
    // summaries, these decay once a regression ends — which is what lets a
    // fired SLO alert resolve.
    let ttfa_now = inner.ttfa_hist.bucket_counts();
    let ttfa_delta: [u64; HISTOGRAM_BUCKETS] =
        std::array::from_fn(|i| ttfa_now[i].saturating_sub(state.prev_ttfa[i]));
    let wait_now = inner.waits.lock().expect("waits lock").bucket_counts();
    let wait_delta: [u64; HISTOGRAM_BUCKETS] =
        std::array::from_fn(|i| wait_now[i].saturating_sub(state.prev_wait[i]));
    let pct = |delta: &[u64; HISTOGRAM_BUCKETS], p: f64| -> f64 {
        Histogram::percentile_of(delta, p)
            .map(|d| d.as_micros().min(u64::MAX as u128) as f64)
            .unwrap_or(f64::NAN)
    };

    let queued = inner.queue.lock().expect("queue lock").jobs.len();
    let saturation = queued as f64 / inner.queue_capacity.max(1) as f64;

    // Replication lag is a follower-only signal: standalone services and
    // leaders record NaN (no sample) so a `replication_lag` SLO judges
    // only actual followers.
    let replication_lag_ms = {
        let replication = inner.replication.lock().expect("replication lock");
        if replication.role() == ReplicationRole::Follower {
            replication.status(now_ms).lag_ms as f64
        } else {
            f64::NAN
        }
    };

    let shard_stats = inner.serving.lock().expect("serving lock").clone().stats();
    let imbalance = if shard_stats.len() <= 1 {
        1.0
    } else {
        let max = shard_stats.iter().map(|s| s.owned_nodes).max().unwrap_or(0) as f64;
        let mean = shard_stats.iter().map(|s| s.owned_nodes).sum::<usize>() as f64
            / shard_stats.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    };

    // Values in timeseries_schema() order.
    inner.series.record(
        now_ms,
        &[
            submitted as f64,
            c.executed.load(Ordering::Relaxed) as f64,
            c.completed.load(Ordering::Relaxed) as f64,
            rejected as f64,
            quota_rejected as f64,
            c.cancelled.load(Ordering::Relaxed) as f64,
            c.cache_hits.load(Ordering::Relaxed) as f64,
            c.answers_delivered.load(Ordering::Relaxed) as f64,
            c.slow_queries.load(Ordering::Relaxed) as f64,
            queued as f64,
            error_ratio,
            pct(&ttfa_delta, 0.50),
            pct(&ttfa_delta, 0.90),
            pct(&ttfa_delta, 0.99),
            pct(&wait_delta, 0.50),
            pct(&wait_delta, 0.90),
            imbalance,
            saturation,
            replication_lag_ms,
        ],
    );

    let (report, transitions) = inner.slo.evaluate(&inner.series, now_ms);
    for t in &transitions {
        if t.to == Health::Ok {
            inner.events.emit(
                EventLevel::Info,
                "alert-resolve",
                format!("slo {} recovered ({} -> ok)", t.slo, t.from.as_str()),
            );
        } else {
            inner.events.emit(
                EventLevel::Warn,
                "alert-fire",
                format!(
                    "slo {} is {} ({} -> {})",
                    t.slo,
                    t.to.as_str(),
                    t.from.as_str(),
                    t.to.as_str()
                ),
            );
        }
    }
    *inner.slo_report.lock().expect("slo report lock") = report;

    // Queue-saturation watchdog with hysteresis: trip crossing 80%
    // occupancy, clear only once it falls back under 50%.
    if !state.saturated && saturation >= QUEUE_SATURATION_TRIP {
        state.saturated = true;
        Counters::bump(&c.watchdog_queue_trips);
        inner.events.emit(
            EventLevel::Warn,
            "watchdog-queue",
            format!(
                "admission queue saturated: {queued}/{} slots occupied",
                inner.queue_capacity
            ),
        );
    } else if state.saturated && saturation < QUEUE_SATURATION_CLEAR {
        state.saturated = false;
        inner.events.emit(
            EventLevel::Info,
            "watchdog-queue",
            format!(
                "admission queue drained back under {}%",
                (QUEUE_SATURATION_CLEAR * 100.0) as u64
            ),
        );
    }

    state.prev_submitted = submitted;
    state.prev_rejected = rejected;
    state.prev_quota_rejected = quota_rejected;
    state.prev_ttfa = ttfa_now;
    state.prev_wait = wait_now;
}
