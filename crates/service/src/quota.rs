//! Per-tenant token-bucket admission quotas.
//!
//! The scheduler's fair share (PR 3) prevents *starvation* — every tenant
//! eventually runs — but not *overload*: a tenant free to submit without
//! bound still fills the admission queue and inflates everyone's queue
//! wait.  The quota layer sits in front of the scheduler and answers a
//! different question: "may this tenant submit at all right now?".
//!
//! The mechanism is the classic token bucket.  Each tenant owns a bucket of
//! capacity `burst` refilled continuously at `rate_per_sec`; every
//! submission (cache hit or miss — the quota governs *request admission*,
//! not engine work) takes one token.  An empty bucket rejects with
//! [`crate::SubmitError::QuotaExceeded`], which carries the time until the
//! next token — the HTTP front-end turns that into a `429` with a
//! `Retry-After` header.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cap on distinct tenant buckets, so high-cardinality tenant names cannot
/// grow the map for the service's lifetime.  A bucket refilled back to full
/// capacity is indistinguishable from a fresh one, so full buckets are
/// pruned when the cap is reached; if every bucket is mid-drain, the least
/// recently used one is evicted instead (its tenant restarts with a full
/// bucket, which only errs in the tenant's favour).
const MAX_BUCKETS: usize = 4096;

/// Quota configuration shared by every tenant bucket.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QuotaConfig {
    /// Tokens refilled per second (floor: one token per day, so the
    /// retry-after arithmetic stays finite).
    pub rate_per_sec: f64,
    /// Bucket capacity: the burst a previously-idle tenant may submit
    /// before the rate limit bites (at least 1).
    pub burst: u64,
}

impl QuotaConfig {
    pub(crate) fn new(rate_per_sec: f64, burst: u64) -> Self {
        QuotaConfig {
            rate_per_sec: rate_per_sec.max(1.0 / 86_400.0),
            burst: burst.max(1),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn refill(&mut self, cfg: &QuotaConfig, now: Instant) {
        let dt = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.tokens = (self.tokens + dt * cfg.rate_per_sec).min(cfg.burst as f64);
        self.last_refill = now;
    }
}

/// All tenant buckets plus the shared configuration.
#[derive(Debug)]
pub(crate) struct QuotaState {
    cfg: QuotaConfig,
    buckets: HashMap<String, Bucket>,
}

impl QuotaState {
    pub(crate) fn new(cfg: QuotaConfig) -> Self {
        QuotaState {
            cfg,
            buckets: HashMap::new(),
        }
    }

    /// Takes one token from `tenant`'s bucket at time `now`.  On an empty
    /// bucket, returns the duration until the next token becomes available.
    pub(crate) fn try_take(&mut self, tenant: &str, now: Instant) -> Result<(), Duration> {
        if !self.buckets.contains_key(tenant) {
            if self.buckets.len() >= MAX_BUCKETS {
                self.make_room(now);
            }
            self.buckets.insert(
                tenant.to_string(),
                Bucket {
                    tokens: self.cfg.burst as f64,
                    last_refill: now,
                },
            );
        }
        let cfg = self.cfg;
        let bucket = self.buckets.get_mut(tenant).expect("bucket just ensured");
        bucket.refill(&cfg, now);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(Duration::from_secs_f64(deficit / cfg.rate_per_sec))
        }
    }

    /// Evicts buckets to keep the map bounded: every full (hence
    /// memory-free) bucket goes; if that frees nothing, the least recently
    /// refilled **quarter** of the map goes in one pass.  Batch eviction
    /// amortizes the scan — a client rotating fresh tenant names pays one
    /// O(n log n) sweep per ~1k new tenants, not an O(n) scan per request,
    /// and eviction only ever errs in a tenant's favour (it restarts with
    /// a full bucket).
    fn make_room(&mut self, now: Instant) {
        let cfg = self.cfg;
        self.buckets.retain(|_, b| {
            b.refill(&cfg, now);
            b.tokens < cfg.burst as f64
        });
        if self.buckets.len() >= MAX_BUCKETS {
            let mut by_age: Vec<(Instant, String)> = self
                .buckets
                .iter()
                .map(|(k, b)| (b.last_refill, k.clone()))
                .collect();
            by_age.sort_unstable_by_key(|(t, _)| *t);
            for (_, key) in by_age.into_iter().take(MAX_BUCKETS / 4) {
                self.buckets.remove(&key);
            }
        }
    }

    #[cfg(test)]
    fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(rate: f64, burst: u64) -> QuotaState {
        QuotaState::new(QuotaConfig::new(rate, burst))
    }

    #[test]
    fn burst_then_reject() {
        let mut q = state(1.0, 3);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(q.try_take("a", t0).is_ok());
        }
        let retry = q.try_take("a", t0).expect_err("bucket must be empty");
        // one token at 1/s: the next token is ~1s away
        assert!(retry > Duration::from_millis(900) && retry <= Duration::from_secs(1));
    }

    #[test]
    fn refill_restores_tokens() {
        let mut q = state(2.0, 2);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0).is_ok());
        assert!(q.try_take("a", t0).is_ok());
        assert!(q.try_take("a", t0).is_err());
        // 2 tokens/s: after 600ms, one token is back
        let t1 = t0 + Duration::from_millis(600);
        assert!(q.try_take("a", t1).is_ok());
        assert!(q.try_take("a", t1).is_err());
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut q = state(1000.0, 2);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0).is_ok());
        // a long idle period refills to burst, not beyond
        let t1 = t0 + Duration::from_secs(60);
        assert!(q.try_take("a", t1).is_ok());
        assert!(q.try_take("a", t1).is_ok());
        assert!(q.try_take("a", t1).is_err());
    }

    #[test]
    fn tenants_are_isolated() {
        let mut q = state(0.01, 1);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0).is_ok());
        assert!(q.try_take("a", t0).is_err(), "tenant a exhausted");
        assert!(q.try_take("b", t0).is_ok(), "tenant b unaffected");
    }

    #[test]
    fn zero_rate_is_clamped_finite() {
        let mut q = state(0.0, 1);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0).is_ok());
        let retry = q.try_take("a", t0).expect_err("empty");
        // clamped to one token per day: finite, under a day and a half
        assert!(retry <= Duration::from_secs(86_400 + 43_200));
    }

    #[test]
    fn bucket_map_is_bounded() {
        let mut q = state(1000.0, 5);
        let t0 = Instant::now();
        // Far more tenants than the cap, each touched once: full buckets are
        // pruned, so the map stays bounded.
        for i in 0..(MAX_BUCKETS * 2) {
            assert!(q.try_take(&format!("t{i}"), t0).is_ok());
        }
        assert!(q.bucket_count() <= MAX_BUCKETS + 1);
        // Pruning a nearly-full bucket only ever errs in the tenant's
        // favour: admission still succeeds.
        assert!(q.try_take("t0", t0 + Duration::from_secs(1)).is_ok());
    }
}
