//! Per-tenant token-bucket admission quotas.
//!
//! The scheduler's fair share (PR 3) prevents *starvation* — every tenant
//! eventually runs — but not *overload*: a tenant free to submit without
//! bound still fills the admission queue and inflates everyone's queue
//! wait.  The quota layer sits in front of the scheduler and answers a
//! different question: "may this tenant submit at all right now?".
//!
//! The mechanism is the classic token bucket.  Each tenant owns a bucket of
//! capacity `burst` refilled continuously at `rate_per_sec`; a submission
//! takes one token by default, or a cost-weighted charge when
//! [`crate::ServiceBuilder::quota_work_per_token`] is set (expensive
//! queries drain the bucket faster than cheap ones).  An empty bucket
//! rejects with [`crate::SubmitError::QuotaExceeded`], which carries the
//! time until the charge becomes affordable — the HTTP front-end turns
//! that into a `429` with a `Retry-After` header.
//!
//! Configuration is two-level: [`crate::ServiceBuilder::tenant_quota`]
//! sets the shared default, and
//! [`crate::ServiceBuilder::tenant_quota_for`] overrides rate/burst for a
//! named tenant (paid tiers, internal dashboards).  Tenants with neither
//! an override nor a default are unlimited.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cap on distinct tenant buckets, so high-cardinality tenant names cannot
/// grow the map for the service's lifetime.  A bucket refilled back to full
/// capacity is indistinguishable from a fresh one, so full buckets are
/// pruned when the cap is reached; if every bucket is mid-drain, the least
/// recently used quarter is evicted instead (those tenants restart with a
/// full bucket, which only errs in the tenant's favour).
const MAX_BUCKETS: usize = 4096;

/// Rate/burst pair for one bucket.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct QuotaConfig {
    /// Tokens refilled per second (floor: one token per day, so the
    /// retry-after arithmetic stays finite).
    pub rate_per_sec: f64,
    /// Bucket capacity: the burst a previously-idle tenant may submit
    /// before the rate limit bites (at least 1).
    pub burst: u64,
}

impl QuotaConfig {
    pub(crate) fn new(rate_per_sec: f64, burst: u64) -> Self {
        QuotaConfig {
            rate_per_sec: rate_per_sec.max(1.0 / 86_400.0),
            burst: burst.max(1),
        }
    }
}

/// The full quota configuration: an optional shared default, per-tenant
/// overrides, and the optional cost-weighting scale.
#[derive(Clone, Debug, Default)]
pub(crate) struct QuotaSettings {
    /// The rate every tenant without an override gets (`None`: such
    /// tenants are unlimited).
    pub default: Option<QuotaConfig>,
    /// Named tenants with their own configured rates.
    pub overrides: HashMap<String, QuotaConfig>,
    /// When set, a submission is charged
    /// `max(1, estimated_work / work_per_token)` tokens instead of 1.
    pub work_per_token: Option<u64>,
}

impl QuotaSettings {
    /// Whether any quota is configured at all.
    pub(crate) fn enabled(&self) -> bool {
        self.default.is_some() || !self.overrides.is_empty()
    }

    /// The configuration governing `tenant`, if any.
    pub(crate) fn config_for(&self, tenant: &str) -> Option<QuotaConfig> {
        self.overrides.get(tenant).copied().or(self.default)
    }

    /// The token charge for a submission with the given a priori work
    /// estimate (1 when cost weighting is off).
    pub(crate) fn charge_for(&self, estimated_work: u64) -> f64 {
        match self.work_per_token {
            Some(scale) => (estimated_work / scale.max(1)).max(1) as f64,
            None => 1.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn refill(&mut self, cfg: &QuotaConfig, now: Instant) {
        let dt = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.tokens = (self.tokens + dt * cfg.rate_per_sec).min(cfg.burst as f64);
        self.last_refill = now;
    }
}

/// All tenant buckets plus the shared configuration.
#[derive(Debug)]
pub(crate) struct QuotaState {
    settings: QuotaSettings,
    buckets: HashMap<String, Bucket>,
}

impl QuotaState {
    pub(crate) fn new(settings: QuotaSettings) -> Self {
        QuotaState {
            settings,
            buckets: HashMap::new(),
        }
    }

    /// Takes `tokens` from `tenant`'s bucket at time `now`.  A charge
    /// larger than the bucket's burst is clamped to the burst (the query
    /// costs the whole bucket; it is not permanently unaffordable).  On an
    /// underfunded bucket, returns the duration until the charge becomes
    /// affordable.  Tenants with no governing config are always admitted.
    pub(crate) fn try_take(
        &mut self,
        tenant: &str,
        now: Instant,
        tokens: f64,
    ) -> Result<(), Duration> {
        let Some(cfg) = self.settings.config_for(tenant) else {
            return Ok(());
        };
        let charge = tokens.min(cfg.burst as f64).max(1.0);
        self.take_from_bucket(tenant, cfg, now, charge)
    }

    /// Takes the *remainder* of a cost-weighted charge whose one-token
    /// floor was already taken up front: `max(0, min(total, burst) − 1)`
    /// tokens.  The split lets the admission path reject an over-quota
    /// tenant before doing any resolution work, while a query estimated
    /// above the burst still costs exactly the full bucket (floor
    /// included) instead of becoming forever unaffordable.
    pub(crate) fn try_take_remainder(
        &mut self,
        tenant: &str,
        now: Instant,
        total: f64,
    ) -> Result<(), Duration> {
        let Some(cfg) = self.settings.config_for(tenant) else {
            return Ok(());
        };
        let charge = (total.min(cfg.burst as f64) - 1.0).max(0.0);
        if charge == 0.0 {
            return Ok(());
        }
        self.take_from_bucket(tenant, cfg, now, charge)
    }

    fn take_from_bucket(
        &mut self,
        tenant: &str,
        cfg: QuotaConfig,
        now: Instant,
        charge: f64,
    ) -> Result<(), Duration> {
        if !self.buckets.contains_key(tenant) {
            if self.buckets.len() >= MAX_BUCKETS {
                self.make_room(now);
            }
            self.buckets.insert(
                tenant.to_string(),
                Bucket {
                    tokens: cfg.burst as f64,
                    last_refill: now,
                },
            );
        }
        let bucket = self.buckets.get_mut(tenant).expect("bucket just ensured");
        bucket.refill(&cfg, now);
        if bucket.tokens >= charge {
            bucket.tokens -= charge;
            Ok(())
        } else {
            let deficit = charge - bucket.tokens;
            Err(Duration::from_secs_f64(deficit / cfg.rate_per_sec))
        }
    }

    /// Evicts buckets to keep the map bounded: every full (hence
    /// memory-free) bucket goes; if that frees nothing, the least recently
    /// refilled **quarter** of the map goes in one pass.  Batch eviction
    /// amortizes the scan — a client rotating fresh tenant names pays one
    /// O(n log n) sweep per ~1k new tenants, not an O(n) scan per request,
    /// and eviction only ever errs in a tenant's favour (it restarts with
    /// a full bucket).
    fn make_room(&mut self, now: Instant) {
        let settings = self.settings.clone();
        self.buckets.retain(|tenant, b| {
            let cfg = settings
                .config_for(tenant)
                .expect("buckets only exist for governed tenants");
            b.refill(&cfg, now);
            b.tokens < cfg.burst as f64
        });
        if self.buckets.len() >= MAX_BUCKETS {
            let mut by_age: Vec<(Instant, String)> = self
                .buckets
                .iter()
                .map(|(k, b)| (b.last_refill, k.clone()))
                .collect();
            by_age.sort_unstable_by_key(|(t, _)| *t);
            for (_, key) in by_age.into_iter().take(MAX_BUCKETS / 4) {
                self.buckets.remove(&key);
            }
        }
    }

    #[cfg(test)]
    fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings(rate: f64, burst: u64) -> QuotaSettings {
        QuotaSettings {
            default: Some(QuotaConfig::new(rate, burst)),
            overrides: HashMap::new(),
            work_per_token: None,
        }
    }

    fn state(rate: f64, burst: u64) -> QuotaState {
        QuotaState::new(settings(rate, burst))
    }

    #[test]
    fn burst_then_reject() {
        let mut q = state(1.0, 3);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(q.try_take("a", t0, 1.0).is_ok());
        }
        let retry = q.try_take("a", t0, 1.0).expect_err("bucket must be empty");
        // one token at 1/s: the next token is ~1s away
        assert!(retry > Duration::from_millis(900) && retry <= Duration::from_secs(1));
    }

    #[test]
    fn refill_restores_tokens() {
        let mut q = state(2.0, 2);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0, 1.0).is_ok());
        assert!(q.try_take("a", t0, 1.0).is_ok());
        assert!(q.try_take("a", t0, 1.0).is_err());
        // 2 tokens/s: after 600ms, one token is back
        let t1 = t0 + Duration::from_millis(600);
        assert!(q.try_take("a", t1, 1.0).is_ok());
        assert!(q.try_take("a", t1, 1.0).is_err());
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut q = state(1000.0, 2);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0, 1.0).is_ok());
        // a long idle period refills to burst, not beyond
        let t1 = t0 + Duration::from_secs(60);
        assert!(q.try_take("a", t1, 1.0).is_ok());
        assert!(q.try_take("a", t1, 1.0).is_ok());
        assert!(q.try_take("a", t1, 1.0).is_err());
    }

    #[test]
    fn tenants_are_isolated() {
        let mut q = state(0.01, 1);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0, 1.0).is_ok());
        assert!(q.try_take("a", t0, 1.0).is_err(), "tenant a exhausted");
        assert!(q.try_take("b", t0, 1.0).is_ok(), "tenant b unaffected");
    }

    #[test]
    fn zero_rate_is_clamped_finite() {
        let mut q = state(0.0, 1);
        let t0 = Instant::now();
        assert!(q.try_take("a", t0, 1.0).is_ok());
        let retry = q.try_take("a", t0, 1.0).expect_err("empty");
        // clamped to one token per day: finite, under a day and a half
        assert!(retry <= Duration::from_secs(86_400 + 43_200));
    }

    #[test]
    fn bucket_map_is_bounded() {
        let mut q = state(1000.0, 5);
        let t0 = Instant::now();
        // Far more tenants than the cap, each touched once: full buckets are
        // pruned, so the map stays bounded.
        for i in 0..(MAX_BUCKETS * 2) {
            assert!(q.try_take(&format!("t{i}"), t0, 1.0).is_ok());
        }
        assert!(q.bucket_count() <= MAX_BUCKETS + 1);
        // Pruning a nearly-full bucket only ever errs in the tenant's
        // favour: admission still succeeds.
        assert!(q.try_take("t0", t0 + Duration::from_secs(1), 1.0).is_ok());
    }

    #[test]
    fn overrides_give_named_tenants_their_own_rate() {
        let mut s = settings(1000.0, 1);
        s.overrides
            .insert("paid".to_string(), QuotaConfig::new(1000.0, 5));
        let mut q = QuotaState::new(s);
        let t0 = Instant::now();
        assert!(q.try_take("free", t0, 1.0).is_ok());
        assert!(q.try_take("free", t0, 1.0).is_err(), "default burst 1");
        for _ in 0..5 {
            assert!(q.try_take("paid", t0, 1.0).is_ok(), "override burst 5");
        }
        assert!(q.try_take("paid", t0, 1.0).is_err());
    }

    #[test]
    fn overrides_without_a_default_leave_other_tenants_unlimited() {
        let mut s = QuotaSettings::default();
        s.overrides
            .insert("scraper".to_string(), QuotaConfig::new(0.001, 1));
        let mut q = QuotaState::new(s);
        let t0 = Instant::now();
        assert!(q.try_take("scraper", t0, 1.0).is_ok());
        assert!(q.try_take("scraper", t0, 1.0).is_err());
        for _ in 0..100 {
            assert!(q.try_take("anyone-else", t0, 1.0).is_ok(), "ungoverned");
        }
    }

    #[test]
    fn cost_weighted_charges_scale_with_work() {
        let s = QuotaSettings {
            default: Some(QuotaConfig::new(1.0, 10)),
            overrides: HashMap::new(),
            work_per_token: Some(100),
        };
        assert_eq!(s.charge_for(50), 1.0, "floor of one token");
        assert_eq!(s.charge_for(100), 1.0);
        assert_eq!(s.charge_for(450), 4.0);
        let mut q = QuotaState::new(s.clone());
        let t0 = Instant::now();
        // one 800-work query (8 tokens) + one small one exhaust burst 10
        assert!(q.try_take("a", t0, s.charge_for(800)).is_ok());
        assert!(q.try_take("a", t0, s.charge_for(100)).is_ok());
        let retry = q
            .try_take("a", t0, s.charge_for(300))
            .expect_err("3 tokens needed, 1 left");
        // 2 missing tokens at 1/s
        assert!(retry > Duration::from_millis(1900) && retry <= Duration::from_secs(2));
    }

    #[test]
    fn charges_beyond_the_burst_are_clamped_to_the_bucket() {
        let s = QuotaSettings {
            default: Some(QuotaConfig::new(1.0, 4)),
            overrides: HashMap::new(),
            work_per_token: Some(1),
        };
        let mut q = QuotaState::new(s.clone());
        let t0 = Instant::now();
        // 1M estimated work would be 1M tokens; clamped to the burst the
        // query costs the full bucket instead of being forever rejected.
        assert!(q.try_take("a", t0, s.charge_for(1_000_000)).is_ok());
        assert!(q.try_take("a", t0, 1.0).is_err(), "bucket fully drained");
    }
}
