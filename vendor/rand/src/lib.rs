//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides exactly the API subset the workspace uses — `Rng::gen_range`
//! over integer ranges, `Rng::gen::<f64>()`, and a seedable small RNG —
//! with the same method names and bounds as `rand 0.8`.  The generator is
//! xoshiro256** seeded through SplitMix64, so all datagen output is
//! deterministic for a given seed (though not bit-identical to upstream
//! `SmallRng`, which is irrelevant here: every consumer treats the seed as
//! an opaque reproducibility handle).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from `Rng::gen`.
pub trait Standard01: Sized {
    /// Builds a sample from a random 64-bit word.
    fn from_word(word: u64) -> Self;
}

impl Standard01 for f64 {
    fn from_word(word: u64) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn from_word(word: u64) -> f32 {
        (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard01 for bool {
    fn from_word(word: u64) -> bool {
        word & 1 == 1
    }
}

impl Standard01 for u64 {
    fn from_word(word: u64) -> u64 {
        word
    }
}

impl Standard01 for u32 {
    fn from_word(word: u64) -> u32 {
        (word >> 32) as u32
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (bounded(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::from_word(rng.next_u64())
    }
}

/// Uniform value in `[0, bound)` by rejection sampling (bound > 0).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let word = rng.next_u64();
        if word < zone {
            return word % bound;
        }
    }
}

/// The user-facing sampling interface (the `rand 0.8` method names).
pub trait Rng: RngCore {
    /// Uniform sample of a `Standard01` type (`rng.gen::<f64>()` is
    /// uniform in `[0, 1)`).
    fn gen<T: Standard01>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    /// Uniform sample from an integer or float range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256** behind SplitMix64
    /// seeding) — the shim's equivalent of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval_and_covers_it() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            low |= u < 0.25;
            high |= u > 0.75;
        }
        assert!(low && high, "samples should spread over [0, 1)");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: super::Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        assert!(sample(dynrng) < 10);
    }

    #[test]
    fn every_residue_reachable() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
