//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the `criterion` API subset the workspace's benches use —
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! simple wall-clock timer.  It reports the median iteration time per
//! benchmark; there is no statistical analysis, plotting, or baseline
//! comparison.

use std::time::{Duration, Instant};

/// Opaque measurement context handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Times the closure over `sample_size` samples and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            samples.push(start.elapsed());
            black_box(out);
        }
        samples.sort();
        self.last_median = samples.get(samples.len() / 2).copied();
    }
}

/// Identity function that defeats constant-folding of benchmark outputs.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's display form.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.rendered)
    }
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl core::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_median: None,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.last_median);
        self
    }

    /// Runs one benchmark parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_median: None,
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), bencher.last_median);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, median: Option<Duration>) {
    match median {
        Some(t) => println!("  {group}/{id:<40} median {t:>12.3?}"),
        None => println!("  {group}/{id:<40} (no measurement)"),
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("square", |b| b.iter(|| black_box(7u64) * 7));
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| b.iter(|| n + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("engine", 4).to_string(), "engine/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
