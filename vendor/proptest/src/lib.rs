//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the `proptest` API subset the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range / tuple /
//! [`strategy::Just`] / [`collection::vec`] strategies, `prop_flat_map`, and
//! the `prop_assert!` family.  Test cases are generated deterministically
//! from the test name and case index; there is no shrinking — a failing
//! case reports its inputs via the panic message instead.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The commonly imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs `cases` deterministic test cases of `strategy` through `check`.
///
/// This is the engine behind the [`proptest!`] macro; it is public so the
/// macro expansion (and any hand-rolled harness) can call it.
pub fn run_cases<S, F>(
    name: &'static str,
    config: &test_runner::ProptestConfig,
    strategy: &S,
    mut check: F,
) where
    S: strategy::Strategy,
    S::Value: core::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(name, case);
        let value = strategy.new_value(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(err) = check(value) {
            panic!("{name}: case #{case} failed: {err}\n  input: {rendered}");
        }
    }
}

/// Property-test entry point: the `proptest 1.x` macro grammar restricted to
/// `fn name(pattern in strategy) { body }` items with optional attributes
/// and an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = $strategy;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &strategy,
                    |value| {
                        let $pat = value;
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($pat in $strategy) $body)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal {:?}",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range, tuple and vec strategies stay within bounds.
        #[test]
        fn strategies_respect_bounds((n, pairs) in (2usize..10).prop_flat_map(|n| {
            let pairs = crate::collection::vec((0..n as u32, 0..n as u32), 1..8);
            (Just(n), pairs)
        })) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(!pairs.is_empty() && pairs.len() < 8);
            for (a, b) in &pairs {
                prop_assert!((*a as usize) < n, "a = {} out of range", a);
                prop_assert!((*b as usize) < n);
            }
        }

        /// Early `return Ok(())` is supported.
        #[test]
        fn early_return_ok(n in 0usize..5) {
            if n < 5 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }

        /// Inclusive ranges include both endpoints eventually.
        #[test]
        fn inclusive_range(k in 2usize..=3) {
            prop_assert!(k == 2 || k == 3);
        }

        /// Float ranges produce finite values in range.
        #[test]
        fn float_range(w in 0.25f64..4.0) {
            prop_assert!(w.is_finite());
            prop_assert!((0.25..4.0).contains(&w));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strategy = (0u32..1000, 0u32..1000);
        let mut first = Vec::new();
        for case in 0..10 {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            first.push(strategy.new_value(&mut rng));
        }
        for case in 0..10 {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            assert_eq!(first[case as usize], strategy.new_value(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_input() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(1),
            &(0usize..10),
            |_| Err(TestCaseError::fail("nope".to_string())),
        );
    }
}
