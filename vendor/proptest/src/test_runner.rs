//! Deterministic case generation and failure reporting.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-run configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (carries the assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one `(test name, case index)` pair: different per case,
    /// reproducible across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64)),
        }
    }

    /// The next raw 64-bit word.
    pub fn word(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let word = self.inner.next_u64();
            if word < zone {
                return word % bound;
            }
        }
    }

    /// Uniform `usize` in `[min, max]`.
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        assert!(min <= max);
        min + self.below((max - min + 1) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.word() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
