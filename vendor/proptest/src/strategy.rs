//! Value-generation strategies: the shim's equivalent of
//! `proptest::strategy`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `new_value` produces a final
/// value directly from the deterministic per-case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy whose shape depends on a generated value
    /// (`proptest`'s monadic bind).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let inner = (self.f)(self.base.new_value(rng));
        inner.new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.new_value(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.word() as $ty;
                }
                start + rng.below(span + 1) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
